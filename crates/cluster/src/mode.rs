//! Training modes: how rounds relate to optimizer steps.
//!
//! The paper's protocol is **synchronous**: round `t + 1`'s broadcast waits
//! for round `t`'s decoded gradient, so the straggler tail is paid once per
//! iteration — that cost is exactly what coded redundancy buys back. The
//! straggler-mitigation literature's other lever is *staleness*: let
//! workers run ahead and apply late gradients to newer weights. This module
//! names the four points on that axis as an object-safe [`TrainingMode`]
//! (the experiment layer's `ModeSpec`/`ModeRegistry` resolve to one):
//!
//! | mode | step rule | blocking |
//! |---|---|---|
//! | [`Ssgd`] | one exact step per completed round | every round |
//! | [`Ssp`] | stale steps allowed up to `staleness` rounds behind | only at the bound |
//! | [`Asgd`] | every decodable arrival applied as it lands | never |
//! | [`LocalSgd`] | `local_steps` local steps, then synchronized averaging | every sync |
//!
//! A mode is *policy*, not *mechanism*: the round engine, arrival sources,
//! and backends are untouched. SSP/ASGD overlap rounds by scheduling each
//! round's **start offset** — how long a worker is still busy with earlier
//! rounds when the new broadcast reaches it — through an [`OffsetTable`]
//! consumed by an [`OffsetModel`] wrapper around the installed
//! [`StragglerModel`]. Because every backend (including the TCP master,
//! which samples delays master-side and patches them into round frames)
//! draws per-`(round, worker)` compute times from the installed model, one
//! wrapper pipelines rounds identically across all of them.
//!
//! The drivers that interpret a [`ModeSchedule`] live in the experiment
//! layer (`bcc::experiment`), next to the optimizer loop they reorder.

use crate::straggler::StragglerModel;
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex};

/// What a [`TrainingMode`] asks of the driver loop — the mode's entire
/// behavioural contract, so custom [`TrainingMode`] implementations can
/// reuse the built-in drivers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModeSchedule {
    /// One optimizer step per completed round; round `t + 1` broadcasts
    /// round `t`'s post-step weights (the paper's protocol).
    Synchronous,
    /// Rounds overlap; a round may start while up to `staleness` earlier
    /// rounds are still in flight, and their gradients are applied stale.
    StaleBounded {
        /// Maximum rounds a broadcast may run ahead of the slowest
        /// unapplied round (`0` degenerates to [`ModeSchedule::Synchronous`]
        /// scheduling with completion-order applies).
        staleness: usize,
    },
    /// Parameter-server style: no staleness bound at all — every round
    /// starts as soon as any prior round completes, and each decodable
    /// completion is applied the moment it lands.
    Async,
    /// Each participant takes `local_steps` plain gradient steps on its own
    /// partition, then the master averages the resulting iterates
    /// (one synchronization per communication round).
    LocalSteps {
        /// Local steps per communication round (`H` in the LocalSGD
        /// literature).
        local_steps: usize,
    },
}

/// A training mode: the round-to-step relationship an experiment runs
/// under.
///
/// Object-safe so the experiment layer can hold `Arc<dyn TrainingMode>`
/// resolved from a spec string; `Send + Sync` because experiments fan out
/// across sweep threads. The behavioural contract is entirely in
/// [`TrainingMode::schedule`] — `name`/`description` feed reports and
/// `repro list`.
pub trait TrainingMode: fmt::Debug + Send + Sync {
    /// Spec-facing mode name (`"ssgd"`, `"ssp"`, …).
    fn name(&self) -> &str;

    /// One-line description for `repro list`.
    fn description(&self) -> &str;

    /// The schedule the driver loop must implement.
    fn schedule(&self) -> ModeSchedule;
}

/// Synchronous SGD — the paper's per-round step, bit-identical to the
/// pre-mode driver (pinned by the perf-baseline replays and the
/// `ssgd`-equals-legacy equivalence tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Ssgd;

impl TrainingMode for Ssgd {
    fn name(&self) -> &str {
        "ssgd"
    }

    fn description(&self) -> &str {
        "synchronous rounds: one exact step per decoded round (the paper's protocol, default)"
    }

    fn schedule(&self) -> ModeSchedule {
        ModeSchedule::Synchronous
    }
}

/// Stale-synchronous parallel: rounds pipeline up to `staleness` deep, the
/// master applies coverage-rescaled stale gradients in arrival order and
/// blocks only when the bound is hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ssp {
    /// Maximum in-flight rounds ahead of the slowest unapplied one.
    pub staleness: usize,
}

impl TrainingMode for Ssp {
    fn name(&self) -> &str {
        "ssp"
    }

    fn description(&self) -> &str {
        "stale-synchronous: rounds pipeline up to `staleness` deep, blocking only at the bound"
    }

    fn schedule(&self) -> ModeSchedule {
        ModeSchedule::StaleBounded {
            staleness: self.staleness,
        }
    }
}

/// Asynchronous SGD (parameter-server style): every decodable round result
/// is applied the moment it lands; nothing ever blocks on a straggler.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Asgd;

impl TrainingMode for Asgd {
    fn name(&self) -> &str {
        "asgd"
    }

    fn description(&self) -> &str {
        "asynchronous parameter server: apply each decodable round as it lands, unbounded staleness"
    }

    fn schedule(&self) -> ModeSchedule {
        ModeSchedule::Async
    }
}

/// Local SGD: `local_steps` plain gradient steps per worker between
/// synchronized parameter averages — trades per-step communication for
/// per-sync straggler exposure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocalSgd {
    /// Local steps per communication round.
    pub local_steps: usize,
}

impl TrainingMode for LocalSgd {
    fn name(&self) -> &str {
        "local-sgd"
    }

    fn description(&self) -> &str {
        "local steps then synchronized averaging: pay the straggler tail once per sync, not per step"
    }

    fn schedule(&self) -> ModeSchedule {
        ModeSchedule::LocalSteps {
            local_steps: self.local_steps,
        }
    }
}

/// Shared per-`(round, worker)` start-offset table — the channel through
/// which a pipelining mode driver tells the backend *when each worker can
/// start each round*.
///
/// Cloning shares the underlying table (it is an `Arc` inside), so the
/// driver and the backend's [`OffsetModel`] observe the same entries.
///
/// ## Determinism contract
///
/// [`StragglerModel`] draws must be pure functions of their key. The table
/// preserves that contract operationally: the driver publishes a round's
/// offsets **before** the backend starts the round and never rewrites an
/// entry, so every query for a `(round, worker)` key observes one value for
/// the life of the run. [`OffsetTable::set`] panics on rewrite attempts.
#[derive(Debug, Clone, Default)]
pub struct OffsetTable {
    offsets: Arc<Mutex<HashMap<(u64, usize), f64>>>,
}

impl OffsetTable {
    /// Empty table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Publishes the start offset (simulated seconds) for `worker` in
    /// `round`.
    ///
    /// # Panics
    /// Panics when the entry was already published with a different value
    /// (rewrites would break the straggler-model determinism contract), or
    /// on a negative/non-finite offset.
    pub fn set(&self, round: u64, worker: usize, offset: f64) {
        assert!(
            offset >= 0.0 && offset.is_finite(),
            "start offset must be non-negative and finite, got {offset}"
        );
        let mut table = self.offsets.lock().expect("offset table lock poisoned");
        if let Some(old) = table.insert((round, worker), offset) {
            assert!(
                old.to_bits() == offset.to_bits(),
                "offset for (round {round}, worker {worker}) rewritten: {old} -> {offset}"
            );
        }
    }

    /// The published start offset for `(round, worker)`; `0` when none was
    /// published (synchronous rounds need no entry).
    #[must_use]
    pub fn get(&self, round: u64, worker: usize) -> f64 {
        self.offsets
            .lock()
            .expect("offset table lock poisoned")
            .get(&(round, worker))
            .copied()
            .unwrap_or(0.0)
    }

    /// Number of published entries (test/diagnostic surface).
    #[must_use]
    pub fn len(&self) -> usize {
        self.offsets
            .lock()
            .expect("offset table lock poisoned")
            .len()
    }

    /// Whether no entry was ever published.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A [`StragglerModel`] wrapper adding each worker's scheduled start offset
/// (from an [`OffsetTable`]) to the wrapped model's compute time.
///
/// This is how SSP/ASGD pipeline rounds without touching any backend: a
/// worker that is still `d` seconds busy with earlier rounds when round `t`
/// is broadcast behaves, from the master's point of view, exactly like a
/// worker whose round-`t` compute takes `d` seconds longer. Installing the
/// wrapper via [`BackendConfig`](crate::config::BackendConfig) therefore
/// works uniformly on the virtual, threaded, and TCP backends — the TCP
/// master samples delays from the installed model master-side and patches
/// them into the round frames it sends.
///
/// `name()` delegates to the wrapped model so reports keep naming the
/// latency family; the offsets are schedule bookkeeping, not latency.
#[derive(Debug, Clone)]
pub struct OffsetModel {
    inner: Arc<dyn StragglerModel>,
    offsets: OffsetTable,
}

impl OffsetModel {
    /// Wraps `inner`, adding offsets published to `offsets`.
    #[must_use]
    pub fn wrap(inner: Arc<dyn StragglerModel>, offsets: OffsetTable) -> Self {
        Self { inner, offsets }
    }

    /// The shared offset table (clone to publish from a driver).
    #[must_use]
    pub fn table(&self) -> &OffsetTable {
        &self.offsets
    }
}

impl StragglerModel for OffsetModel {
    fn compute_seconds(&self, seed: u64, round: u64, worker: usize, load: usize) -> f64 {
        self.inner.compute_seconds(seed, round, worker, load) + self.offsets.get(round, worker)
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn mean_compute_seconds(&self, worker: usize, load: usize) -> Option<f64> {
        // Offsets are schedule state, not part of the latency family's
        // closed form.
        self.inner.mean_compute_seconds(worker, load)
    }
}

/// The built-in modes as `(name, one-line description)` pairs — the
/// discovery surface `repro list` prints (mirrors
/// [`crate::straggler::ZOO`]).
pub const MODES: [(&str, &str); 4] = [
    (
        "ssgd",
        "synchronous rounds: one exact step per decoded round (the paper's protocol, default)",
    ),
    (
        "ssp",
        "stale-synchronous: rounds pipeline up to `staleness` deep, blocking only at the bound",
    ),
    (
        "asgd",
        "asynchronous parameter server: apply each decodable round as it lands, unbounded staleness",
    ),
    (
        "local-sgd",
        "local steps then synchronized averaging: pay the straggler tail once per sync, not per step",
    ),
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::straggler::ShiftedExpModel;

    #[test]
    fn builtin_names_match_the_discovery_table() {
        let modes: [&dyn TrainingMode; 4] = [
            &Ssgd,
            &Ssp { staleness: 2 },
            &Asgd,
            &LocalSgd { local_steps: 4 },
        ];
        for (mode, (name, description)) in modes.iter().zip(MODES) {
            assert_eq!(mode.name(), name);
            assert_eq!(mode.description(), description);
        }
    }

    #[test]
    fn schedules_carry_their_parameters() {
        assert_eq!(Ssgd.schedule(), ModeSchedule::Synchronous);
        assert_eq!(
            Ssp { staleness: 3 }.schedule(),
            ModeSchedule::StaleBounded { staleness: 3 }
        );
        assert_eq!(Asgd.schedule(), ModeSchedule::Async);
        assert_eq!(
            LocalSgd { local_steps: 5 }.schedule(),
            ModeSchedule::LocalSteps { local_steps: 5 }
        );
    }

    #[test]
    fn offset_model_adds_published_offsets_and_keeps_the_inner_name() {
        let inner = Arc::new(ShiftedExpModel::homogeneous(4, 2.0, 0.01));
        let table = OffsetTable::new();
        let model = OffsetModel::wrap(inner.clone(), table.clone());
        let base = inner.compute_seconds(7, 1, 2, 3);
        assert_eq!(model.compute_seconds(7, 1, 2, 3).to_bits(), base.to_bits());
        table.set(1, 2, 0.25);
        assert_eq!(
            model.compute_seconds(7, 1, 2, 3).to_bits(),
            (base + 0.25).to_bits()
        );
        // Other keys stay untouched.
        assert_eq!(
            model.compute_seconds(7, 1, 3, 3).to_bits(),
            inner.compute_seconds(7, 1, 3, 3).to_bits()
        );
        assert_eq!(model.name(), "shifted-exp");
        assert_eq!(
            model.mean_compute_seconds(2, 3),
            inner.mean_compute_seconds(2, 3)
        );
    }

    #[test]
    fn offset_table_allows_idempotent_republish() {
        let table = OffsetTable::new();
        table.set(0, 1, 0.5);
        table.set(0, 1, 0.5);
        assert_eq!(table.len(), 1);
        assert!((table.get(0, 1) - 0.5).abs() < 1e-12);
        assert_eq!(table.get(9, 9), 0.0);
    }

    #[test]
    #[should_panic(expected = "rewritten")]
    fn offset_table_rejects_rewrites() {
        let table = OffsetTable::new();
        table.set(0, 1, 0.5);
        table.set(0, 1, 0.75);
    }
}
