//! Chunk-streamed worker compute: the bounded-memory twin of
//! [`RoundContext::compute_and_encode`](crate::engine::RoundContext).
//!
//! The arena path ([`WorkerBlocks`](crate::packed::WorkerBlocks)) holds
//! every unit's rows resident for the whole run — the right trade at paper
//! scale, but at the scale-grid extremes (`n = 1000 × dim = 10240`) the
//! arena alone is gigabytes. [`StreamedContext`] instead pulls each unit's
//! rows from a [`ChunkedDataset`] at compute time and drops them after the
//! partial gradient is accumulated: peak memory is the chunk LRU window
//! plus one scratch partial per assigned unit, independent of `m`. When
//! the chunk size equals the unit size every read is a zero-copy alias of
//! a live chunk.
//!
//! Bit-identity contract: [`GradScratch::fill_partial`] sums the same rows
//! in the same order as the arena path, and
//! [`ChunkedDataset::read`] returns bytes identical to the resident
//! dataset, so the encoded payloads are bit-for-bit equal to
//! `RoundContext::compute_and_encode_selected` (pinned by
//! `tests/streamed_compute.rs`).

use crate::error::ClusterError;
use crate::minibatch::UnitSelection;
use crate::units::UnitMap;
use bcc_coding::{GradientCodingScheme, Payload};
use bcc_data::ChunkedDataset;
use bcc_optim::{GradScratch, Loss};

/// Everything a streamed worker-side compute step needs. The borrowed
/// twin of [`RoundContext`](crate::engine::RoundContext) for runs whose
/// data never lives in a resident [`Dataset`](bcc_data::Dataset).
#[derive(Clone, Copy)]
pub struct StreamedContext<'a> {
    /// The gradient-coding scheme in force.
    pub scheme: &'a dyn GradientCodingScheme,
    /// Unit grouping the scheme codes over.
    pub units: &'a UnitMap,
    /// The chunk-streamed training examples.
    pub data: &'a ChunkedDataset,
    /// Per-example loss.
    pub loss: &'a dyn Loss,
}

impl StreamedContext<'_> {
    /// Computes worker `worker`'s unit partial gradients at `weights`,
    /// streaming each unit's rows from the chunked dataset, and encodes
    /// them with the scheme. `selection` restricts a minibatch round to
    /// the sampled units — unselected slots stay zero, exactly like the
    /// arena path.
    ///
    /// # Errors
    /// Propagates the scheme's encoding errors.
    pub fn compute_and_encode(
        &self,
        worker: usize,
        weights: &[f64],
        scratch: &mut GradScratch,
        selection: Option<&UnitSelection>,
    ) -> Result<Payload, ClusterError> {
        let unit_ids = self.scheme.placement().worker_examples(worker);
        scratch.ensure_slots(unit_ids.len(), weights.len());
        for (slot, &unit) in unit_ids.iter().enumerate() {
            if selection.is_some_and(|sel| !sel.contains(unit)) {
                continue;
            }
            let block = self.data.read(self.units.unit_range(unit));
            scratch.fill_partial(
                slot,
                self.loss,
                block.features(),
                block.labels(),
                0..block.len(),
                weights,
            );
        }
        self.scheme
            .encode(worker, scratch.partials(unit_ids.len()))
            .map_err(ClusterError::from)
    }
}
