//! Master/worker cluster runtime for distributed gradient descent.
//!
//! The paper's experiments ran on Amazon EC2 (MPI over t2.micro instances).
//! This crate substitutes two interchangeable backends behind one trait
//! (see the workspace README's architecture map for why the substitution
//! preserves the paper's effects). Both backends delegate every piece of
//! protocol logic — participant selection, decoder feeding, completion
//! detection, stall handling, metrics — to the shared [`engine::RoundEngine`]
//! and implement only an [`engine::ArrivalSource`]:
//!
//! * [`ThreadedCluster`] — a *real* concurrent runtime: one OS thread per
//!   worker, crossbeam channels as the network, a byte-level wire codec
//!   ([`wire`]) for every message, and injected shift-exponential latencies
//!   (the model the paper itself adopts in §IV eq. (15)) emulating EC2
//!   stragglers at a configurable time scale.
//! * [`VirtualCluster`] — the same protocol replayed in virtual time over a
//!   sorted finish-time schedule (event-for-event equal to a discrete-event
//!   queue, because the master's receive port is strictly serial):
//!   deterministic, seedable, and thousands of times faster — used for the
//!   Monte-Carlo parameter sweeps behind every figure.
//!
//! Both backends serialize message receipt at the master (one transfer at a
//! time, duration proportional to message units), which is what makes total
//! round time track the *communication load* — the paper's own explanation
//! of Tables I/II ("the total running time of each scheme is approximately
//! proportional to its recovery threshold").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod config;
pub mod decode;
pub mod engine;
pub mod error;
pub mod latency;
pub mod message;
pub mod metrics;
pub mod minibatch;
pub mod mode;
pub mod observer;
pub mod packed;
pub mod policy;
pub mod straggler;
pub mod streamed;
pub mod threaded;
pub mod units;
pub mod virtual_cluster;
pub mod wire;

pub use backend::{ClusterBackend, FixedPointDriver, RoundDriver, RoundOutcome};
pub use config::BackendConfig;
pub use decode::DecodePool;
pub use engine::{Arrival, ArrivalEvent, ArrivalSource, RoundEngine};
pub use error::ClusterError;
pub use latency::{ClusterProfile, CommModel, WorkerProfile};
pub use message::Envelope;
pub use metrics::{ArrivalStamp, RoundMetrics, RoundSample, RunMetrics};
pub use minibatch::{Minibatch, UnitSelection};
pub use mode::{Asgd, LocalSgd, ModeSchedule, OffsetModel, OffsetTable, Ssgd, Ssp, TrainingMode};
pub use observer::{EventLog, NullObserver, RoundEvent, RoundObserver, SharedObserver};
pub use packed::WorkerBlocks;
pub use policy::{
    AggregatedGradient, AggregationPolicy, BestEffortAll, Deadline, FastestK, RoundVerdict,
    RoundView, WaitDecodable,
};
pub use straggler::{
    BimodalModel, MarkovModel, ParetoModel, ShiftedExpModel, StragglerModel, WanLinkModel,
    WeibullModel,
};
pub use streamed::StreamedContext;
pub use threaded::ThreadedCluster;
pub use units::UnitMap;
pub use virtual_cluster::VirtualCluster;
