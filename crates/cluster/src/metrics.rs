//! Round and run metrics mirroring the paper's Tables I/II columns.

use serde::{Deserialize, Serialize};

/// Metrics of one distributed-GD iteration (one "round").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundMetrics {
    /// Number of worker messages the master consumed before completing —
    /// the empirical `|W|` whose average is the recovery threshold
    /// (Definition 2).
    pub messages_used: usize,
    /// Total communication units received (Definition 3 accounting).
    pub communication_units: usize,
    /// "Computation time": the maximum compute time among workers whose
    /// results the master received before the round ended (the paper's
    /// measurement convention, §III-C-2).
    pub compute_time: f64,
    /// "Communication time": total round time minus computation time (ditto).
    pub comm_time: f64,
    /// Wall/virtual-clock duration of the whole round.
    pub total_time: f64,
}

impl RoundMetrics {
    /// Consistency check: times non-negative and parts bounded by the total.
    #[must_use]
    pub fn is_consistent(&self) -> bool {
        self.compute_time >= 0.0
            && self.comm_time >= 0.0
            && self.total_time >= 0.0
            && self.compute_time + self.comm_time <= self.total_time + 1e-9
    }
}

/// One worker message the master consumed in a round — who sent it, how
/// long its compute took, and when it landed on the master's clock.
///
/// `compute_seconds` is drawn from the deterministic per-`(seed, round,
/// worker)` latency stream and replays bit-identically on every backend;
/// `at` is the backend clock (virtual time on the DES backend, scaled wall
/// clock on the threaded/TCP ones) and is only reproducible on the virtual
/// backend. Controllers that must agree across backends therefore key all
/// decisions on `compute_seconds`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ArrivalStamp {
    /// Sending worker id.
    pub worker: usize,
    /// Worker-reported compute duration in simulated seconds.
    pub compute_seconds: f64,
    /// Backend clock (simulated seconds since round start) of the delivery.
    pub at: f64,
}

impl Deserialize for ArrivalStamp {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        Ok(Self {
            worker: Deserialize::from_value(v.field("worker")?)?,
            compute_seconds: Deserialize::from_value(v.field("compute_seconds")?)?,
            at: Deserialize::from_value(v.field("at")?)?,
        })
    }
}

/// The per-round observables distribution-level analyses need (percentiles
/// of round time, per-round message counts, coverage and gradient quality
/// under approximate aggregation policies) — what [`RunMetrics`] sums
/// away. One per round, in round order.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RoundSample {
    /// Wall/virtual-clock duration of the round.
    pub total_time: f64,
    /// Messages the master consumed before completing (the empirical `|W|`).
    pub messages_used: usize,
    /// Coding units the round's gradient covers.
    pub covered_units: usize,
    /// Coding units the scheme codes over (`m`).
    pub total_units: usize,
    /// Whether the round's gradient was the exact decode.
    pub exact: bool,
    /// `‖ĝ − g‖₂` of the round's **mean** gradient against the exact one —
    /// `Some` only when the driver measured it (non-exact rounds), `None`
    /// otherwise (exact rounds have zero error by construction).
    pub gradient_error: Option<f64>,
    /// How many optimizer updates were merged between this update's
    /// broadcast and its application — `0` under synchronous training,
    /// positive under the stale modes (SSP/ASGD), where it is the realized
    /// staleness of the round's gradient.
    pub staleness: usize,
    /// The messages the master consumed, in worker-id order — the
    /// per-worker arrival telemetry adaptive controllers feed on. Empty on
    /// pre-telemetry sample dumps and synthetic samples (LocalSGD merge
    /// rounds have no master-side arrivals).
    pub arrivals: Vec<ArrivalStamp>,
}

// Manual impl so pre-mode sample dumps (no `staleness` key) keep
// deserializing: the shim's derive errors on absent fields.
impl Deserialize for RoundSample {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        Ok(Self {
            total_time: Deserialize::from_value(v.field("total_time")?)?,
            messages_used: Deserialize::from_value(v.field("messages_used")?)?,
            covered_units: Deserialize::from_value(v.field("covered_units")?)?,
            total_units: Deserialize::from_value(v.field("total_units")?)?,
            exact: Deserialize::from_value(v.field("exact")?)?,
            gradient_error: match v.get("gradient_error") {
                None | Some(serde::Value::Null) => None,
                Some(inner) => Some(Deserialize::from_value(inner)?),
            },
            staleness: match v.get("staleness") {
                None | Some(serde::Value::Null) => 0,
                Some(inner) => Deserialize::from_value(inner)?,
            },
            arrivals: match v.get("arrivals") {
                None | Some(serde::Value::Null) => Vec::new(),
                Some(inner) => Deserialize::from_value(inner)?,
            },
        })
    }
}

impl RoundSample {
    /// Covered fraction of the scheme's units in `[0, 1]` (the
    /// [`bcc_coding::Coverage::fraction`] convention).
    #[must_use]
    pub fn coverage_fraction(&self) -> f64 {
        bcc_coding::Coverage::new(self.covered_units, self.total_units).fraction()
    }
}

/// Aggregated metrics over a training run (e.g. 100 iterations), with the
/// same breakdown the paper reports per scheme.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Number of rounds aggregated.
    pub rounds: usize,
    /// Sum of per-round total times (the paper's "total running time").
    pub total_time: f64,
    /// Sum of per-round computation times.
    pub compute_time: f64,
    /// Sum of per-round communication times.
    pub comm_time: f64,
    /// Sum of messages used (divide by `rounds` for the empirical recovery
    /// threshold).
    pub messages_used: usize,
    /// Sum of communication units.
    pub communication_units: usize,
}

impl RunMetrics {
    /// Empty aggregate.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one round in.
    pub fn absorb(&mut self, round: &RoundMetrics) {
        self.rounds += 1;
        self.total_time += round.total_time;
        self.compute_time += round.compute_time;
        self.comm_time += round.comm_time;
        self.messages_used += round.messages_used;
        self.communication_units += round.communication_units;
    }

    /// Average messages per round — the empirical recovery threshold `K`.
    #[must_use]
    pub fn avg_recovery_threshold(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.messages_used as f64 / self.rounds as f64
        }
    }

    /// Average communication load per round — the empirical `L`.
    #[must_use]
    pub fn avg_communication_load(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.communication_units as f64 / self.rounds as f64
        }
    }

    /// Average round duration.
    #[must_use]
    pub fn avg_round_time(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.total_time / self.rounds as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round(messages: usize, units: usize, compute: f64, comm: f64) -> RoundMetrics {
        RoundMetrics {
            messages_used: messages,
            communication_units: units,
            compute_time: compute,
            comm_time: comm,
            total_time: compute + comm,
        }
    }

    #[test]
    fn consistency_check() {
        assert!(round(3, 3, 1.0, 2.0).is_consistent());
        let bad = RoundMetrics {
            messages_used: 1,
            communication_units: 1,
            compute_time: 5.0,
            comm_time: 5.0,
            total_time: 1.0,
        };
        assert!(!bad.is_consistent());
    }

    #[test]
    fn absorb_accumulates() {
        let mut run = RunMetrics::new();
        run.absorb(&round(10, 10, 1.0, 3.0));
        run.absorb(&round(12, 12, 2.0, 5.0));
        assert_eq!(run.rounds, 2);
        assert_eq!(run.messages_used, 22);
        assert!((run.avg_recovery_threshold() - 11.0).abs() < 1e-12);
        assert!((run.avg_communication_load() - 11.0).abs() < 1e-12);
        assert!((run.total_time - 11.0).abs() < 1e-12);
        assert!((run.avg_round_time() - 5.5).abs() < 1e-12);
    }

    #[test]
    fn empty_run_is_zero() {
        let run = RunMetrics::new();
        assert_eq!(run.avg_recovery_threshold(), 0.0);
        assert_eq!(run.avg_communication_load(), 0.0);
        assert_eq!(run.avg_round_time(), 0.0);
    }
}
