//! Per-worker packed data for the round hot path.
//!
//! Built once per training run from the scheme's placement and the unit
//! map: the dataset's rows are gathered **once** into a single contiguous
//! arena [`PackedBlock`] in unit order, and each worker's assignment
//! becomes a list of row *ranges* into that arena. Replicated units (the
//! redundancy every coded scheme relies on) therefore cost no extra memory,
//! every round streams one contiguous allocation instead of scattered
//! per-worker copies, and round-time access is a linear scan — "pack once,
//! stream forever".

use crate::units::UnitMap;
use bcc_coding::GradientCodingScheme;
use bcc_data::{ChunkedDataset, Dataset, PackedBlock};
use bcc_linalg::Matrix;
use std::ops::Range;
use std::sync::Arc;

/// How the arena's rows are held: owned when they were gathered, shared
/// when a chunk-streamed build could alias a live chunk without copying.
#[derive(Debug, Clone)]
enum Arena {
    /// Rows gathered/assembled into a block of our own.
    Owned(PackedBlock),
    /// Zero-copy alias of a [`ChunkedDataset`] chunk (the whole dataset was
    /// one chunk in unit order).
    Shared(Arc<PackedBlock>),
}

impl Arena {
    fn block(&self) -> &PackedBlock {
        match self {
            Self::Owned(block) => block,
            Self::Shared(arc) => arc,
        }
    }
}

/// The shared arena (all units back to back) plus every worker's unit
/// ranges into it.
#[derive(Debug, Clone)]
pub struct WorkerBlocks {
    /// Materialized arena for unit maps that permute the dataset, or for
    /// chunk-streamed builds (which have no resident dataset to borrow).
    /// `None` when units tile a resident dataset in order (the standard
    /// grouped map) — then the arena *is* the dataset, borrowed with zero
    /// copies.
    gathered: Option<Arena>,
    /// Arena row range of each unit id.
    unit_ranges: Vec<Range<usize>>,
    /// Per worker: the arena range of each assigned unit, in placement
    /// order.
    per_worker: Vec<Vec<Range<usize>>>,
}

impl WorkerBlocks {
    /// Packs the dataset in unit order and indexes each worker's assigned
    /// units as ranges into the arena.
    ///
    /// Range `k` of worker `i` holds the rows of unit
    /// `placement.worker_examples(i)[k]`, in row order — the same order the
    /// per-example path visits, so blocked kernels stay bit-identical. When
    /// the units already tile the dataset front to back (always true for
    /// [`UnitMap::grouped`]) nothing is copied at all.
    #[must_use]
    pub fn build(scheme: &dyn GradientCodingScheme, units: &UnitMap, data: &Dataset) -> Self {
        let mut rows = Vec::with_capacity(data.len());
        let mut unit_ranges = Vec::with_capacity(units.num_units());
        for unit in 0..units.num_units() {
            let start = rows.len();
            rows.extend(units.unit_range(unit));
            unit_ranges.push(start..rows.len());
        }
        let identity = rows.len() == data.len() && rows.iter().enumerate().all(|(i, &r)| i == r);
        let gathered = (!identity).then(|| Arena::Owned(PackedBlock::gather(data, &rows)));
        Self {
            gathered,
            per_worker: per_worker_ranges(scheme, &unit_ranges),
            unit_ranges,
        }
    }

    /// Like [`WorkerBlocks::build`], but sourcing the arena from a
    /// chunk-streamed dataset instead of a resident one.
    ///
    /// Each unit's rows come from [`ChunkedDataset::read`], which aliases a
    /// live chunk without copying whenever the unit tiles one (size the
    /// chunks to the unit size for an all-alias build). Peak memory during
    /// the build is the arena plus the chunk LRU window — the full matrix
    /// is never resident twice. When the whole dataset is a single chunk
    /// that the units tile in order, the arena **is** that chunk, shared
    /// with zero copies.
    ///
    /// The packed bytes are bit-identical to
    /// `build(scheme, units, &data.materialize_all())` (pinned by this
    /// module's tests), so every downstream kernel is unaffected by how the
    /// data was materialized.
    #[must_use]
    pub fn build_streamed(
        scheme: &dyn GradientCodingScheme,
        units: &UnitMap,
        data: &ChunkedDataset,
    ) -> Self {
        let mut unit_ranges = Vec::with_capacity(units.num_units());
        let mut arena_rows = 0;
        for unit in 0..units.num_units() {
            let r = units.unit_range(unit);
            unit_ranges.push(arena_rows..arena_rows + r.len());
            arena_rows += r.len();
        }
        let identity = arena_rows == data.num_examples()
            && (0..units.num_units()).all(|u| units.unit_range(u) == unit_ranges[u]);

        let gathered = if identity && data.num_chunks() == 1 {
            // The one live chunk is the arena: share it, copy nothing.
            Arena::Shared(data.chunk(0))
        } else {
            let dim = data.dim();
            let mut flat = Vec::with_capacity(arena_rows * dim);
            let mut y = Vec::with_capacity(arena_rows);
            let mut src_rows = Vec::with_capacity(arena_rows);
            for unit in 0..units.num_units() {
                let block = data.read(units.unit_range(unit));
                flat.extend_from_slice(block.features().as_slice());
                y.extend_from_slice(block.labels());
                src_rows.extend_from_slice(block.src_rows());
            }
            let x = Matrix::from_vec(arena_rows, dim, flat).expect("units share dataset dim");
            Arena::Owned(PackedBlock::from_parts(x, y, src_rows))
        };
        Self {
            gathered: Some(gathered),
            per_worker: per_worker_ranges(scheme, &unit_ranges),
            unit_ranges,
        }
    }

    /// The arena's feature matrix and labels: the materialized gather, or
    /// the dataset itself when no gather was needed.
    #[must_use]
    pub fn arena<'a>(&'a self, data: &'a Dataset) -> (&'a Matrix, &'a [f64]) {
        match &self.gathered {
            Some(arena) => {
                let block = arena.block();
                (block.features(), block.labels())
            }
            None => (data.features(), data.labels()),
        }
    }

    /// The arena without a resident dataset — available exactly for
    /// [`WorkerBlocks::build_streamed`] results (which always materialize).
    /// `None` for zero-copy [`WorkerBlocks::build`] results, whose arena is
    /// the borrowed dataset.
    #[must_use]
    pub fn arena_block(&self) -> Option<(&Matrix, &[f64])> {
        self.gathered.as_ref().map(|arena| {
            let block = arena.block();
            (block.features(), block.labels())
        })
    }

    /// The dataset row behind an arena row (the placement round-trip).
    #[must_use]
    pub fn src_row(&self, arena_row: usize) -> usize {
        match &self.gathered {
            Some(arena) => arena.block().src_rows()[arena_row],
            None => arena_row,
        }
    }

    /// Arena row range of unit `unit`.
    #[must_use]
    pub fn unit_range(&self, unit: usize) -> Range<usize> {
        self.unit_ranges[unit].clone()
    }

    /// Worker `i`'s arena ranges, aligned with its placement unit list.
    #[must_use]
    pub fn worker(&self, i: usize) -> &[Range<usize>] {
        &self.per_worker[i]
    }

    /// Number of workers covered.
    #[must_use]
    pub fn num_workers(&self) -> usize {
        self.per_worker.len()
    }
}

/// Indexes each worker's assigned units as ranges into the arena, in
/// placement order.
fn per_worker_ranges(
    scheme: &dyn GradientCodingScheme,
    unit_ranges: &[Range<usize>],
) -> Vec<Vec<Range<usize>>> {
    let placement = scheme.placement();
    (0..placement.num_workers())
        .map(|worker| {
            placement
                .worker_examples(worker)
                .iter()
                .map(|&unit| unit_ranges[unit].clone())
                .collect()
        })
        .collect()
}

/// Per-round memoization of unit partial gradients for single-threaded
/// backends.
///
/// Coded schemes replicate units across workers (that is the whole point of
/// the redundancy), so within one round several simulated workers compute
/// the *same* unit gradient at the same weights. A real cluster pays that
/// cost in parallel on separate machines; a single-threaded simulator pays
/// it serially — and needlessly, because the result is bit-identical. The
/// cache remembers each unit's gradient for the current round; it must be
/// [`UnitGradientCache::begin_round`]-reset whenever the weights change.
#[derive(Debug)]
pub struct UnitGradientCache {
    grads: Vec<Vec<f64>>,
    filled: Vec<bool>,
}

impl UnitGradientCache {
    /// Cache over `units` unit ids, initially empty.
    #[must_use]
    pub fn new(units: usize) -> Self {
        Self {
            grads: vec![Vec::new(); units],
            filled: vec![false; units],
        }
    }

    /// Invalidates every entry (call at the start of each round — the
    /// evaluation point changed).
    pub fn begin_round(&mut self) {
        self.filled.fill(false);
    }

    /// The memoized gradient of `unit`, if this round already computed it.
    #[must_use]
    pub fn get(&self, unit: usize) -> Option<&[f64]> {
        self.filled[unit].then(|| self.grads[unit].as_slice())
    }

    /// Memoizes `grad` for `unit` (reusing the entry's allocation).
    pub fn store(&mut self, unit: usize, grad: &[f64]) {
        self.grads[unit].clear();
        self.grads[unit].extend_from_slice(grad);
        self.filled[unit] = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_coding::{BccScheme, UncodedScheme};
    use bcc_data::synthetic::{generate, SyntheticConfig};

    #[test]
    fn src_rows_round_trip_placement() {
        // Regression: packing must remember exactly which dataset rows each
        // worker-unit range came from, i.e. the placement × unit map.
        let g = generate(&SyntheticConfig::small(40, 4, 2));
        let units = UnitMap::grouped(40, 8);
        let choices = vec![0, 1, 2, 3, 0, 1, 2, 3];
        let scheme = BccScheme::from_choices(8, 2, choices);
        let blocks = WorkerBlocks::build(&scheme, &units, &g.dataset);
        assert_eq!(blocks.num_workers(), scheme.num_workers());
        for worker in 0..scheme.num_workers() {
            let unit_list = scheme.placement().worker_examples(worker);
            let ranges = blocks.worker(worker);
            assert_eq!(ranges.len(), unit_list.len());
            let (x, y) = blocks.arena(&g.dataset);
            for (range, &unit) in ranges.iter().zip(unit_list) {
                let expect: Vec<usize> = units.unit_range(unit).collect();
                let src: Vec<usize> = range.clone().map(|i| blocks.src_row(i)).collect();
                assert_eq!(
                    src, expect,
                    "worker {worker} unit {unit} must pack its placement rows"
                );
                for (i, &j) in range.clone().zip(&src) {
                    assert_eq!(x.row(i), g.dataset.x(j));
                    assert_eq!(y[i], g.dataset.y(j));
                }
            }
        }
    }

    #[test]
    fn arena_is_contiguous_and_covers_units_in_order() {
        let g = generate(&SyntheticConfig::small(30, 3, 5));
        let units = UnitMap::grouped(30, 10);
        let scheme = UncodedScheme::new(10, 5);
        let blocks = WorkerBlocks::build(&scheme, &units, &g.dataset);
        let (x, _y) = blocks.arena(&g.dataset);
        assert_eq!(x.rows(), 30, "arena holds every row once");
        let mut next = 0;
        for unit in 0..10 {
            let r = blocks.unit_range(unit);
            assert_eq!(r.start, next, "units pack back to back");
            next = r.end;
        }
        assert_eq!(next, 30);
    }

    #[test]
    fn uncoded_ranges_partition_the_arena() {
        let g = generate(&SyntheticConfig::small(30, 3, 5));
        let units = UnitMap::grouped(30, 10);
        let scheme = UncodedScheme::new(10, 5);
        let blocks = WorkerBlocks::build(&scheme, &units, &g.dataset);
        let mut seen = [false; 30];
        for worker in 0..5 {
            for range in blocks.worker(worker) {
                for i in range.clone() {
                    assert!(!seen[i], "arena row {i} assigned twice under uncoded");
                    seen[i] = true;
                }
            }
        }
        assert!(
            seen.iter().all(|s| *s),
            "uncoded packing must cover all rows"
        );
    }

    #[test]
    fn streamed_build_matches_resident_build() {
        let cfg = SyntheticConfig::small(40, 4, 2);
        let g = generate(&cfg);
        let units = UnitMap::grouped(40, 8);
        let choices = vec![0, 1, 2, 3, 0, 1, 2, 3];
        let scheme = BccScheme::from_choices(8, 2, choices);
        let resident = WorkerBlocks::build(&scheme, &units, &g.dataset);
        // Chunk size deliberately misaligned with the 5-row units.
        let chunked = bcc_data::ChunkedDataset::synthetic(cfg, 7, 2);
        let streamed = WorkerBlocks::build_streamed(&scheme, &units, &chunked);
        let (rx, ry) = resident.arena(&g.dataset);
        let (sx, sy) = streamed
            .arena_block()
            .expect("streamed always materializes");
        assert_eq!(rx.as_slice(), sx.as_slice(), "arena bytes must match");
        assert_eq!(ry, sy);
        for worker in 0..scheme.num_workers() {
            assert_eq!(resident.worker(worker), streamed.worker(worker));
        }
        for row in 0..40 {
            assert_eq!(resident.src_row(row), streamed.src_row(row));
        }
    }

    #[test]
    fn streamed_single_chunk_arena_is_shared() {
        let cfg = SyntheticConfig::small(30, 3, 5);
        let units = UnitMap::grouped(30, 10);
        let scheme = UncodedScheme::new(10, 5);
        let chunked = bcc_data::ChunkedDataset::synthetic(cfg, 30, 1);
        let before = chunked.materializations();
        let streamed = WorkerBlocks::build_streamed(&scheme, &units, &chunked);
        assert_eq!(
            chunked.materializations(),
            before + 1,
            "exactly the one chunk materialization"
        );
        let (sx, _) = streamed.arena_block().expect("streamed arena");
        let chunk = chunked.chunk(0);
        assert!(
            std::ptr::eq(sx.as_slice().as_ptr(), chunk.features().as_slice().as_ptr()),
            "single-chunk identity build must alias the live chunk"
        );
    }

    #[test]
    fn unit_cache_round_trips() {
        let mut cache = UnitGradientCache::new(3);
        assert!(cache.get(1).is_none());
        cache.store(1, &[1.0, 2.0]);
        assert_eq!(cache.get(1), Some(&[1.0, 2.0][..]));
        cache.begin_round();
        assert!(cache.get(1).is_none(), "begin_round invalidates");
    }
}
