//! Byte-level wire codec for worker messages.
//!
//! The threaded runtime ships every message through this codec so that
//! (a) the communication-load accounting can be cross-checked in actual
//! bytes and (b) the runtime exercises a realistic serialize → channel →
//! deserialize path rather than passing Rust objects by pointer.
//!
//! Format (little-endian):
//!
//! ```text
//! magic  u32 = 0xBCC0_17E5
//! ver    u8  = 1
//! kind   u8  : 0 Sum | 1 Linear | 2 LinearComplex | 3 PerExample
//! iter   u64
//! worker u64
//! compute_seconds f64
//! body   (per kind, see encode_payload)
//! ```

use crate::error::ClusterError;
use crate::message::Envelope;
use bcc_coding::Payload;
use bcc_linalg::Complex;
use bytes::{Buf, BufMut, Bytes, BytesMut};

const MAGIC: u32 = 0xBCC0_17E5;
const VERSION: u8 = 1;

/// Header size: magic + version + kind + iter + worker + compute_seconds.
const HEADER_LEN: usize = 4 + 1 + 1 + 8 + 8 + 8;

/// Exact wire size of a payload body, so encode buffers reserve once and
/// never grow mid-message.
#[must_use]
fn payload_body_len(p: &Payload) -> usize {
    match p {
        Payload::Sum { vector, .. } => 8 + 8 + 8 * vector.len(),
        Payload::Linear { vector } => 8 + 8 * vector.len(),
        Payload::LinearComplex { vector } => 8 + 16 * vector.len(),
        Payload::PerExample { entries } => {
            8 + entries
                .iter()
                .map(|(_, g)| 8 + 8 + 8 * g.len())
                .sum::<usize>()
        }
    }
}

/// Serializes an envelope to bytes (fresh exact-size buffer).
#[must_use]
pub fn encode(envelope: &Envelope) -> Bytes {
    let mut buf = BytesMut::with_capacity(HEADER_LEN + payload_body_len(&envelope.payload));
    encode_into(envelope, &mut buf);
    buf.freeze()
}

/// Serializes an envelope into a reusable staging buffer: clears `buf`,
/// reserves the exact message size, and writes the envelope. Workers keep
/// one `BytesMut` alive across rounds so steady-state encoding never grows
/// a buffer.
pub fn encode_into(envelope: &Envelope, buf: &mut BytesMut) {
    buf.clear();
    buf.reserve(HEADER_LEN + payload_body_len(&envelope.payload));
    buf.put_u32_le(MAGIC);
    buf.put_u8(VERSION);
    buf.put_u8(payload_kind(&envelope.payload));
    buf.put_u64_le(envelope.iteration);
    buf.put_u64_le(envelope.worker as u64);
    buf.put_f64_le(envelope.compute_seconds);
    encode_payload(&envelope.payload, buf);
    debug_assert_eq!(
        buf.len(),
        HEADER_LEN + payload_body_len(&envelope.payload),
        "payload_body_len must stay in sync with encode_payload"
    );
}

fn payload_kind(p: &Payload) -> u8 {
    match p {
        Payload::Sum { .. } => 0,
        Payload::Linear { .. } => 1,
        Payload::LinearComplex { .. } => 2,
        Payload::PerExample { .. } => 3,
    }
}

fn encode_payload(p: &Payload, buf: &mut BytesMut) {
    match p {
        Payload::Sum { unit, vector } => {
            buf.put_u64_le(*unit as u64);
            put_vec(buf, vector);
        }
        Payload::Linear { vector } => put_vec(buf, vector),
        Payload::LinearComplex { vector } => {
            buf.put_u64_le(vector.len() as u64);
            for z in vector {
                buf.put_f64_le(z.re);
                buf.put_f64_le(z.im);
            }
        }
        Payload::PerExample { entries } => {
            buf.put_u64_le(entries.len() as u64);
            for (j, g) in entries {
                buf.put_u64_le(*j as u64);
                put_vec(buf, g);
            }
        }
    }
}

fn put_vec(buf: &mut BytesMut, v: &[f64]) {
    buf.put_u64_le(v.len() as u64);
    for x in v {
        buf.put_f64_le(*x);
    }
}

/// Deserializes an envelope from bytes.
///
/// # Errors
/// [`ClusterError::Wire`] on truncation, bad magic, or unknown versions.
pub fn decode(mut bytes: Bytes) -> Result<Envelope, ClusterError> {
    let need = |b: &Bytes, n: usize, what: &str| -> Result<(), ClusterError> {
        if b.remaining() < n {
            Err(ClusterError::Wire(format!("truncated reading {what}")))
        } else {
            Ok(())
        }
    };

    need(&bytes, 4 + 1 + 1 + 8 + 8 + 8, "header")?;
    let magic = bytes.get_u32_le();
    if magic != MAGIC {
        return Err(ClusterError::Wire(format!("bad magic {magic:#x}")));
    }
    let version = bytes.get_u8();
    if version != VERSION {
        return Err(ClusterError::Wire(format!("unsupported version {version}")));
    }
    let kind = bytes.get_u8();
    let iteration = bytes.get_u64_le();
    let worker = bytes.get_u64_le() as usize;
    let compute_seconds = bytes.get_f64_le();

    let payload = match kind {
        0 => {
            need(&bytes, 8, "sum unit")?;
            let unit = bytes.get_u64_le() as usize;
            let vector = get_vec(&mut bytes)?;
            Payload::Sum { unit, vector }
        }
        1 => Payload::Linear {
            vector: get_vec(&mut bytes)?,
        },
        2 => {
            need(&bytes, 8, "complex len")?;
            let len = bytes.get_u64_le() as usize;
            need(&bytes, len.saturating_mul(16), "complex body")?;
            let mut vector = Vec::with_capacity(len);
            for _ in 0..len {
                let re = bytes.get_f64_le();
                let im = bytes.get_f64_le();
                vector.push(Complex::new(re, im));
            }
            Payload::LinearComplex { vector }
        }
        3 => {
            need(&bytes, 8, "entry count")?;
            let count = bytes.get_u64_le() as usize;
            let mut entries = Vec::with_capacity(count.min(1 << 16));
            for _ in 0..count {
                need(&bytes, 8, "entry index")?;
                let j = bytes.get_u64_le() as usize;
                entries.push((j, get_vec(&mut bytes)?));
            }
            Payload::PerExample { entries }
        }
        k => return Err(ClusterError::Wire(format!("unknown payload kind {k}"))),
    };

    Ok(Envelope {
        iteration,
        worker,
        compute_seconds,
        payload,
    })
}

fn get_vec(bytes: &mut Bytes) -> Result<Vec<f64>, ClusterError> {
    if bytes.remaining() < 8 {
        return Err(ClusterError::Wire("truncated reading vec len".into()));
    }
    let len = bytes.get_u64_le() as usize;
    if bytes.remaining() < len.saturating_mul(8) {
        return Err(ClusterError::Wire("truncated reading vec body".into()));
    }
    let mut v = Vec::with_capacity(len);
    for _ in 0..len {
        v.push(bytes.get_f64_le());
    }
    Ok(v)
}

/// Size in bytes an envelope occupies on the wire — used by tests to check
/// the unit-based load accounting against physical bytes. Computed
/// arithmetically (no encoding pass); `encode_into` debug-asserts the two
/// stay in sync.
#[must_use]
pub fn encoded_len(envelope: &Envelope) -> usize {
    HEADER_LEN + payload_body_len(&envelope.payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(payload: Payload) -> Envelope {
        Envelope {
            iteration: 9,
            worker: 4,
            compute_seconds: 1.25,
            payload,
        }
    }

    #[test]
    fn roundtrip_sum() {
        let e = env(Payload::Sum {
            unit: 3,
            vector: vec![1.0, -2.5, 3.25],
        });
        let decoded = decode(encode(&e)).unwrap();
        assert_eq!(decoded, e);
    }

    #[test]
    fn roundtrip_linear() {
        let e = env(Payload::Linear {
            vector: vec![0.0; 17],
        });
        assert_eq!(decode(encode(&e)).unwrap(), e);
    }

    #[test]
    fn roundtrip_complex() {
        let e = env(Payload::LinearComplex {
            vector: vec![Complex::new(1.0, -1.0), Complex::new(0.5, 2.0)],
        });
        assert_eq!(decode(encode(&e)).unwrap(), e);
    }

    #[test]
    fn roundtrip_per_example() {
        let e = env(Payload::PerExample {
            entries: vec![(0, vec![1.0]), (5, vec![2.0, 3.0])],
        });
        assert_eq!(decode(encode(&e)).unwrap(), e);
    }

    #[test]
    fn roundtrip_empty_vectors() {
        let e = env(Payload::Linear { vector: vec![] });
        assert_eq!(decode(encode(&e)).unwrap(), e);
        let e = env(Payload::PerExample { entries: vec![] });
        assert_eq!(decode(encode(&e)).unwrap(), e);
    }

    #[test]
    fn bad_magic_rejected() {
        let e = env(Payload::Linear { vector: vec![1.0] });
        let mut bytes = encode(&e).to_vec();
        bytes[0] ^= 0xFF;
        assert!(matches!(
            decode(Bytes::from(bytes)),
            Err(ClusterError::Wire(_))
        ));
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let e = env(Payload::PerExample {
            entries: vec![(1, vec![1.0, 2.0, 3.0])],
        });
        let full = encode(&e);
        for cut in 0..full.len() {
            let partial = full.slice(0..cut);
            assert!(
                decode(partial).is_err(),
                "decode of {cut}-byte prefix should fail"
            );
        }
    }

    #[test]
    fn unknown_version_rejected() {
        let e = env(Payload::Linear { vector: vec![] });
        let mut bytes = encode(&e).to_vec();
        bytes[4] = 99;
        assert!(matches!(
            decode(Bytes::from(bytes)),
            Err(ClusterError::Wire(msg)) if msg.contains("version")
        ));
    }

    #[test]
    fn encoded_len_matches_actual_encoding() {
        for payload in [
            Payload::Sum {
                unit: 3,
                vector: vec![1.0; 7],
            },
            Payload::Linear { vector: vec![] },
            Payload::LinearComplex {
                vector: vec![Complex::new(1.0, 2.0); 3],
            },
            Payload::PerExample {
                entries: vec![(0, vec![1.0; 4]), (2, vec![2.0; 4])],
            },
        ] {
            let e = env(payload);
            assert_eq!(encoded_len(&e), encode(&e).len());
        }
    }

    #[test]
    fn encode_into_reuses_buffer_across_messages() {
        let mut buf = BytesMut::with_capacity(0);
        let big = env(Payload::Linear {
            vector: vec![1.5; 64],
        });
        let small = env(Payload::Sum {
            unit: 1,
            vector: vec![-2.0; 3],
        });
        for e in [&big, &small, &big] {
            encode_into(e, &mut buf);
            let bytes = Bytes::copy_from_slice(buf.as_ref());
            assert_eq!(&decode(bytes).unwrap(), e, "reused buffer round-trips");
        }
    }

    #[test]
    fn per_example_is_proportionally_larger() {
        // The wire-level counterpart of eq. (6): r per-example entries cost
        // ~r× the bytes of one summed message of the same dimension.
        let dim = 64;
        let summed = env(Payload::Sum {
            unit: 0,
            vector: vec![1.0; dim],
        });
        let r = 10;
        let per_example = env(Payload::PerExample {
            entries: (0..r).map(|j| (j, vec![1.0; dim])).collect(),
        });
        let ratio = encoded_len(&per_example) as f64 / encoded_len(&summed) as f64;
        assert!(
            (ratio - r as f64).abs() < 1.0,
            "byte ratio {ratio} should be ≈ {r}"
        );
    }
}
