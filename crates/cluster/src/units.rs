//! Work units: grouping raw examples into the units the schemes code over.
//!
//! The paper's footnote 1: "When `m > n`, we can partition the dataset into
//! `n` groups, and view each group of `m/n` training examples as a *super
//! example*." The EC2 experiments do exactly this — scenario one has 50
//! batches of 100 data points. [`UnitMap`] is that grouping: scheme-level
//! "example" indices map to contiguous ranges of dataset rows, and the
//! per-unit partial gradient is the sum of the per-row gradients.

use bcc_data::{Batching, Dataset};
use bcc_optim::gradient::sum_partial_gradients;
use bcc_optim::Loss;

/// Maps scheme-level units to ranges of dataset examples.
#[derive(Debug, Clone)]
pub struct UnitMap {
    batching: Batching,
}

impl UnitMap {
    /// One unit per dataset example (the trivial grouping).
    #[must_use]
    pub fn identity(num_examples: usize) -> Self {
        Self {
            batching: Batching::even(num_examples, 1),
        }
    }

    /// Groups `num_examples` dataset rows into `units` equal super-examples.
    ///
    /// # Panics
    /// Panics when `units == 0` or `units > num_examples`.
    #[must_use]
    pub fn grouped(num_examples: usize, units: usize) -> Self {
        assert!(units > 0, "need at least one unit");
        assert!(
            units <= num_examples,
            "cannot have more units ({units}) than examples ({num_examples})"
        );
        let per = num_examples.div_ceil(units);
        let batching = Batching::even(num_examples, per);
        assert_eq!(
            batching.num_batches(),
            units,
            "grouping must produce exactly the requested unit count"
        );
        Self { batching }
    }

    /// Number of scheme-level units.
    #[must_use]
    pub fn num_units(&self) -> usize {
        self.batching.num_batches()
    }

    /// Number of underlying dataset examples.
    #[must_use]
    pub fn num_examples(&self) -> usize {
        self.batching.num_examples()
    }

    /// Dataset rows belonging to a unit.
    #[must_use]
    pub fn unit_examples(&self, unit: usize) -> Vec<usize> {
        self.batching.batch_indices(unit)
    }

    /// Dataset row range of a unit, without materializing an index vector
    /// (units are contiguous by construction).
    #[must_use]
    pub fn unit_range(&self, unit: usize) -> std::ops::Range<usize> {
        self.batching.batch_range(unit)
    }

    /// Partial gradient of one unit: `Σ_{j∈unit} g_j(w)`.
    #[must_use]
    pub fn unit_gradient<L: Loss>(
        &self,
        data: &Dataset,
        loss: &L,
        unit: usize,
        w: &[f64],
    ) -> Vec<f64> {
        sum_partial_gradients(data, loss, &self.unit_examples(unit), w)
    }

    /// Partial gradients for a worker's unit list, in the given order —
    /// exactly the `partials` argument scheme encoders expect.
    #[must_use]
    pub fn worker_partials<L: Loss>(
        &self,
        data: &Dataset,
        loss: &L,
        units: &[usize],
        w: &[f64],
    ) -> Vec<Vec<f64>> {
        units
            .iter()
            .map(|&u| self.unit_gradient(data, loss, u, w))
            .collect()
    }

    /// Like [`UnitMap::worker_partials`] but callable with `&dyn Loss` —
    /// the per-example reference path the packed kernels are pinned against
    /// (see `bcc_optim::GradScratch::worker_partials` for the hot path).
    #[must_use]
    pub fn worker_partials_dyn(
        &self,
        data: &Dataset,
        loss: &dyn Loss,
        units: &[usize],
        w: &[f64],
    ) -> Vec<Vec<f64>> {
        units
            .iter()
            .map(|&u| {
                let mut acc = vec![0.0; w.len()];
                for j in self.unit_range(u) {
                    loss.add_gradient(data.x(j), data.y(j), w, &mut acc);
                }
                acc
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_data::synthetic::{generate, SyntheticConfig};
    use bcc_linalg::approx_eq_slice;
    use bcc_optim::gradient::full_gradient;
    use bcc_optim::LogisticLoss;

    #[test]
    fn identity_has_one_example_per_unit() {
        let um = UnitMap::identity(5);
        assert_eq!(um.num_units(), 5);
        assert_eq!(um.unit_examples(3), vec![3]);
    }

    #[test]
    fn grouped_partitions_evenly() {
        let um = UnitMap::grouped(100, 10);
        assert_eq!(um.num_units(), 10);
        assert_eq!(um.unit_examples(0).len(), 10);
        assert_eq!(um.num_examples(), 100);
    }

    #[test]
    fn unit_gradients_sum_to_full_gradient() {
        let g = generate(&SyntheticConfig::small(60, 6, 5));
        let um = UnitMap::grouped(60, 12);
        let w = vec![0.1; 6];
        let mut acc = vec![0.0; 6];
        for u in 0..um.num_units() {
            let gu = um.unit_gradient(&g.dataset, &LogisticLoss, u, &w);
            bcc_linalg::vec_ops::add_assign(&mut acc, &gu);
        }
        bcc_linalg::vec_ops::scale(1.0 / 60.0, &mut acc);
        let full = full_gradient(&g.dataset, &LogisticLoss, &w);
        assert!(approx_eq_slice(&acc, &full, 1e-9));
    }

    #[test]
    fn worker_partials_ordered_like_input() {
        let g = generate(&SyntheticConfig::small(20, 4, 6));
        let um = UnitMap::grouped(20, 5);
        let w = vec![0.0; 4];
        let partials = um.worker_partials(&g.dataset, &LogisticLoss, &[3, 1], &w);
        assert_eq!(partials.len(), 2);
        assert_eq!(
            partials[0],
            um.unit_gradient(&g.dataset, &LogisticLoss, 3, &w)
        );
        assert_eq!(
            partials[1],
            um.unit_gradient(&g.dataset, &LogisticLoss, 1, &w)
        );
    }

    #[test]
    #[should_panic(expected = "more units")]
    fn too_many_units_panics() {
        let _ = UnitMap::grouped(5, 10);
    }
}
