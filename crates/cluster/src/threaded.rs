//! Threaded cluster: one OS thread per worker, crossbeam channels as the
//! network, injected stragglers, byte-level wire messages.
//!
//! The runtime mirrors the paper's MPI implementation: workers compute
//! partial gradients on their assigned units, encode them, and send
//! asynchronously; the master consumes messages from its single receive
//! queue (each transfer occupying the port for `overhead + units·per_unit`
//! scaled seconds) and stops as soon as the scheme's decoder completes.
//! Straggling is emulated by sampling the paper's shift-exponential model
//! and sleeping that long (compressed by `time_scale`), so the *relative*
//! timing behaviour — order statistics of arrivals, serialized receipt —
//! matches the EC2 experiments at a laptop-friendly wall clock.

use crate::backend::{ClusterBackend, RoundOutcome};
use crate::error::ClusterError;
use crate::latency::ClusterProfile;
use crate::metrics::RoundMetrics;
use crate::units::UnitMap;
use crate::wire;
use bcc_coding::GradientCodingScheme;
use bcc_data::Dataset;
use bcc_optim::Loss;
use bcc_stats::rng::derive_rng;
use crossbeam_channel::{unbounded, RecvTimeoutError};
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Granularity of cancellable sleeps.
const SLEEP_SLICE: Duration = Duration::from_millis(2);

/// Threaded master/worker backend.
#[derive(Debug)]
pub struct ThreadedCluster {
    profile: ClusterProfile,
    seed: u64,
    round: u64,
    /// Real seconds slept per simulated second (e.g. `0.01` compresses a
    /// 1 s simulated straggler to 10 ms of wall time).
    time_scale: f64,
    /// Master receive timeout in *real* time before declaring a stall.
    recv_timeout: Duration,
    dead_workers: HashSet<usize>,
}

impl ThreadedCluster {
    /// Creates a threaded cluster.
    ///
    /// # Panics
    /// Panics on a non-positive `time_scale`.
    #[must_use]
    pub fn new(profile: ClusterProfile, seed: u64, time_scale: f64) -> Self {
        assert!(
            time_scale > 0.0 && time_scale.is_finite(),
            "time_scale must be positive"
        );
        Self {
            profile,
            seed,
            round: 0,
            time_scale,
            recv_timeout: Duration::from_secs(5),
            dead_workers: HashSet::new(),
        }
    }

    /// Sets the master's stall-detection timeout (real time).
    #[must_use]
    pub fn with_recv_timeout(mut self, timeout: Duration) -> Self {
        self.recv_timeout = timeout;
        self
    }

    /// Marks workers as dead (they never send) for failure injection.
    pub fn kill_workers(&mut self, workers: impl IntoIterator<Item = usize>) {
        self.dead_workers.extend(workers);
    }

    /// Revives all workers.
    pub fn revive_all(&mut self) {
        self.dead_workers.clear();
    }

    /// The profile in force.
    #[must_use]
    pub fn profile(&self) -> &ClusterProfile {
        &self.profile
    }
}

/// Sleeps `duration`, waking early when `cancel` flips — lets straggler
/// threads exit as soon as the master completed the round.
fn cancellable_sleep(duration: Duration, cancel: &AtomicBool) {
    let deadline = Instant::now() + duration;
    while Instant::now() < deadline {
        if cancel.load(Ordering::Relaxed) {
            return;
        }
        std::thread::sleep(SLEEP_SLICE.min(deadline.saturating_duration_since(Instant::now())));
    }
}

impl ClusterBackend for ThreadedCluster {
    fn run_round(
        &mut self,
        scheme: &dyn GradientCodingScheme,
        units: &UnitMap,
        data: &Dataset,
        loss: &dyn Loss,
        weights: &[f64],
    ) -> Result<RoundOutcome, ClusterError> {
        let n = scheme.num_workers();
        assert_eq!(
            n,
            self.profile.num_workers(),
            "scheme has {n} workers but profile has {}",
            self.profile.num_workers()
        );
        let round = self.round;
        self.round += 1;
        let time_scale = self.time_scale;
        let seed = self.seed;
        let iteration = round;

        let (tx, rx) = unbounded::<bytes::Bytes>();
        let cancel = AtomicBool::new(false);
        let start = Instant::now();

        let result: Result<(Vec<f64>, RoundMetrics), ClusterError> = crossbeam::scope(|scope| {
            // --- Workers -------------------------------------------------
            for worker in 0..n {
                if self.dead_workers.contains(&worker) {
                    continue;
                }
                let load = scheme.placement().load_of(worker);
                if load == 0 {
                    continue;
                }
                let tx = tx.clone();
                let cancel = &cancel;
                let profile = self.profile.workers[worker];
                scope.spawn(move |_| {
                    let mut rng = derive_rng(seed, round.wrapping_mul(1_000_003) + worker as u64);
                    let delay = profile.sample_compute_time(load, &mut rng);

                    // Real computation: the worker's unit partial gradients.
                    let worker_units = scheme.placement().worker_examples(worker);
                    let partials = units.worker_partials_dyn(data, loss, worker_units, weights);
                    let Ok(payload) = scheme.encode(worker, &partials) else {
                        return; // malformed config; master will stall & report
                    };

                    // Emulated straggling on top of the real compute.
                    cancellable_sleep(Duration::from_secs_f64(delay * time_scale), cancel);
                    if cancel.load(Ordering::Relaxed) {
                        return;
                    }
                    let envelope = crate::message::Envelope {
                        iteration,
                        worker,
                        compute_seconds: delay,
                        payload,
                    };
                    // Receiver may already have hung up — that's fine.
                    let _ = tx.send(wire::encode(&envelope));
                });
            }
            drop(tx);

            // --- Master --------------------------------------------------
            let mut decoder = scheme.decoder();
            let mut max_compute_used = 0.0f64;
            let outcome = loop {
                match rx.recv_timeout(self.recv_timeout) {
                    Ok(bytes) => {
                        // Serialized receive port: transfer occupies the
                        // master for the scaled transfer duration.
                        let envelope = wire::decode(bytes)?;
                        if envelope.iteration != iteration {
                            continue; // stale message from a previous round
                        }
                        let transfer = self.profile.comm.transfer_time(envelope.payload.units());
                        std::thread::sleep(Duration::from_secs_f64(transfer * time_scale));
                        let done = decoder.receive(envelope.worker, envelope.payload)?;
                        max_compute_used = max_compute_used.max(envelope.compute_seconds);
                        if done {
                            break Ok(());
                        }
                    }
                    Err(RecvTimeoutError::Disconnected) => {
                        break Err(ClusterError::Stalled {
                            received: decoder.messages_received(),
                            reason: "all live workers reported without completing the scheme"
                                .into(),
                        });
                    }
                    Err(RecvTimeoutError::Timeout) => {
                        break Err(ClusterError::Stalled {
                            received: decoder.messages_received(),
                            reason: format!(
                                "no message within {:?} (dead workers?)",
                                self.recv_timeout
                            ),
                        });
                    }
                }
            };
            // Wake any sleeping stragglers so scope join is prompt.
            cancel.store(true, Ordering::Relaxed);
            outcome?;

            let total_time = start.elapsed().as_secs_f64() / time_scale;
            let gradient_sum = decoder.decode().map_err(ClusterError::from)?;
            let metrics = RoundMetrics {
                messages_used: decoder.messages_received(),
                communication_units: decoder.communication_units(),
                compute_time: max_compute_used,
                comm_time: (total_time - max_compute_used).max(0.0),
                total_time,
            };
            Ok((gradient_sum, metrics))
        })
        .map_err(|_| ClusterError::WorkerFailed { worker: usize::MAX })?;

        let (gradient_sum, metrics) = result?;
        Ok(RoundOutcome {
            gradient_sum,
            metrics,
        })
    }

    fn backend_name(&self) -> &'static str {
        "threaded"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::{ClusterProfile, CommModel};
    use bcc_coding::{BccScheme, UncodedScheme};
    use bcc_data::synthetic::{generate, SyntheticConfig};
    use bcc_linalg::approx_eq_slice;
    use bcc_optim::gradient::full_gradient;
    use bcc_optim::LogisticLoss;

    fn fast_profile(n: usize) -> ClusterProfile {
        ClusterProfile::homogeneous(
            n,
            4.0,
            0.0005,
            CommModel {
                per_message_overhead: 0.0005,
                per_unit: 0.002,
            },
        )
    }

    /// Aggressive compression so tests run in milliseconds.
    const SCALE: f64 = 0.02;

    #[test]
    fn uncoded_round_matches_serial_gradient() {
        let g = generate(&SyntheticConfig::small(30, 4, 1));
        let units = UnitMap::grouped(30, 10);
        let scheme = UncodedScheme::new(10, 5);
        let mut cluster = ThreadedCluster::new(fast_profile(5), 3, SCALE);
        let w = vec![0.1; 4];
        let out = cluster
            .run_round(&scheme, &units, &g.dataset, &LogisticLoss, &w)
            .unwrap();
        let mut expect = full_gradient(&g.dataset, &LogisticLoss, &w);
        bcc_linalg::vec_ops::scale(30.0, &mut expect);
        assert!(approx_eq_slice(&out.gradient_sum, &expect, 1e-8));
        assert_eq!(out.metrics.messages_used, 5);
        assert!(out.metrics.total_time > 0.0);
    }

    #[test]
    fn bcc_round_exact_and_early() {
        let g = generate(&SyntheticConfig::small(40, 4, 2));
        let units = UnitMap::grouped(40, 8);
        // 8 units, r=2 → 4 batches; 16 workers, coverage guaranteed by hand.
        let choices = vec![0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3];
        let scheme = BccScheme::from_choices(8, 2, choices);
        let mut cluster = ThreadedCluster::new(fast_profile(16), 5, SCALE);
        let w = vec![0.0; 4];
        let out = cluster
            .run_round(&scheme, &units, &g.dataset, &LogisticLoss, &w)
            .unwrap();
        let mut expect = full_gradient(&g.dataset, &LogisticLoss, &w);
        bcc_linalg::vec_ops::scale(40.0, &mut expect);
        assert!(approx_eq_slice(&out.gradient_sum, &expect, 1e-8));
        assert!(
            out.metrics.messages_used < 16,
            "BCC should stop before hearing all workers"
        );
    }

    #[test]
    fn dead_worker_stalls_uncoded_with_timeout() {
        let g = generate(&SyntheticConfig::small(20, 3, 3));
        let units = UnitMap::grouped(20, 10);
        let scheme = UncodedScheme::new(10, 5);
        let mut cluster = ThreadedCluster::new(fast_profile(5), 7, SCALE)
            .with_recv_timeout(Duration::from_millis(300));
        cluster.kill_workers([0]);
        let err = cluster
            .run_round(&scheme, &units, &g.dataset, &LogisticLoss, &[0.0; 3])
            .unwrap_err();
        assert!(matches!(err, ClusterError::Stalled { .. }));
    }

    #[test]
    fn consecutive_rounds_work() {
        let g = generate(&SyntheticConfig::small(20, 3, 4));
        let units = UnitMap::grouped(20, 10);
        let scheme = UncodedScheme::new(10, 5);
        let mut cluster = ThreadedCluster::new(fast_profile(5), 9, SCALE);
        let w = vec![0.0; 3];
        for _ in 0..3 {
            let out = cluster
                .run_round(&scheme, &units, &g.dataset, &LogisticLoss, &w)
                .unwrap();
            assert_eq!(out.metrics.messages_used, 5);
        }
    }
}
