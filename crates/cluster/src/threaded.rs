//! Threaded cluster: one OS thread per worker, crossbeam channels as the
//! network, injected stragglers, byte-level wire messages.
//!
//! The runtime mirrors the paper's MPI implementation: workers compute
//! partial gradients on their assigned units, encode them, and send
//! asynchronously; the master consumes messages from its single receive
//! queue (each transfer occupying the port for `overhead + units·per_unit`
//! scaled seconds) and stops as soon as the scheme's decoder completes.
//! Straggling is emulated by sampling the installed
//! [`StragglerModel`] (by default the
//! paper's shift-exponential) and sleeping that long (compressed by
//! `time_scale`), so the *relative* timing behaviour — order statistics of
//! arrivals, serialized receipt — matches the EC2 experiments at a
//! laptop-friendly wall clock.
//!
//! All protocol logic lives in the shared [`RoundEngine`]; this file only
//! produces arrivals: worker threads push wire-encoded envelopes into a
//! channel, and the internal `ThreadedArrivals` source decodes them, models the serialized
//! receive port, and hands them to the engine. [`ClusterBackend::run_rounds`]
//! is overridden to keep the worker threads alive across a whole training
//! run, broadcasting fresh weights each round instead of re-spawning
//! `n` threads per iteration.

use crate::backend::{ClusterBackend, FixedPointDriver, RoundDriver, RoundOutcome};
use crate::config::BackendConfig;
use crate::decode::DecodePool;
use crate::engine::{Arrival, ArrivalEvent, ArrivalSource, RoundContext, RoundEngine};
use crate::error::ClusterError;
use crate::latency::{ClusterProfile, CommModel};
use crate::minibatch::Minibatch;
use crate::observer::{NullObserver, RoundObserver, SharedObserver};
use crate::packed::WorkerBlocks;
use crate::policy::AggregationPolicy;
use crate::straggler::{self, StragglerModel};
use crate::units::UnitMap;
use crate::wire;
use bcc_coding::GradientCodingScheme;
use bcc_data::Dataset;
use bcc_optim::{GradScratch, Loss};
use crossbeam_channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Granularity of cancellable sleeps.
const SLEEP_SLICE: Duration = Duration::from_millis(2);

/// Threaded master/worker backend.
#[derive(Debug)]
pub struct ThreadedCluster {
    profile: ClusterProfile,
    model: Arc<dyn StragglerModel>,
    policy: Arc<dyn AggregationPolicy>,
    observer: Option<SharedObserver>,
    seed: u64,
    round: u64,
    /// Real seconds slept per simulated second (e.g. `0.01` compresses a
    /// 1 s simulated straggler to 10 ms of wall time).
    time_scale: f64,
    /// Master receive timeout in *real* time before declaring a stall.
    recv_timeout: Duration,
    dead_workers: HashSet<usize>,
    decode_pool: DecodePool,
    minibatch: Option<Minibatch>,
}

impl ThreadedCluster {
    /// Creates a threaded cluster.
    ///
    /// # Panics
    /// Panics on a non-positive `time_scale`.
    #[must_use]
    pub fn new(profile: ClusterProfile, seed: u64, time_scale: f64) -> Self {
        assert!(
            time_scale > 0.0 && time_scale.is_finite(),
            "time_scale must be positive"
        );
        let model = straggler::default_model(&profile);
        Self {
            profile,
            model,
            policy: crate::policy::default_policy(),
            observer: None,
            seed,
            round: 0,
            time_scale,
            recv_timeout: Duration::from_secs(5),
            dead_workers: HashSet::new(),
            decode_pool: DecodePool::default(),
            minibatch: None,
        }
    }

    /// Applies every [`BackendConfig`] knob this backend implements:
    /// latency model, aggregation policy, observer, decode pool, minibatch
    /// sampler, and receive timeout. TCP-only knobs (heartbeat/connect
    /// timeouts, pipelining, job, auth token) are ignored.
    #[must_use]
    pub fn configured(mut self, config: BackendConfig) -> Self {
        if let Some(model) = config.straggler_model {
            self.model = model;
        }
        if let Some(policy) = config.aggregation_policy {
            self.policy = policy;
        }
        if let Some(observer) = config.observer {
            self.observer = Some(observer);
        }
        if let Some(pool) = config.decode_pool {
            self.decode_pool = pool;
        }
        if let Some(minibatch) = config.minibatch {
            self.minibatch = Some(minibatch);
        }
        if let Some(timeout) = config.recv_timeout {
            self.recv_timeout = timeout;
        }
        self
    }

    /// Installs a per-round unit-subset sampler: each round trains on a
    /// sampled minibatch instead of the full partition (see
    /// [`crate::minibatch`]). Worker threads derive each round's selection
    /// locally from the sampler seed — nothing extra goes over the wire.
    /// `None` restores full-partition rounds.
    #[deprecated(note = "use `configured(BackendConfig)` instead")]
    #[must_use]
    pub fn with_minibatch(mut self, minibatch: Option<Minibatch>) -> Self {
        self.minibatch = minibatch;
        self
    }

    /// Overrides the master's decode/aggregate thread budget (default:
    /// all available cores). Bit-identical results at any setting — see
    /// [`crate::decode`]'s determinism contract.
    #[deprecated(note = "use `configured(BackendConfig)` instead")]
    #[must_use]
    pub fn with_decode_pool(mut self, pool: DecodePool) -> Self {
        self.decode_pool = pool;
        self
    }

    /// Replaces the worker-latency model (see the
    /// [zoo](crate::straggler)). The profile keeps supplying the comm model
    /// and worker count; compute times come from `model`.
    #[deprecated(note = "use `configured(BackendConfig)` instead")]
    #[must_use]
    pub fn with_straggler_model(mut self, model: Arc<dyn StragglerModel>) -> Self {
        self.model = model;
        self
    }

    /// Replaces the aggregation policy deciding round completion and the
    /// returned gradient (default:
    /// [`WaitDecodable`](crate::policy::WaitDecodable)).
    #[deprecated(note = "use `configured(BackendConfig)` instead")]
    #[must_use]
    pub fn with_aggregation_policy(mut self, policy: Arc<dyn AggregationPolicy>) -> Self {
        self.policy = policy;
        self
    }

    /// Installs a subscriber for the per-round
    /// [`RoundEvent`](crate::observer::RoundEvent) stream.
    #[deprecated(note = "use `configured(BackendConfig)` instead")]
    #[must_use]
    pub fn with_observer(mut self, observer: SharedObserver) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Sets the master's stall-detection timeout (real time).
    #[deprecated(note = "use `configured(BackendConfig)` instead")]
    #[must_use]
    pub fn with_recv_timeout(mut self, timeout: Duration) -> Self {
        self.recv_timeout = timeout;
        self
    }

    /// Marks workers as dead (they never send) for failure injection.
    pub fn kill_workers(&mut self, workers: impl IntoIterator<Item = usize>) {
        self.dead_workers.extend(workers);
    }

    /// Revives all workers.
    pub fn revive_all(&mut self) {
        self.dead_workers.clear();
    }

    /// The profile in force.
    #[must_use]
    pub fn profile(&self) -> &ClusterProfile {
        &self.profile
    }

    /// Drives `rounds` rounds against a pool of persistent worker threads.
    ///
    /// `first_round` is the global round id of the first iteration (used for
    /// the per-round latency streams and stale-message filtering).
    /// `attempted` counts rounds started (including a failing one) so the
    /// caller can advance its round counter exactly as `attempted`
    /// sequential `run_round` calls would have.
    fn run_with_worker_pool(
        &self,
        first_round: u64,
        rounds: usize,
        ctx: RoundContext<'_>,
        driver: &mut dyn RoundDriver,
        attempted: &mut u64,
    ) -> Result<(), ClusterError> {
        let participants = ctx.participants(&self.dead_workers);
        let (result_tx, result_rx) = unbounded::<PoolMessage>();
        // Workers watch this to abandon rounds the master already finished
        // (or, on `u64::MAX`, to shut down without sending).
        let finished_before = AtomicU64::new(first_round);

        let outcome: Result<Result<(), ClusterError>, _> = crossbeam::scope(|scope| {
            let mut weight_txs: Vec<Sender<(u64, Arc<Vec<f64>>)>> = Vec::new();
            for &worker in &participants {
                let (weight_tx, weight_rx) = unbounded::<(u64, Arc<Vec<f64>>)>();
                weight_txs.push(weight_tx);
                let result_tx = result_tx.clone();
                let model = Arc::clone(&self.model);
                let full_load = ctx.scheme.placement().load_of(worker);
                let (seed, time_scale) = (self.seed, self.time_scale);
                let finished_before = &finished_before;
                scope.spawn(move |_| {
                    // One thread serves the same worker for every round of
                    // the run: thread spawn cost is paid once, not per
                    // iteration. Unless the master cancels the round first,
                    // every round produces exactly one message (Envelope or
                    // Skipped), which is what lets the master detect
                    // "all live workers reported without completing"
                    // promptly instead of burning the receive timeout.
                    // Per-thread reusable state: gradient scratch and the
                    // wire staging buffer live for the whole run, so the
                    // steady-state round loop allocates only the outgoing
                    // `Bytes` itself.
                    let mut scratch = GradScratch::new();
                    let mut wire_buf = bytes::BytesMut::with_capacity(0);
                    while let Ok((round, weights)) = weight_rx.recv() {
                        // Round-local: minibatch rounds sample a fresh unit
                        // subset each round, so the latency-relevant load is
                        // the worker's *selected* unit count. Deriving the
                        // selection here (not at the master) keeps the wire
                        // format unchanged.
                        let selection = ctx.selection_for(round);
                        let load = match &selection {
                            Some(sel) => {
                                sel.selected_load(ctx.scheme.placement().worker_examples(worker))
                            }
                            None => full_load,
                        };
                        // Zero selected load: the worker still encodes and
                        // sends (coded messages mix selected and unselected
                        // units) but computes nothing, and the latency model
                        // is undefined at zero load.
                        let delay = if load == 0 {
                            0.0
                        } else {
                            model.compute_seconds(seed, round, worker, load)
                        };
                        // Emulated straggling first: the sampled delay models
                        // the worker's compute duration, and sleeping before
                        // the real work keeps cancellation responsive — a
                        // straggler whose round the master already finished
                        // wakes within a sleep slice and never starts
                        // computing, so its next round is not delayed.
                        cancellable_sleep(Duration::from_secs_f64(delay * time_scale), || {
                            finished_before.load(Ordering::Relaxed) > round
                        });
                        if finished_before.load(Ordering::Relaxed) > round {
                            continue; // master completed this round already
                        }
                        // Real computation: the worker's unit partial
                        // gradients (packed-kernel path), encoded with the
                        // scheme and staged through the reused wire buffer.
                        let message = match ctx.compute_and_encode_selected(
                            worker,
                            &weights,
                            &mut scratch,
                            selection.as_ref(),
                        ) {
                            Ok(payload) => {
                                wire::encode_into(
                                    &crate::message::Envelope {
                                        iteration: round,
                                        worker,
                                        compute_seconds: delay,
                                        payload,
                                    },
                                    &mut wire_buf,
                                );
                                PoolMessage::Envelope(bytes::Bytes::copy_from_slice(
                                    wire_buf.as_ref(),
                                ))
                            }
                            // Malformed config: report the round as skipped so
                            // the master can stall promptly and accurately.
                            Err(_) => PoolMessage::Skipped { round },
                        };
                        if finished_before.load(Ordering::Relaxed) > round {
                            continue; // round completed while we computed
                        }
                        // Receiver may already have hung up — that's fine.
                        let _ = result_tx.send(message);
                    }
                });
            }
            drop(result_tx);

            // --- Master: one engine per round over the shared pool -------
            for index in 0..rounds {
                let round = first_round + index as u64;
                *attempted = index as u64 + 1;
                let weights = Arc::new(driver.eval_point(index));
                for weight_tx in &weight_txs {
                    let _ = weight_tx.send((round, Arc::clone(&weights)));
                }
                let mut source = ThreadedArrivals {
                    rx: &result_rx,
                    round,
                    comm: self.profile.comm,
                    time_scale: self.time_scale,
                    recv_timeout: self.recv_timeout,
                    start: Instant::now(),
                    participants: participants.len(),
                    reports: 0,
                };
                let mut engine =
                    RoundEngine::with_policy(ctx.scheme, participants.len(), &*self.policy)
                        .with_decode_pool(self.decode_pool);
                let result = {
                    let mut null = NullObserver;
                    let mut guard = self
                        .observer
                        .as_ref()
                        .map(|o| o.lock().expect("round observer lock poisoned"));
                    let observer: &mut dyn RoundObserver = match guard.as_deref_mut() {
                        Some(o) => o,
                        None => &mut null,
                    };
                    engine.run_observed(&mut source, round, observer)
                };
                // Wake sleeping stragglers of this round promptly.
                finished_before.store(round + 1, Ordering::Relaxed);
                if let Err(e) = result {
                    finished_before.store(u64::MAX, Ordering::Relaxed);
                    return Err(e);
                }
                let total_time = source.start.elapsed().as_secs_f64() / self.time_scale;
                let arrivals = engine.arrival_stamps();
                let (aggregate, metrics) = engine.finish(total_time)?;
                let examples_used = ctx.selection_for(round).map(|sel| ctx.examples_in(&sel));
                driver.consume(
                    index,
                    RoundOutcome::new(aggregate, metrics)
                        .with_examples_used(examples_used)
                        .with_arrivals(arrivals),
                );
            }
            drop(weight_txs); // workers drain and exit
            Ok(())
        });

        outcome.map_err(|_| ClusterError::WorkerFailed { worker: usize::MAX })?
    }
}

/// Sleeps `duration`, waking early when `cancelled` reports true — lets
/// straggler threads abandon a round as soon as the master completed it.
fn cancellable_sleep(duration: Duration, cancelled: impl Fn() -> bool) {
    let deadline = Instant::now() + duration;
    while Instant::now() < deadline {
        if cancelled() {
            return;
        }
        std::thread::sleep(SLEEP_SLICE.min(deadline.saturating_duration_since(Instant::now())));
    }
}

/// One message from a pool worker to the master.
enum PoolMessage {
    /// A wire-encoded [`crate::message::Envelope`] (the data path stays
    /// byte-level).
    Envelope(bytes::Bytes),
    /// Control-plane marker: the worker produced no payload for `round`
    /// (encode failure). Lets the master distinguish "everyone reported,
    /// scheme cannot complete" from "still waiting on stragglers".
    Skipped { round: u64 },
}

/// Arrival adapter: receives wire-encoded envelopes from the worker pool,
/// filters stale rounds, and models the master's serialized receive port by
/// occupying the thread for the scaled transfer duration. Counts per-round
/// reports so a round that cannot complete stalls as soon as the last live
/// participant has spoken, not after the receive timeout.
struct ThreadedArrivals<'a> {
    rx: &'a Receiver<PoolMessage>,
    round: u64,
    comm: CommModel,
    time_scale: f64,
    recv_timeout: Duration,
    start: Instant,
    /// Live participants this round (upper bound on reports).
    participants: usize,
    /// Messages (delivered or skipped) seen for this round so far.
    reports: usize,
}

impl ArrivalSource for ThreadedArrivals<'_> {
    fn next_arrival(&mut self) -> Result<ArrivalEvent, ClusterError> {
        loop {
            if self.reports >= self.participants {
                return Ok(ArrivalEvent::Exhausted {
                    reason: "all live workers reported without completing the scheme".into(),
                });
            }
            match self.rx.recv_timeout(self.recv_timeout) {
                Ok(PoolMessage::Envelope(bytes)) => {
                    let envelope = wire::decode(bytes)?;
                    if envelope.iteration != self.round {
                        continue; // stale straggler from a previous round
                    }
                    self.reports += 1;
                    // Serialized receive port: the transfer occupies the
                    // master for the scaled transfer duration.
                    let transfer = self.comm.transfer_time(envelope.payload.units());
                    std::thread::sleep(Duration::from_secs_f64(transfer * self.time_scale));
                    return Ok(ArrivalEvent::Delivered(Arrival {
                        worker: envelope.worker,
                        payload: envelope.payload,
                        compute_seconds: envelope.compute_seconds,
                        at: self.start.elapsed().as_secs_f64() / self.time_scale,
                    }));
                }
                Ok(PoolMessage::Skipped { round }) => {
                    if round == self.round {
                        self.reports += 1;
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    // Backstop only: pool threads outlive every round, so
                    // this fires just if the scope is tearing down.
                    return Ok(ArrivalEvent::Exhausted {
                        reason: "all live workers reported without completing the scheme".into(),
                    });
                }
                Err(RecvTimeoutError::Timeout) => {
                    return Ok(ArrivalEvent::Exhausted {
                        reason: format!(
                            "no message within {:?} (dead workers?)",
                            self.recv_timeout
                        ),
                    });
                }
            }
        }
    }
}

impl ClusterBackend for ThreadedCluster {
    fn run_round(
        &mut self,
        scheme: &dyn GradientCodingScheme,
        units: &UnitMap,
        data: &Dataset,
        loss: &dyn Loss,
        weights: &[f64],
    ) -> Result<RoundOutcome, ClusterError> {
        let packed = WorkerBlocks::build(scheme, units, data);
        let ctx = RoundContext {
            scheme,
            units,
            data,
            loss,
            packed: &packed,
            minibatch: self.minibatch,
        };
        ctx.validate(&self.profile);
        let round = self.round;
        self.round += 1;
        let mut single = FixedPointDriver::new(weights.to_vec());
        self.run_with_worker_pool(round, 1, ctx, &mut single, &mut 0)?;
        Ok(single
            .outcomes
            .pop()
            .expect("run_with_worker_pool consumed one round"))
    }

    fn run_rounds(
        &mut self,
        rounds: usize,
        scheme: &dyn GradientCodingScheme,
        units: &UnitMap,
        data: &Dataset,
        loss: &dyn Loss,
        driver: &mut dyn RoundDriver,
    ) -> Result<(), ClusterError> {
        // Pack once per training run; worker threads stream these blocks
        // every round.
        let packed = WorkerBlocks::build(scheme, units, data);
        let ctx = RoundContext {
            scheme,
            units,
            data,
            loss,
            packed: &packed,
            minibatch: self.minibatch,
        };
        ctx.validate(&self.profile);
        let first_round = self.round;
        if rounds == 0 {
            return Ok(());
        }
        // Advance the counter by rounds actually attempted, so a mid-batch
        // failure leaves it exactly where sequential run_round calls would.
        let mut attempted = 0;
        let result = self.run_with_worker_pool(first_round, rounds, ctx, driver, &mut attempted);
        self.round = first_round + attempted;
        result
    }

    fn backend_name(&self) -> &'static str {
        "threaded"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::{ClusterProfile, CommModel};
    use bcc_coding::{BccScheme, UncodedScheme};
    use bcc_data::synthetic::{generate, SyntheticConfig};
    use bcc_linalg::approx_eq_slice;
    use bcc_optim::gradient::full_gradient;
    use bcc_optim::LogisticLoss;

    fn fast_profile(n: usize) -> ClusterProfile {
        ClusterProfile::homogeneous(
            n,
            4.0,
            0.0005,
            CommModel {
                per_message_overhead: 0.0005,
                per_unit: 0.002,
            },
        )
    }

    /// Aggressive compression so tests run in milliseconds.
    const SCALE: f64 = 0.02;

    #[test]
    fn uncoded_round_matches_serial_gradient() {
        let g = generate(&SyntheticConfig::small(30, 4, 1));
        let units = UnitMap::grouped(30, 10);
        let scheme = UncodedScheme::new(10, 5);
        let mut cluster = ThreadedCluster::new(fast_profile(5), 3, SCALE);
        let w = vec![0.1; 4];
        let out = cluster
            .run_round(&scheme, &units, &g.dataset, &LogisticLoss, &w)
            .unwrap();
        let mut expect = full_gradient(&g.dataset, &LogisticLoss, &w);
        bcc_linalg::vec_ops::scale(30.0, &mut expect);
        assert!(approx_eq_slice(&out.gradient_sum, &expect, 1e-8));
        assert_eq!(out.metrics.messages_used, 5);
        assert!(out.metrics.total_time > 0.0);
    }

    #[test]
    fn bcc_round_exact_and_early() {
        let g = generate(&SyntheticConfig::small(40, 4, 2));
        let units = UnitMap::grouped(40, 8);
        // 8 units, r=2 → 4 batches; 16 workers, coverage guaranteed by hand.
        let choices = vec![0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3];
        let scheme = BccScheme::from_choices(8, 2, choices);
        let mut cluster = ThreadedCluster::new(fast_profile(16), 5, SCALE);
        let w = vec![0.0; 4];
        let out = cluster
            .run_round(&scheme, &units, &g.dataset, &LogisticLoss, &w)
            .unwrap();
        let mut expect = full_gradient(&g.dataset, &LogisticLoss, &w);
        bcc_linalg::vec_ops::scale(40.0, &mut expect);
        assert!(approx_eq_slice(&out.gradient_sum, &expect, 1e-8));
        assert!(
            out.metrics.messages_used < 16,
            "BCC should stop before hearing all workers"
        );
    }

    #[test]
    fn dead_worker_stalls_uncoded_with_timeout() {
        let g = generate(&SyntheticConfig::small(20, 3, 3));
        let units = UnitMap::grouped(20, 10);
        let scheme = UncodedScheme::new(10, 5);
        let mut cluster = ThreadedCluster::new(fast_profile(5), 7, SCALE)
            .configured(BackendConfig::new().recv_timeout(Duration::from_millis(300)));
        cluster.kill_workers([0]);
        let err = cluster
            .run_round(&scheme, &units, &g.dataset, &LogisticLoss, &[0.0; 3])
            .unwrap_err();
        assert!(matches!(err, ClusterError::Stalled { .. }));
    }

    #[test]
    fn consecutive_rounds_work() {
        let g = generate(&SyntheticConfig::small(20, 3, 4));
        let units = UnitMap::grouped(20, 10);
        let scheme = UncodedScheme::new(10, 5);
        let mut cluster = ThreadedCluster::new(fast_profile(5), 9, SCALE);
        let w = vec![0.0; 3];
        for _ in 0..3 {
            let out = cluster
                .run_round(&scheme, &units, &g.dataset, &LogisticLoss, &w)
                .unwrap();
            assert_eq!(out.metrics.messages_used, 5);
        }
    }

    #[test]
    fn incompletable_round_stalls_promptly_not_on_timeout() {
        // All live workers report but the scheme cannot complete (dead
        // worker under uncoded). The pool must detect "everyone spoke"
        // immediately rather than burning the receive timeout.
        let g = generate(&SyntheticConfig::small(20, 3, 13));
        let units = UnitMap::grouped(20, 10);
        let scheme = UncodedScheme::new(10, 5);
        let mut cluster = ThreadedCluster::new(fast_profile(5), 15, SCALE)
            .configured(BackendConfig::new().recv_timeout(Duration::from_secs(60)));
        cluster.kill_workers([3]);
        let start = Instant::now();
        let err = cluster
            .run_round(&scheme, &units, &g.dataset, &LogisticLoss, &[0.0; 3])
            .unwrap_err();
        assert!(
            matches!(
                err,
                ClusterError::Stalled { received: 4, ref reason }
                    if reason.contains("all live workers reported")
            ),
            "got {err:?}"
        );
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "stall must not wait out the 60s receive timeout"
        );
    }

    #[test]
    fn batched_run_rounds_reuses_worker_pool() {
        let g = generate(&SyntheticConfig::small(30, 4, 6));
        let units = UnitMap::grouped(30, 10);
        let scheme = UncodedScheme::new(10, 5);
        let mut cluster = ThreadedCluster::new(fast_profile(5), 11, SCALE);
        let mut expect = full_gradient(&g.dataset, &LogisticLoss, &[0.2; 4]);
        bcc_linalg::vec_ops::scale(30.0, &mut expect);

        let mut driver = FixedPointDriver::new(vec![0.2; 4]);
        cluster
            .run_rounds(5, &scheme, &units, &g.dataset, &LogisticLoss, &mut driver)
            .unwrap();
        assert_eq!(driver.outcomes.len(), 5);
        for outcome in &driver.outcomes {
            assert!(approx_eq_slice(&outcome.gradient_sum, &expect, 1e-8));
            assert_eq!(outcome.metrics.messages_used, 5);
        }
    }
}
