//! Worker latency and link models.
//!
//! Worker `i` processing `rᵢ` work units finishes its local computation
//! after `Tᵢ ~ shift-exp(shift aᵢ·rᵢ, rate μᵢ/rᵢ)` — eq. (15), the model the
//! paper uses for its heterogeneous analysis and which matches the EC2
//! behaviour its experiments exhibit (rare multi-second stragglers on a
//! sub-second base). Message transfer to the master takes
//! `overhead + units·per_unit` seconds on a port that handles one transfer
//! at a time.

use bcc_stats::dist::{Sample, ShiftedExponential};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Per-worker straggling profile.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkerProfile {
    /// Straggling parameter `μ` (larger ⇒ faster tail).
    pub mu: f64,
    /// Deterministic per-unit shift `a`.
    pub a: f64,
}

impl WorkerProfile {
    /// Samples the compute time for a load of `r` units.
    ///
    /// # Panics
    /// Panics when `r == 0` — workers without work never enter the model.
    pub fn sample_compute_time<R: Rng + ?Sized>(&self, r: usize, rng: &mut R) -> f64 {
        assert!(r > 0, "latency model undefined for zero load");
        ShiftedExponential::new(self.mu, self.a, r as f64).sample(rng)
    }

    /// Expected compute time for load `r`: `a·r + r/μ`.
    #[must_use]
    pub fn mean_compute_time(&self, r: usize) -> f64 {
        assert!(r > 0, "latency model undefined for zero load");
        ShiftedExponential::new(self.mu, self.a, r as f64).mean()
    }
}

/// Master-side link model: one transfer at a time, linear in message units.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CommModel {
    /// Fixed per-message overhead (seconds).
    pub per_message_overhead: f64,
    /// Seconds per communication unit (one gradient-sized vector).
    pub per_unit: f64,
}

impl CommModel {
    /// Transfer duration of a message of `units` communication units.
    #[must_use]
    pub fn transfer_time(&self, units: usize) -> f64 {
        self.per_message_overhead + self.per_unit * units as f64
    }
}

/// Full cluster profile: per-worker latencies plus the shared link.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterProfile {
    /// One profile per worker.
    pub workers: Vec<WorkerProfile>,
    /// The master's receive link.
    pub comm: CommModel,
}

impl ClusterProfile {
    /// Homogeneous cluster of `n` identical workers.
    #[must_use]
    pub fn homogeneous(n: usize, mu: f64, a: f64, comm: CommModel) -> Self {
        Self {
            workers: vec![WorkerProfile { mu, a }; n],
            comm,
        }
    }

    /// EC2-like profile reproducing the regime of the paper's experiments
    /// (Tables I/II): **communication-dominated** rounds — per-unit transfer
    /// time comparable to per-unit compute, so with ~50–100 serialized
    /// arrivals the master's link is the bottleneck — with a heavy straggler
    /// tail (`μ` small enough that the slowest of `n` workers lags the
    /// median by several ×).
    ///
    /// Times are in simulated seconds per *work unit* (one 100-example data
    /// batch in scenario one/two).
    #[must_use]
    pub fn ec2_like(n: usize) -> Self {
        // Calibrated against Table I's per-iteration budget (~6 ms per
        // serialized message at the master; worker compute ≈ 1 ms/unit base
        // with an exponential tail of the same order): total round time is
        // then dominated by `K` serialized transfers, which is the paper's
        // own reading of Tables I/II.
        Self::homogeneous(
            n,
            // μ = 1000: tail mean r/μ = 1 ms per unit of load.
            1000.0,
            // a = 0.001 s per unit of deterministic compute.
            0.001,
            CommModel {
                per_message_overhead: 0.002,
                per_unit: 0.004,
            },
        )
    }

    /// The heterogeneous cluster of Fig. 5: `n = 100`, all shifts `aᵢ = 20`;
    /// `μᵢ = 1` for 95 workers and `μᵢ = 20` for the remaining 5.
    #[must_use]
    pub fn fig5_heterogeneous() -> Self {
        let mut workers = vec![WorkerProfile { mu: 1.0, a: 20.0 }; 95];
        workers.extend(vec![WorkerProfile { mu: 20.0, a: 20.0 }; 5]);
        Self {
            workers,
            // Fig. 5 measures *computation* time only; zero-cost link.
            comm: CommModel {
                per_message_overhead: 0.0,
                per_unit: 0.0,
            },
        }
    }

    /// Number of workers.
    #[must_use]
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_stats::rng::derive_rng;
    use bcc_stats::Summary;

    #[test]
    fn sample_respects_shift() {
        let p = WorkerProfile { mu: 1.0, a: 2.0 };
        let mut rng = derive_rng(1, 0);
        for _ in 0..200 {
            assert!(p.sample_compute_time(5, &mut rng) >= 10.0);
        }
    }

    #[test]
    fn mean_matches_formula() {
        let p = WorkerProfile { mu: 4.0, a: 1.0 };
        // a·r + r/μ = 8 + 2.
        assert!((p.mean_compute_time(8) - 10.0).abs() < 1e-12);
        let mut rng = derive_rng(2, 0);
        let mut s = Summary::new();
        for _ in 0..100_000 {
            s.push(p.sample_compute_time(8, &mut rng));
        }
        assert!((s.mean() - 10.0).abs() < 0.05, "mean {}", s.mean());
    }

    #[test]
    fn transfer_time_linear_in_units() {
        let c = CommModel {
            per_message_overhead: 0.5,
            per_unit: 0.1,
        };
        assert!((c.transfer_time(0) - 0.5).abs() < 1e-15);
        assert!((c.transfer_time(10) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn ec2_like_is_communication_dominated() {
        let p = ClusterProfile::ec2_like(50);
        assert_eq!(p.num_workers(), 50);
        // The Table I regime: the recovery-threshold-many serialized
        // transfers (BCC's K ≈ 11) outweigh one worker's mean compute.
        let transfer = p.comm.transfer_time(1);
        let compute = p.workers[0].mean_compute_time(10);
        assert!(
            transfer * 11.0 > compute,
            "11 serialized transfers ({}) should exceed compute ({compute})",
            transfer * 11.0
        );
    }

    #[test]
    fn fig5_profile_shape() {
        let p = ClusterProfile::fig5_heterogeneous();
        assert_eq!(p.num_workers(), 100);
        assert_eq!(p.workers.iter().filter(|w| w.mu == 1.0).count(), 95);
        assert_eq!(p.workers.iter().filter(|w| w.mu == 20.0).count(), 5);
        assert!(p.workers.iter().all(|w| w.a == 20.0));
    }

    #[test]
    #[should_panic(expected = "zero load")]
    fn zero_load_panics() {
        let p = WorkerProfile { mu: 1.0, a: 1.0 };
        let mut rng = derive_rng(3, 0);
        let _ = p.sample_compute_time(0, &mut rng);
    }
}
