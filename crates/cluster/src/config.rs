//! Uniform backend configuration.
//!
//! The three backends (virtual, threaded, TCP — plus the loopback TCP
//! fleet) accreted one `with_*` setter per knob per backend, so every new
//! cross-cutting hook (the mode layer's [`OffsetModel`] is the motivating
//! case) meant three or four copy-pasted methods. [`BackendConfig`] is the
//! consolidated replacement: one struct of optional knobs, applied
//! uniformly by each backend's `configured(config)`. Knobs a backend has no
//! use for (e.g. `time_scale` on the virtual backend, `auth_token` off the
//! TCP backend) are simply ignored — the config describes intent, each
//! backend applies the subset it implements. The per-knob `with_*` setters
//! remain as `#[deprecated]` thin wrappers.
//!
//! Fault-injection hooks (`kill_workers`, `fail_worker_at`, …) are *not*
//! configuration — they mutate a running backend — and stay as methods.
//!
//! [`OffsetModel`]: crate::mode::OffsetModel

use crate::decode::DecodePool;
use crate::minibatch::Minibatch;
use crate::observer::SharedObserver;
use crate::policy::AggregationPolicy;
use crate::straggler::StragglerModel;
use std::sync::Arc;
use std::time::Duration;

/// One bundle of backend knobs; `None` keeps the backend's default.
///
/// Which backends consume which knob:
///
/// | knob | virtual | threaded | TCP (loopback + bound) |
/// |---|---|---|---|
/// | `straggler_model` | ✓ | ✓ | ✓ |
/// | `aggregation_policy` | ✓ | ✓ | ✓ |
/// | `observer` | ✓ | ✓ | ✓ |
/// | `decode_pool` | ✓ | ✓ | ✓ |
/// | `minibatch` | ✓ | ✓ | ✓ |
/// | `recv_timeout` | — | ✓ | ✓ |
/// | `heartbeat_timeout` | — | — | bound only |
/// | `connect_timeout` | — | — | bound only |
/// | `pipelining` | — | — | ✓ |
/// | `job` | — | — | bound only |
/// | `auth_token` | — | — | bound only |
#[derive(Debug, Clone, Default)]
pub struct BackendConfig {
    /// Worker-latency model replacing the profile's default
    /// shift-exponential (see the [zoo](crate::straggler)).
    pub straggler_model: Option<Arc<dyn StragglerModel>>,
    /// Aggregation policy deciding round completion and the returned
    /// gradient.
    pub aggregation_policy: Option<Arc<dyn AggregationPolicy>>,
    /// Subscriber for the per-round [`RoundEvent`](crate::observer::RoundEvent)
    /// stream.
    pub observer: Option<SharedObserver>,
    /// Master decode/aggregate thread budget.
    pub decode_pool: Option<DecodePool>,
    /// Per-round unit-subset sampler (minibatch rounds).
    pub minibatch: Option<Minibatch>,
    /// Master stall-detection timeout (real time).
    pub recv_timeout: Option<Duration>,
    /// Silence threshold (real time) before a TCP worker is declared dead.
    pub heartbeat_timeout: Option<Duration>,
    /// How long the TCP master waits for participants to register.
    pub connect_timeout: Option<Duration>,
    /// Pipelined fan-out (writer threads + speculative round t+1) on the
    /// networked masters.
    pub pipelining: Option<bool>,
    /// Job spec JSON the TCP master serves to self-building workers.
    pub job: Option<String>,
    /// Auth token TCP workers must echo in `Hello`.
    pub auth_token: Option<u64>,
}

impl BackendConfig {
    /// Empty config: every backend default kept.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker-latency model.
    #[must_use]
    pub fn straggler_model(mut self, model: Arc<dyn StragglerModel>) -> Self {
        self.straggler_model = Some(model);
        self
    }

    /// Sets the aggregation policy.
    #[must_use]
    pub fn aggregation_policy(mut self, policy: Arc<dyn AggregationPolicy>) -> Self {
        self.aggregation_policy = Some(policy);
        self
    }

    /// Sets the round-event observer.
    #[must_use]
    pub fn observer(mut self, observer: SharedObserver) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Sets the decode/aggregate thread budget.
    #[must_use]
    pub fn decode_pool(mut self, pool: DecodePool) -> Self {
        self.decode_pool = Some(pool);
        self
    }

    /// Sets the per-round minibatch sampler.
    #[must_use]
    pub fn minibatch(mut self, minibatch: Minibatch) -> Self {
        self.minibatch = Some(minibatch);
        self
    }

    /// Sets the master stall-detection timeout.
    #[must_use]
    pub fn recv_timeout(mut self, timeout: Duration) -> Self {
        self.recv_timeout = Some(timeout);
        self
    }

    /// Sets the worker-death silence threshold.
    #[must_use]
    pub fn heartbeat_timeout(mut self, timeout: Duration) -> Self {
        self.heartbeat_timeout = Some(timeout);
        self
    }

    /// Sets the participant-registration timeout.
    #[must_use]
    pub fn connect_timeout(mut self, timeout: Duration) -> Self {
        self.connect_timeout = Some(timeout);
        self
    }

    /// Toggles pipelined fan-out on the networked masters.
    #[must_use]
    pub fn pipelining(mut self, pipelined: bool) -> Self {
        self.pipelining = Some(pipelined);
        self
    }

    /// Sets the job spec served to self-building TCP workers.
    #[must_use]
    pub fn job(mut self, job: String) -> Self {
        self.job = Some(job);
        self
    }

    /// Sets the `Hello` auth token.
    #[must_use]
    pub fn auth_token(mut self, token: u64) -> Self {
        self.auth_token = Some(token);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::WaitDecodable;
    use crate::straggler::ShiftedExpModel;

    #[test]
    fn default_config_sets_nothing() {
        let c = BackendConfig::new();
        assert!(c.straggler_model.is_none());
        assert!(c.aggregation_policy.is_none());
        assert!(c.observer.is_none());
        assert!(c.decode_pool.is_none());
        assert!(c.minibatch.is_none());
        assert!(c.recv_timeout.is_none());
        assert!(c.heartbeat_timeout.is_none());
        assert!(c.connect_timeout.is_none());
        assert!(c.pipelining.is_none());
        assert!(c.job.is_none());
        assert!(c.auth_token.is_none());
    }

    #[test]
    fn setters_fill_their_fields() {
        let c = BackendConfig::new()
            .straggler_model(Arc::new(ShiftedExpModel::homogeneous(2, 1.0, 0.0)))
            .aggregation_policy(Arc::new(WaitDecodable))
            .decode_pool(DecodePool::serial())
            .recv_timeout(Duration::from_secs(1))
            .heartbeat_timeout(Duration::from_secs(2))
            .connect_timeout(Duration::from_secs(3))
            .pipelining(false)
            .job("{}".to_string())
            .auth_token(42);
        assert!(c.straggler_model.is_some());
        assert!(c.aggregation_policy.is_some());
        assert!(c.decode_pool.is_some());
        assert_eq!(c.recv_timeout, Some(Duration::from_secs(1)));
        assert_eq!(c.heartbeat_timeout, Some(Duration::from_secs(2)));
        assert_eq!(c.connect_timeout, Some(Duration::from_secs(3)));
        assert_eq!(c.pipelining, Some(false));
        assert_eq!(c.job.as_deref(), Some("{}"));
        assert_eq!(c.auth_token, Some(42));
    }
}
