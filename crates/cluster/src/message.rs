//! The worker → master message envelope.

use bcc_coding::Payload;
use serde::{Deserialize, Serialize};

/// One worker message for one iteration, as carried over the wire.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Envelope {
    /// GD iteration this message belongs to (guards against stale arrivals
    /// from a previous round in the threaded runtime).
    pub iteration: u64,
    /// Sending worker id.
    pub worker: usize,
    /// Worker-reported compute duration in seconds (the paper measures
    /// "computation time" as the max over received workers — §III-C-2).
    pub compute_seconds: f64,
    /// The coded payload.
    pub payload: Payload,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        let e = Envelope {
            iteration: 3,
            worker: 7,
            compute_seconds: 0.25,
            payload: Payload::Linear { vector: vec![1.0] },
        };
        assert_eq!(e.iteration, 3);
        assert_eq!(e.worker, 7);
        assert_eq!(e.payload.units(), 1);
    }
}
