//! The backend-agnostic round-protocol engine.
//!
//! The paper's protocol (§II eq. (9)–(10), §III-C) is one object: workers
//! encode partial gradients, the master feeds arrivals to the scheme's
//! decoder and stops the moment the completion condition holds. What differs
//! between runtimes is only *how messages arrive* — over crossbeam channels
//! in wall-clock time ([`crate::ThreadedCluster`]) or as discrete events in
//! virtual time ([`crate::VirtualCluster`]).
//!
//! [`RoundEngine`] owns everything backend-independent about one round:
//! which workers participate, payload-to-decoder feeding, completion
//! detection, stall handling, and [`RoundMetrics`] accumulation. Backends
//! implement [`ArrivalSource`] — a pull-based stream of delivered messages —
//! and collapse to thin arrival adapters. Because both backends run the
//! *same* engine over the *same* per-worker latency streams, a seed/scheme/
//! profile triple yields byte-identical decoded gradients and identical
//! `messages_used` on either backend (pinned by the cross-backend
//! equivalence test in `tests/backend_equivalence.rs`).

use crate::decode::DecodePool;
use crate::error::ClusterError;
use crate::latency::ClusterProfile;
use crate::metrics::{ArrivalStamp, RoundMetrics};
use crate::minibatch::{Minibatch, UnitSelection};
use crate::observer::{NullObserver, RoundEvent, RoundObserver};
use crate::packed::WorkerBlocks;
use crate::policy::{AggregatedGradient, AggregationPolicy, RoundVerdict, RoundView};
use crate::units::UnitMap;
use bcc_coding::{Decoder, GradientCodingScheme, Payload};
use bcc_data::Dataset;
use bcc_optim::{GradScratch, Loss};
use bcc_stats::rng::derive_rng;
use std::collections::HashSet;

/// One worker message delivered to the master.
#[derive(Debug, Clone)]
pub struct Arrival {
    /// Sending worker id.
    pub worker: usize,
    /// The coded payload.
    pub payload: Payload,
    /// Worker-reported compute duration in simulated seconds.
    pub compute_seconds: f64,
    /// Backend clock (simulated seconds since round start) when the
    /// transfer finished at the master's port.
    pub at: f64,
}

/// What an [`ArrivalSource`] reports next.
#[derive(Debug)]
pub enum ArrivalEvent {
    /// A message finished transferring to the master.
    Delivered(Arrival),
    /// No further messages will ever arrive (all live workers reported, a
    /// receive timeout fired, …). The engine turns this into
    /// [`ClusterError::Stalled`] with its received-message count.
    Exhausted {
        /// Human-readable cause for the stall report.
        reason: String,
    },
    /// A protocol side-note that is not a delivery: a stale frame from an
    /// already-settled round was credited to stats, or a dead worker was
    /// re-admitted mid-round. The engine forwards the event to the
    /// observer and keeps pulling — the decoder never sees it. This is the
    /// epoch plumbing pipelined transports use to report round-t tail
    /// traffic while round t+1 is in flight.
    Note(RoundEvent),
}

/// A backend's arrival stream for one round.
///
/// Implementations own the transport (channel receive + wire decode, or DES
/// event pump + port serialization) and nothing else: no decoder state, no
/// completion logic, no metrics.
pub trait ArrivalSource {
    /// Blocks (in the backend's notion of time) until the next delivery.
    ///
    /// # Errors
    /// Transport-level failures (wire decode errors, encode failures).
    fn next_arrival(&mut self) -> Result<ArrivalEvent, ClusterError>;
}

/// Live workers that hold data under `scheme`, in worker-id order — the
/// participant set both backends must agree on.
#[must_use]
pub fn participants(
    scheme: &dyn GradientCodingScheme,
    dead_workers: &HashSet<usize>,
) -> Vec<usize> {
    (0..scheme.num_workers())
        .filter(|w| !dead_workers.contains(w) && scheme.placement().load_of(*w) > 0)
        .collect()
}

/// Samples worker `worker`'s shift-exponential compute time for GD round
/// `round` — the baseline latency stream, keyed on `(seed, round, worker)`
/// so runs replay identically regardless of backend or thread scheduling.
/// Backends actually sample through a pluggable
/// [`StragglerModel`](crate::straggler::StragglerModel); the default model
/// ([`ShiftedExpModel`](crate::straggler::ShiftedExpModel)) routes through
/// this exact stream, keeping legacy behaviour byte-identical.
#[must_use]
pub fn sample_compute_seconds(
    profile: &ClusterProfile,
    seed: u64,
    round: u64,
    worker: usize,
    load: usize,
) -> f64 {
    sample_compute_seconds_with(&profile.workers[worker], seed, round, worker, load)
}

/// [`sample_compute_seconds`] for a single worker's profile (used by worker
/// threads that only carry their own profile).
#[must_use]
pub fn sample_compute_seconds_with(
    worker_profile: &crate::latency::WorkerProfile,
    seed: u64,
    round: u64,
    worker: usize,
    load: usize,
) -> f64 {
    let mut rng = derive_rng(seed, latency_stream(round, worker));
    worker_profile.sample_compute_time(load, &mut rng)
}

/// The per-`(round, worker)` latency-stream label every sampler keys its
/// RNG with — the single source of truth for the derivation the
/// byte-identical replay contract rests on (the straggler zoo's stateless
/// draws and salted coins all route through it).
#[must_use]
pub(crate) fn latency_stream(round: u64, worker: usize) -> u64 {
    round.wrapping_mul(1_000_003) + worker as u64
}

/// The immutable problem a run of rounds executes against: the coding
/// scheme plus the data it codes over. Backends thread one of these through
/// a whole `run_rounds` call instead of four separate references.
#[derive(Clone, Copy)]
pub struct RoundContext<'a> {
    /// The gradient-coding scheme in force.
    pub scheme: &'a dyn GradientCodingScheme,
    /// Unit grouping the scheme codes over.
    pub units: &'a UnitMap,
    /// The training examples.
    pub data: &'a Dataset,
    /// Per-example loss.
    pub loss: &'a dyn Loss,
    /// Per-worker packed unit blocks (built once per run; see
    /// [`WorkerBlocks::build`]).
    pub packed: &'a WorkerBlocks,
    /// Per-round unit-subset sampler for minibatch rounds (`None` = the
    /// paper's full-partition rounds). Both backends — and every worker
    /// thread — derive round `t`'s selection independently from this
    /// config, so no selection is ever communicated.
    pub minibatch: Option<Minibatch>,
}

impl RoundContext<'_> {
    /// Computes worker `worker`'s unit partial gradients at `weights` and
    /// encodes them with the scheme — the shared worker-side compute path.
    ///
    /// Streams the worker's packed blocks through `scratch`'s blocked
    /// kernels: bit-identical to the per-example path (pinned by
    /// `crates/optim/tests/packed_kernels.rs`), but a linear scan with no
    /// per-round allocation.
    ///
    /// # Errors
    /// Encoding failures ([`bcc_coding::CodingError`]) for malformed
    /// configs.
    pub fn compute_and_encode(
        &self,
        worker: usize,
        weights: &[f64],
        scratch: &mut GradScratch,
    ) -> Result<Payload, ClusterError> {
        let (x, y) = self.packed.arena(self.data);
        let partials =
            scratch.worker_partials(self.loss, x, y, self.packed.worker(worker), weights);
        self.scheme
            .encode(worker, partials)
            .map_err(ClusterError::from)
    }

    /// [`Self::compute_and_encode`] restricted to a round's sampled unit
    /// set: assigned units outside `selection` contribute **zero** partial
    /// gradients (the slot [`GradScratch::ensure_slots`] zeroed), so every
    /// linear scheme encodes/decodes the minibatch sum unchanged.
    ///
    /// `selection: None` is the full-partition path, byte-identical to
    /// [`Self::compute_and_encode`].
    ///
    /// # Errors
    /// Encoding failures ([`bcc_coding::CodingError`]) for malformed
    /// configs.
    pub fn compute_and_encode_selected(
        &self,
        worker: usize,
        weights: &[f64],
        scratch: &mut GradScratch,
        selection: Option<&UnitSelection>,
    ) -> Result<Payload, ClusterError> {
        let Some(sel) = selection else {
            return self.compute_and_encode(worker, weights, scratch);
        };
        let (x, y) = self.packed.arena(self.data);
        let unit_ids = self.scheme.placement().worker_examples(worker);
        let ranges = self.packed.worker(worker);
        scratch.ensure_slots(ranges.len(), weights.len());
        for (slot, (&unit, rows)) in unit_ids.iter().zip(ranges).enumerate() {
            if sel.contains(unit) {
                scratch.fill_partial(slot, self.loss, x, y, rows.clone(), weights);
            }
        }
        self.scheme
            .encode(worker, scratch.partials(ranges.len()))
            .map_err(ClusterError::from)
    }

    /// Round `round`'s sampled unit set, or `None` on full-partition runs.
    #[must_use]
    pub fn selection_for(&self, round: u64) -> Option<UnitSelection> {
        self.minibatch
            .map(|mb| mb.select(round, self.units.num_units()))
    }

    /// Dataset examples backing `selection` — what the master divides the
    /// decoded minibatch sum by.
    #[must_use]
    pub fn examples_in(&self, selection: &UnitSelection) -> usize {
        selection
            .units()
            .iter()
            .map(|&u| self.units.unit_range(u).len())
            .sum()
    }

    /// Validates that scheme, unit map, and profile describe the same
    /// problem.
    ///
    /// # Panics
    /// On worker-count or unit-count mismatches — construction bugs, not
    /// data conditions. Both legacy backends asserted the worker count; the
    /// unit count was asserted only by the virtual backend (the threaded
    /// one surfaced it later as an encode-failure stall). Checking both up
    /// front on every backend is part of the engine's equal-semantics
    /// contract.
    pub fn validate(&self, profile: &ClusterProfile) {
        assert_eq!(
            self.scheme.num_workers(),
            profile.num_workers(),
            "scheme has {} workers but profile has {}",
            self.scheme.num_workers(),
            profile.num_workers()
        );
        assert_eq!(
            self.scheme.num_examples(),
            self.units.num_units(),
            "scheme units and unit map disagree"
        );
    }

    /// [`participants`] for this context's scheme.
    #[must_use]
    pub fn participants(&self, dead_workers: &HashSet<usize>) -> Vec<usize> {
        participants(self.scheme, dead_workers)
    }
}

/// Per-round protocol state shared by every backend.
pub struct RoundEngine<'a> {
    decoder: Box<dyn Decoder + 'a>,
    policy: &'a dyn AggregationPolicy,
    live_participants: usize,
    max_compute_used: f64,
    /// Clock of the latest delivery (the completion timestamp when the
    /// policy finishes a round on exhaustion).
    last_at: f64,
    complete: bool,
    pool: DecodePool,
    stamps: Vec<ArrivalStamp>,
}

impl<'a> RoundEngine<'a> {
    /// Fresh engine for one round of `scheme` with `live_participants`
    /// workers able to send, under the legacy exact policy
    /// ([`crate::policy::WaitDecodable`]).
    #[must_use]
    pub fn new(scheme: &'a dyn GradientCodingScheme, live_participants: usize) -> Self {
        Self::with_policy(scheme, live_participants, &crate::policy::DEFAULT_POLICY)
    }

    /// Fresh engine consulting `policy` for round completion and gradient
    /// aggregation.
    #[must_use]
    pub fn with_policy(
        scheme: &'a dyn GradientCodingScheme,
        live_participants: usize,
        policy: &'a dyn AggregationPolicy,
    ) -> Self {
        Self {
            decoder: scheme.decoder(),
            policy,
            live_participants,
            max_compute_used: 0.0,
            last_at: 0.0,
            complete: false,
            pool: DecodePool::default(),
            stamps: Vec::new(),
        }
    }

    /// Overrides the decode/aggregate thread budget (default: all
    /// available cores — safe because the parallel fold is bit-identical
    /// to the serial one, see [`crate::decode`]).
    #[must_use]
    pub fn with_decode_pool(mut self, pool: DecodePool) -> Self {
        self.pool = pool;
        self
    }

    /// The policy's read-only view of the round.
    fn view(&self) -> RoundView<'_> {
        RoundView {
            decoder: &*self.decoder,
            live_participants: self.live_participants,
            now: self.last_at,
            pool: self.pool,
        }
    }

    /// Feeds one delivered message to the decoder and consults the policy.
    /// Returns `true` when the policy declared the round complete.
    ///
    /// # Errors
    /// Decoder rejections (unknown/duplicate worker, malformed payload).
    pub fn feed(&mut self, arrival: Arrival) -> Result<bool, ClusterError> {
        self.decoder.receive(arrival.worker, arrival.payload)?;
        self.max_compute_used = self.max_compute_used.max(arrival.compute_seconds);
        self.last_at = self.last_at.max(arrival.at);
        self.stamps.push(ArrivalStamp {
            worker: arrival.worker,
            compute_seconds: arrival.compute_seconds,
            at: arrival.at,
        });
        let done = matches!(self.policy.on_arrival(&self.view()), RoundVerdict::Complete);
        if done {
            self.complete = true;
        }
        Ok(done)
    }

    /// True once the policy declared the round complete.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.complete
    }

    /// The messages fed so far, sorted by worker id — the round's arrival
    /// telemetry. Worker-id order (not delivery order) because threaded
    /// delivery order is subject to OS scheduling jitter while the consumed
    /// *set* is what the cross-backend equivalence contract pins; callers
    /// extract this before [`Self::finish`] consumes the engine.
    #[must_use]
    pub fn arrival_stamps(&self) -> Vec<ArrivalStamp> {
        let mut stamps = self.stamps.clone();
        stamps.sort_by_key(|s| s.worker);
        stamps
    }

    /// Messages consumed so far (the empirical `|W|`).
    #[must_use]
    pub fn messages_received(&self) -> usize {
        self.decoder.messages_received()
    }

    /// Builds the stall error for this round, carrying the received count.
    #[must_use]
    pub fn stalled(&self, reason: impl Into<String>) -> ClusterError {
        ClusterError::Stalled {
            received: self.decoder.messages_received(),
            reason: reason.into(),
        }
    }

    /// Drives the protocol: pulls arrivals from `source` and feeds the
    /// decoder until the policy completes the round or the source
    /// exhausts. Returns the clock reading of the completing arrival.
    ///
    /// # Errors
    /// [`ClusterError::Stalled`] when the source exhausts (or no live worker
    /// holds data) before the policy completes the round — unless the
    /// policy accepts exhaustion ([`AggregationPolicy::complete_on_exhausted`]
    /// with at least one message in hand) — plus any transport/decoder
    /// failure.
    pub fn run(&mut self, source: &mut dyn ArrivalSource) -> Result<f64, ClusterError> {
        self.run_observed(source, 0, &mut NullObserver)
    }

    /// [`Self::run`], emitting one [`RoundEvent`] per protocol transition
    /// to `observer` (`round` labels the events; it does not affect the
    /// protocol).
    ///
    /// # Errors
    /// Exactly [`Self::run`]'s.
    pub fn run_observed(
        &mut self,
        source: &mut dyn ArrivalSource,
        round: u64,
        observer: &mut dyn RoundObserver,
    ) -> Result<f64, ClusterError> {
        observer.on_event(&RoundEvent::Broadcast {
            round,
            participants: self.live_participants,
        });
        if self.live_participants == 0 {
            let err = self.stalled("no live workers hold any data");
            observer.on_event(&RoundEvent::Stalled {
                round,
                received: 0,
                reason: "no live workers hold any data".into(),
            });
            return Err(err);
        }
        // Transport/decoder failures also terminate the round: emit the
        // terminal event before propagating, so subscribers never see a
        // round that neither completed nor stalled.
        fn fail(
            observer: &mut dyn RoundObserver,
            round: u64,
            received: usize,
            err: ClusterError,
        ) -> ClusterError {
            observer.on_event(&RoundEvent::Stalled {
                round,
                received,
                reason: format!("round failed: {err}"),
            });
            err
        }
        loop {
            let event = match source.next_arrival() {
                Ok(event) => event,
                Err(e) => return Err(fail(observer, round, self.decoder.messages_received(), e)),
            };
            match event {
                ArrivalEvent::Delivered(arrival) => {
                    let (worker, at) = (arrival.worker, arrival.at);
                    let done = match self.feed(arrival) {
                        Ok(done) => done,
                        Err(e) => {
                            return Err(fail(observer, round, self.decoder.messages_received(), e))
                        }
                    };
                    observer.on_event(&RoundEvent::Arrival {
                        round,
                        worker,
                        at,
                        messages: self.decoder.messages_received(),
                        coverage: self.decoder.coverage(),
                    });
                    if done {
                        observer.on_event(&RoundEvent::Complete {
                            round,
                            at,
                            messages: self.decoder.messages_received(),
                            coverage: self.decoder.coverage(),
                        });
                        return Ok(at);
                    }
                }
                ArrivalEvent::Note(event) => {
                    observer.on_event(&event);
                }
                ArrivalEvent::Exhausted { reason } => {
                    if self.policy.complete_on_exhausted() && self.decoder.messages_received() > 0 {
                        self.complete = true;
                        observer.on_event(&RoundEvent::Complete {
                            round,
                            at: self.last_at,
                            messages: self.decoder.messages_received(),
                            coverage: self.decoder.coverage(),
                        });
                        return Ok(self.last_at);
                    }
                    observer.on_event(&RoundEvent::Stalled {
                        round,
                        received: self.decoder.messages_received(),
                        reason: reason.clone(),
                    });
                    return Err(self.stalled(reason));
                }
            }
        }
    }

    /// Hands the round to the policy's aggregation and closes out the
    /// metrics. `total_time` is the backend's clock reading for the whole
    /// round (virtual: the completing delivery's timestamp; threaded:
    /// scaled wall clock at completion).
    ///
    /// # Errors
    /// Whatever the policy's [`AggregationPolicy::finish`] reports — for
    /// the default exact policy,
    /// [`bcc_coding::CodingError::NotComplete`] before completion or
    /// decoder solve failures.
    pub fn finish(
        self,
        total_time: f64,
    ) -> Result<(AggregatedGradient, RoundMetrics), ClusterError> {
        let aggregate = self.policy.finish(&RoundView {
            decoder: &*self.decoder,
            live_participants: self.live_participants,
            now: self.last_at,
            pool: self.pool,
        })?;
        let metrics = RoundMetrics {
            messages_used: self.decoder.messages_received(),
            communication_units: self.decoder.communication_units(),
            compute_time: self.max_compute_used,
            comm_time: (total_time - self.max_compute_used).max(0.0),
            total_time,
        };
        Ok((aggregate, metrics))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::{ClusterProfile, CommModel};
    use bcc_coding::scheme::test_support::{random_gradients, total_sum, worker_partials};
    use bcc_coding::UncodedScheme;

    /// Arrival source replaying a fixed schedule.
    struct Replay {
        arrivals: std::vec::IntoIter<Arrival>,
        end_reason: String,
    }

    impl ArrivalSource for Replay {
        fn next_arrival(&mut self) -> Result<ArrivalEvent, ClusterError> {
            Ok(match self.arrivals.next() {
                Some(a) => ArrivalEvent::Delivered(a),
                None => ArrivalEvent::Exhausted {
                    reason: self.end_reason.clone(),
                },
            })
        }
    }

    fn uncoded_arrivals(n: usize, take: usize) -> (UncodedScheme, Vec<Vec<f64>>, Vec<Arrival>) {
        let scheme = UncodedScheme::new(n, n);
        let grads = random_gradients(n, 3, 7);
        let arrivals = (0..take)
            .map(|w| Arrival {
                worker: w,
                payload: scheme
                    .encode(w, &worker_partials(scheme.placement(), w, &grads))
                    .unwrap(),
                compute_seconds: 0.1 * (w + 1) as f64,
                at: 0.2 * (w + 1) as f64,
            })
            .collect();
        (scheme, grads, arrivals)
    }

    #[test]
    fn runs_to_completion_and_decodes_exactly() {
        let (scheme, grads, arrivals) = uncoded_arrivals(4, 4);
        let mut engine = RoundEngine::new(&scheme, 4);
        let mut source = Replay {
            arrivals: arrivals.into_iter(),
            end_reason: "unreachable".into(),
        };
        let end = engine.run(&mut source).unwrap();
        assert!((end - 0.8).abs() < 1e-12, "completing arrival's clock");
        let (agg, metrics) = engine.finish(end).unwrap();
        assert_eq!(agg.gradient_sum, total_sum(&grads));
        assert!(agg.exact, "default policy decodes exactly");
        assert!(agg.coverage.is_full());
        assert_eq!(metrics.messages_used, 4);
        assert!((metrics.compute_time - 0.4).abs() < 1e-12);
        assert!(metrics.is_consistent());
    }

    #[test]
    fn exhaustion_becomes_stall_with_received_count() {
        let (scheme, _, arrivals) = uncoded_arrivals(4, 2);
        let mut engine = RoundEngine::new(&scheme, 4);
        let mut source = Replay {
            arrivals: arrivals.into_iter(),
            end_reason: "test exhaustion".into(),
        };
        let err = engine.run(&mut source).unwrap_err();
        assert!(
            matches!(err, ClusterError::Stalled { received: 2, ref reason } if reason == "test exhaustion"),
            "got {err:?}"
        );
    }

    #[test]
    fn zero_participants_stall_immediately() {
        let (scheme, _, _) = uncoded_arrivals(4, 0);
        let mut engine = RoundEngine::new(&scheme, 0);
        let mut source = Replay {
            arrivals: Vec::new().into_iter(),
            end_reason: "unused".into(),
        };
        let err = engine.run(&mut source).unwrap_err();
        assert!(
            matches!(err, ClusterError::Stalled { received: 0, ref reason }
                if reason.contains("no live workers")),
            "got {err:?}"
        );
    }

    #[test]
    fn participants_skip_dead_and_unloaded() {
        let scheme = UncodedScheme::new(6, 6);
        let dead: HashSet<usize> = [1, 4].into_iter().collect();
        assert_eq!(participants(&scheme, &dead), vec![0, 2, 3, 5]);
    }

    #[test]
    fn latency_stream_is_backend_free_and_replayable() {
        let profile = ClusterProfile::homogeneous(
            3,
            2.0,
            0.01,
            CommModel {
                per_message_overhead: 0.0,
                per_unit: 0.0,
            },
        );
        let a = sample_compute_seconds(&profile, 9, 4, 1, 5);
        let b = sample_compute_seconds(&profile, 9, 4, 1, 5);
        assert_eq!(a, b, "same (seed, round, worker) ⇒ same draw");
        assert_ne!(a, sample_compute_seconds(&profile, 9, 5, 1, 5));
    }
}
