//! Aggregation policies: *when is a round done, and what gradient does the
//! master return?*
//!
//! The paper's master stops the moment the scheme's completion condition
//! holds and decodes the **exact** gradient sum — one point in a larger
//! design space. Stochastic Gradient Coding (Bitar et al.) and the
//! approximate schemes in Karakus et al. stop after the *fastest* workers
//! and train on a partial, rescaled gradient; deadline-driven systems cut a
//! round off at a time budget and take whatever coverage exists. An
//! [`AggregationPolicy`] makes that choice a first-class, user-extensible
//! object the [`RoundEngine`](crate::engine::RoundEngine) consults per
//! arrival:
//!
//! * [`AggregationPolicy::on_arrival`] — after each delivered message is
//!   fed to the decoder, decide [`RoundVerdict::Continue`] or
//!   [`RoundVerdict::Complete`];
//! * [`AggregationPolicy::complete_on_exhausted`] — whether "every live
//!   worker reported" finishes the round instead of stalling it;
//! * [`AggregationPolicy::finish`] — own the round's gradient: exact
//!   decode, coverage-rescaled partial sum, whatever the policy means.
//!
//! Four built-ins ship:
//!
//! | policy | stops | gradient |
//! |---|---|---|
//! | [`WaitDecodable`] | decoder completion (legacy default) | exact decode |
//! | [`FastestK`] | after `k` arrivals | partial sum × `m / covered` |
//! | [`Deadline`] | first arrival at/after the cutoff | exact if decodable, else rescaled partial |
//! | [`BestEffortAll`] | every live worker reported | exact if decodable, else rescaled partial |
//!
//! The coverage rescale multiplies the partial sum over the covered units
//! by `total_units / covered_units`. When every message covers the same
//! number of units and arrival order is exchangeable (the uncoded scheme
//! under i.i.d. compute times), this is inverse-probability weighting, so
//! the estimate is **unbiased in expectation** over arrival orders — pinned
//! by the proptest in `tests/policy_unbiased.rs`.
//!
//! `WaitDecodable` is installed by default everywhere, and its round
//! trajectory is byte-identical to the pre-policy engine (same decoder
//! feeding order, same completion arrival, same metrics) — pinned by
//! `tests/policy_equivalence.rs` and the checked-in
//! `BENCH_round_engine.json` replay.

use crate::decode::DecodePool;
use crate::error::ClusterError;
use bcc_coding::{Coverage, Decoder};
use std::fmt;
use std::sync::Arc;

/// The per-arrival decision an [`AggregationPolicy`] returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoundVerdict {
    /// Keep pulling arrivals.
    Continue,
    /// The round is done; the engine stops consuming and calls
    /// [`AggregationPolicy::finish`].
    Complete,
}

/// The gradient a policy produced for one round.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregatedGradient {
    /// The gradient **sum** the master hands to the optimizer (exact
    /// `Σ_j g_j`, or the policy's estimate of it).
    pub gradient_sum: Vec<f64>,
    /// How many coding units back the sum.
    pub coverage: Coverage,
    /// `true` when the sum is the exact decode (full coverage through the
    /// scheme's decoder), `false` for any estimate.
    pub exact: bool,
}

/// What a policy sees when consulted: the read-only decoder state plus the
/// round clock.
pub struct RoundView<'a> {
    /// The scheme's decoder after the latest arrival was fed.
    pub decoder: &'a dyn Decoder,
    /// Live workers that can still send this round.
    pub live_participants: usize,
    /// Backend clock (simulated seconds since round start) of the latest
    /// delivery; `0.0` before any.
    pub now: f64,
    /// Thread budget for decode/aggregate folds; policies should decode
    /// through it ([`DecodePool::decode`]/[`DecodePool::decode_partial`])
    /// so large rounds aggregate in parallel — bit-identical to the serial
    /// path by the [`crate::decode`] determinism contract.
    pub pool: DecodePool,
}

impl RoundView<'_> {
    /// Messages consumed so far (the empirical `|W|`).
    #[must_use]
    pub fn messages(&self) -> usize {
        self.decoder.messages_received()
    }

    /// Unit coverage so far.
    #[must_use]
    pub fn coverage(&self) -> Coverage {
        self.decoder.coverage()
    }
}

impl fmt::Debug for RoundView<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RoundView")
            .field("messages", &self.messages())
            .field("coverage", &self.coverage())
            .field("live_participants", &self.live_participants)
            .field("now", &self.now)
            .finish()
    }
}

/// When is a round done, and what gradient does it return?
///
/// Object-safe (backends hold `Arc<dyn AggregationPolicy>`), `Send + Sync`
/// because the threaded master consults it from its round loop.
/// Implementations must be deterministic functions of the view — both
/// backends rely on replaying identical verdicts for identical arrival
/// sequences (the cross-backend equivalence contract).
pub trait AggregationPolicy: fmt::Debug + Send + Sync {
    /// Policy name for reports and spec files.
    fn name(&self) -> &'static str;

    /// Consulted after each arrival has been fed to the decoder.
    fn on_arrival(&self, view: &RoundView<'_>) -> RoundVerdict;

    /// Whether source exhaustion (every live worker reported, or a receive
    /// timeout fired) completes the round with the coverage in hand instead
    /// of stalling it. Exhaustion with **zero** messages always stalls —
    /// there is no gradient to return. Default: stall, the legacy exact
    /// behaviour.
    fn complete_on_exhausted(&self) -> bool {
        false
    }

    /// Produces the round's gradient once the engine stopped consuming.
    ///
    /// # Errors
    /// [`ClusterError::Coding`] when the decoder cannot produce what the
    /// policy needs (e.g. a partial readout from a linear-combination code
    /// before its threshold).
    fn finish(&self, view: &RoundView<'_>) -> Result<AggregatedGradient, ClusterError>;
}

/// Exact decode when possible, coverage-rescaled partial sum otherwise —
/// the `finish` shared by every approximate built-in.
fn finish_rescaled(view: &RoundView<'_>) -> Result<AggregatedGradient, ClusterError> {
    if view.decoder.is_complete() {
        return Ok(AggregatedGradient {
            gradient_sum: view.pool.decode(view.decoder).map_err(ClusterError::from)?,
            coverage: view.coverage(),
            exact: true,
        });
    }
    let coverage = view.coverage();
    let mut gradient_sum = view
        .pool
        .decode_partial(view.decoder)
        .map_err(ClusterError::from)?;
    if coverage.covered_units == 0 {
        return Err(ClusterError::Stalled {
            received: view.messages(),
            reason: "round completed with zero unit coverage".into(),
        });
    }
    let scale = coverage.total_units as f64 / coverage.covered_units as f64;
    bcc_linalg::vec_ops::scale(scale, &mut gradient_sum);
    Ok(AggregatedGradient {
        gradient_sum,
        coverage,
        exact: false,
    })
}

/// The legacy default: pull arrivals until the scheme's decoder reports
/// decodable, then decode exactly (the paper's §II eq. (10) master).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WaitDecodable;

/// The policy every engine and backend installs unless told otherwise.
pub(crate) static DEFAULT_POLICY: WaitDecodable = WaitDecodable;

/// A fresh handle to the default policy ([`WaitDecodable`]) — what both
/// backends install at construction.
#[must_use]
pub fn default_policy() -> Arc<dyn AggregationPolicy> {
    Arc::new(WaitDecodable)
}

impl AggregationPolicy for WaitDecodable {
    fn name(&self) -> &'static str {
        "wait-decodable"
    }

    fn on_arrival(&self, view: &RoundView<'_>) -> RoundVerdict {
        if view.decoder.is_complete() {
            RoundVerdict::Complete
        } else {
            RoundVerdict::Continue
        }
    }

    fn finish(&self, view: &RoundView<'_>) -> Result<AggregatedGradient, ClusterError> {
        Ok(AggregatedGradient {
            gradient_sum: view.pool.decode(view.decoder).map_err(ClusterError::from)?,
            coverage: view.coverage(),
            exact: true,
        })
    }
}

/// Stop after the fastest `k` arrivals (fewer if the source exhausts
/// first) and return the coverage-rescaled partial gradient — the
/// Stochastic-Gradient-Coding stopping rule.
///
/// Strictly `k` arrivals: the master does not stop earlier even when the
/// decoder completes before `k` (the extra messages only improve
/// coverage), so the gradient is exact whenever completion happened on the
/// way.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FastestK {
    /// Arrivals to wait for (`≥ 1`).
    pub k: usize,
}

impl FastestK {
    /// Policy waiting for the fastest `k` workers.
    ///
    /// # Panics
    /// Panics when `k == 0` (a round with no messages has no gradient).
    #[must_use]
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "FastestK needs k >= 1");
        Self { k }
    }
}

impl AggregationPolicy for FastestK {
    fn name(&self) -> &'static str {
        "fastest-k"
    }

    fn on_arrival(&self, view: &RoundView<'_>) -> RoundVerdict {
        if view.messages() >= self.k {
            RoundVerdict::Complete
        } else {
            RoundVerdict::Continue
        }
    }

    fn complete_on_exhausted(&self) -> bool {
        true
    }

    fn finish(&self, view: &RoundView<'_>) -> Result<AggregatedGradient, ClusterError> {
        finish_rescaled(view)
    }
}

/// Cut the round off at a simulated-time budget: the master completes on
/// the first arrival delivered at or after `deadline` seconds (it observes
/// the clock through deliveries), or exactly like [`WaitDecodable`] when
/// the decoder completes earlier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Deadline {
    /// Round time budget in backend (simulated) seconds.
    pub seconds: f64,
}

impl Deadline {
    /// Policy with a round budget of `seconds` simulated seconds.
    ///
    /// # Panics
    /// Panics on a non-positive or non-finite budget.
    #[must_use]
    pub fn new(seconds: f64) -> Self {
        assert!(
            seconds.is_finite() && seconds > 0.0,
            "Deadline needs a positive finite budget"
        );
        Self { seconds }
    }
}

impl AggregationPolicy for Deadline {
    fn name(&self) -> &'static str {
        "deadline"
    }

    fn on_arrival(&self, view: &RoundView<'_>) -> RoundVerdict {
        if view.decoder.is_complete() || view.now >= self.seconds {
            RoundVerdict::Complete
        } else {
            RoundVerdict::Continue
        }
    }

    fn complete_on_exhausted(&self) -> bool {
        true
    }

    fn finish(&self, view: &RoundView<'_>) -> Result<AggregatedGradient, ClusterError> {
        finish_rescaled(view)
    }
}

/// Drain every live worker before finishing — the oracle baseline that
/// pays the full straggler tail for the best possible coverage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BestEffortAll;

impl AggregationPolicy for BestEffortAll {
    fn name(&self) -> &'static str {
        "best-effort-all"
    }

    fn on_arrival(&self, view: &RoundView<'_>) -> RoundVerdict {
        let _ = view;
        RoundVerdict::Continue
    }

    fn complete_on_exhausted(&self) -> bool {
        true
    }

    fn finish(&self, view: &RoundView<'_>) -> Result<AggregatedGradient, ClusterError> {
        finish_rescaled(view)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_coding::scheme::test_support::{random_gradients, total_sum, worker_partials};
    use bcc_coding::{GradientCodingScheme, UncodedScheme};

    fn fed_decoder<'a>(
        scheme: &'a UncodedScheme,
        grads: &[Vec<f64>],
        workers: &[usize],
    ) -> Box<dyn Decoder + 'a> {
        let mut dec = scheme.decoder();
        for &w in workers {
            let partials = worker_partials(scheme.placement(), w, grads);
            dec.receive(w, scheme.encode(w, &partials).unwrap())
                .unwrap();
        }
        dec
    }

    #[test]
    fn wait_decodable_completes_only_on_decoder() {
        let scheme = UncodedScheme::new(4, 4);
        let grads = random_gradients(4, 3, 1);
        let dec = fed_decoder(&scheme, &grads, &[0, 1]);
        let view = RoundView {
            decoder: &*dec,
            live_participants: 4,
            now: 0.5,
            pool: DecodePool::threads(2),
        };
        assert_eq!(WaitDecodable.on_arrival(&view), RoundVerdict::Continue);
        assert!(!WaitDecodable.complete_on_exhausted());
        let dec = fed_decoder(&scheme, &grads, &[0, 1, 2, 3]);
        let view = RoundView {
            decoder: &*dec,
            live_participants: 4,
            now: 0.9,
            pool: DecodePool::threads(2),
        };
        assert_eq!(WaitDecodable.on_arrival(&view), RoundVerdict::Complete);
        let agg = WaitDecodable.finish(&view).unwrap();
        assert!(agg.exact);
        assert!(agg.coverage.is_full());
        assert_eq!(agg.gradient_sum, total_sum(&grads));
    }

    #[test]
    fn fastest_k_rescales_partial_coverage() {
        // 4 equal shards of 2 units; 2 of 4 arrivals → scale = 8/4 = 2.
        let scheme = UncodedScheme::new(8, 4);
        let grads = random_gradients(8, 3, 2);
        let dec = fed_decoder(&scheme, &grads, &[1, 3]);
        let view = RoundView {
            decoder: &*dec,
            live_participants: 4,
            now: 0.2,
            pool: DecodePool::threads(2),
        };
        let policy = FastestK::new(2);
        assert_eq!(policy.on_arrival(&view), RoundVerdict::Complete);
        let agg = policy.finish(&view).unwrap();
        assert!(!agg.exact);
        assert_eq!(agg.coverage, Coverage::new(4, 8));
        let shard_sum = |w: usize| {
            let parts = worker_partials(scheme.placement(), w, &grads);
            bcc_linalg::vec_ops::sum_vectors(parts.iter().map(Vec::as_slice)).unwrap()
        };
        let mut expect = shard_sum(1);
        for (a, b) in expect.iter_mut().zip(shard_sum(3)) {
            *a = (*a + b) * 2.0;
        }
        assert_eq!(agg.gradient_sum, expect);
    }

    #[test]
    fn deadline_completes_at_cutoff_or_decodable() {
        let scheme = UncodedScheme::new(4, 4);
        let grads = random_gradients(4, 2, 3);
        let dec = fed_decoder(&scheme, &grads, &[0]);
        let policy = Deadline::new(0.5);
        let early = RoundView {
            decoder: &*dec,
            live_participants: 4,
            now: 0.2,
            pool: DecodePool::threads(2),
        };
        assert_eq!(policy.on_arrival(&early), RoundVerdict::Continue);
        let late = RoundView {
            decoder: &*dec,
            live_participants: 4,
            now: 0.5,
            pool: DecodePool::threads(2),
        };
        assert_eq!(policy.on_arrival(&late), RoundVerdict::Complete);
        let agg = policy.finish(&late).unwrap();
        assert!(!agg.exact);
        assert_eq!(agg.coverage, Coverage::new(1, 4));
    }

    #[test]
    fn best_effort_all_never_completes_on_arrival() {
        let scheme = UncodedScheme::new(4, 4);
        let grads = random_gradients(4, 2, 4);
        let dec = fed_decoder(&scheme, &grads, &[0, 1, 2, 3]);
        let view = RoundView {
            decoder: &*dec,
            live_participants: 4,
            now: 1.0,
            pool: DecodePool::threads(2),
        };
        assert_eq!(BestEffortAll.on_arrival(&view), RoundVerdict::Continue);
        assert!(BestEffortAll.complete_on_exhausted());
        // Exhaustion with full coverage decodes exactly.
        let agg = BestEffortAll.finish(&view).unwrap();
        assert!(agg.exact);
        assert_eq!(agg.gradient_sum, total_sum(&grads));
    }

    #[test]
    #[should_panic(expected = "k >= 1")]
    fn fastest_zero_rejected() {
        let _ = FastestK::new(0);
    }

    #[test]
    #[should_panic(expected = "positive finite")]
    fn non_positive_deadline_rejected() {
        let _ = Deadline::new(0.0);
    }
}
