//! Minibatch/stochastic rounds: a seeded per-round unit-subset sampler.
//!
//! The paper's master broadcasts the full partition every round. At
//! minibatch scale (Stochastic Gradient Coding, Bitar et al.), each round
//! instead trains on a sampled subset of the coding units: workers compute
//! partial gradients only for their assigned units that fall in the
//! round's sample and contribute **zero** vectors for the rest, so every
//! linear scheme's encode/decode passes the sampled sum through unchanged
//! and the decoded gradient is exact *with respect to the minibatch*.
//!
//! Replay contract: the selection for round `t` is a pure function of
//! `(sampler_seed, t)` — both backends (and every worker thread) derive it
//! independently with no extra communication, keeping the cross-backend
//! byte-identity guarantee. Pinned by `tests/minibatch_sampler.rs`.

use bcc_stats::rng::derive_rng;
use rand::Rng;

/// Seeded per-round unit sampler (`Copy` — rides inside
/// [`RoundContext`](crate::engine::RoundContext)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Minibatch {
    /// Units sampled per round (`≥ 1`).
    pub units_per_round: usize,
    /// Sampler stream seed (derive it from the experiment master seed so
    /// it cannot collide with latency/scheme/data streams).
    pub sampler_seed: u64,
}

impl Minibatch {
    /// Sampler drawing `units_per_round` units each round.
    ///
    /// # Panics
    /// Panics when `units_per_round == 0` — a round with no units has no
    /// gradient.
    #[must_use]
    pub fn new(units_per_round: usize, sampler_seed: u64) -> Self {
        assert!(units_per_round >= 1, "minibatch needs at least one unit");
        Self {
            units_per_round,
            sampler_seed,
        }
    }

    /// The round's sampled unit set: a uniform `units_per_round`-subset of
    /// `0..num_units`, sorted, without replacement, deterministic in
    /// `(sampler_seed, round)`.
    ///
    /// # Panics
    /// Panics when `units_per_round > num_units`.
    #[must_use]
    pub fn select(&self, round: u64, num_units: usize) -> UnitSelection {
        let k = self.units_per_round;
        assert!(
            k <= num_units,
            "minibatch of {k} units exceeds the {num_units}-unit partition"
        );
        // Partial Fisher–Yates: after k swaps the prefix is a uniform
        // k-subset in uniform order; sorting drops the order.
        let mut rng = derive_rng(self.sampler_seed, round);
        let mut idx: Vec<usize> = (0..num_units).collect();
        for i in 0..k {
            let j = rng.gen_range(i..num_units);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx.sort_unstable();
        UnitSelection::from_sorted(idx, num_units)
    }
}

/// One round's sampled unit set: sorted ids plus an `O(1)` membership mask.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnitSelection {
    sorted: Vec<usize>,
    member: Vec<bool>,
}

impl UnitSelection {
    fn from_sorted(sorted: Vec<usize>, num_units: usize) -> Self {
        let mut member = vec![false; num_units];
        for &u in &sorted {
            member[u] = true;
        }
        Self { sorted, member }
    }

    /// Whether `unit` is in this round's sample (`false` out of range).
    #[must_use]
    pub fn contains(&self, unit: usize) -> bool {
        self.member.get(unit).copied().unwrap_or(false)
    }

    /// The sampled unit ids, ascending.
    #[must_use]
    pub fn units(&self) -> &[usize] {
        &self.sorted
    }

    /// Number of sampled units.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when nothing was sampled (unreachable via [`Minibatch::new`]).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// How many of `units` fall in the sample — the worker's effective
    /// compute load this round.
    #[must_use]
    pub fn selected_load(&self, units: &[usize]) -> usize {
        units.iter().filter(|&&u| self.contains(u)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selection_is_sorted_unique_in_range() {
        let mb = Minibatch::new(7, 99);
        for round in 0..50 {
            let sel = mb.select(round, 20);
            assert_eq!(sel.len(), 7);
            assert!(sel.units().windows(2).all(|w| w[0] < w[1]));
            assert!(sel.units().iter().all(|&u| u < 20));
        }
    }

    #[test]
    fn selection_replays_per_round_and_differs_across_rounds() {
        let mb = Minibatch::new(5, 4);
        assert_eq!(mb.select(3, 40), mb.select(3, 40));
        let distinct = (0..20).map(|r| mb.select(r, 40)).collect::<Vec<_>>();
        assert!(
            distinct.windows(2).any(|w| w[0] != w[1]),
            "rounds must resample"
        );
    }

    #[test]
    fn full_sample_covers_everything() {
        let sel = Minibatch::new(6, 1).select(0, 6);
        assert_eq!(sel.units(), &[0, 1, 2, 3, 4, 5]);
        assert_eq!(sel.selected_load(&[2, 4]), 2);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_minibatch_panics() {
        let _ = Minibatch::new(10, 0).select(0, 5);
    }

    #[test]
    #[should_panic(expected = "at least one unit")]
    fn zero_minibatch_rejected() {
        let _ = Minibatch::new(0, 0);
    }
}
