//! Parallel server-side decode/aggregate.
//!
//! The master's decode step folds one vector per arrival (or per covered
//! unit) into the gradient sum — at `n = 1000` workers × `dim = 10240`
//! that fold is the round's serial bottleneck once the packed worker
//! kernels made per-worker compute nearly free. [`DecodePool`] routes
//! decoders that expose their result as a fixed-order weighted sum
//! ([`Decoder::partial_sum_terms`]) through the work-stealing column
//! reduction in [`bcc_linalg::parallel::par_weighted_sum`].
//!
//! **Determinism contract**: the parallel reduction partitions *columns*,
//! never the per-element accumulation chain, and each column chunk replays
//! the exact serial recurrence (`out[k] = c₀·v₀[k]` then
//! `out[k] = vᵢ[k].mul_add(cᵢ, out[k])`). The result is bit-identical to
//! the serial `decode`/`decode_partial` fold for **any** thread count —
//! pinned by `tests/parallel_decode.rs` and the extended
//! `tests/policy_equivalence.rs`. Decoders that opt out (linear solves
//! like cyclic-MDS) fall back to their serial entry points, as do empty
//! decoders so `NotComplete` errors surface unchanged.

use bcc_coding::{CodingError, Decoder};
use bcc_linalg::parallel::{par_weighted_sum, Parallelism};

/// Thread budget for the master's decode/aggregate fold.
///
/// Copy-cheap: carried by value inside
/// [`RoundView`](crate::policy::RoundView) so policies decode through it
/// without extra plumbing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodePool {
    par: Parallelism,
}

impl Default for DecodePool {
    /// Uses every available core ([`Parallelism::available`]) — safe by the
    /// bit-identity contract above.
    fn default() -> Self {
        Self::new(Parallelism::available())
    }
}

impl DecodePool {
    /// Pool folding with the given thread budget.
    #[must_use]
    pub fn new(par: Parallelism) -> Self {
        Self { par }
    }

    /// Single-threaded pool (the legacy serial fold, via the same code
    /// path).
    #[must_use]
    pub fn serial() -> Self {
        Self::new(Parallelism::sequential())
    }

    /// Pool with an explicit thread count (clamped to ≥ 1).
    #[must_use]
    pub fn threads(n: usize) -> Self {
        Self::new(Parallelism::threads(n))
    }

    /// The pool's thread budget.
    #[must_use]
    pub fn parallelism(&self) -> Parallelism {
        self.par
    }

    /// [`Decoder::decode`] through the pool: parallel weighted-sum fold
    /// when the decoder exposes terms, serial decode otherwise.
    ///
    /// # Errors
    /// Exactly [`Decoder::decode`]'s — incomplete decoders are routed to
    /// the serial path so they report [`CodingError::NotComplete`].
    pub fn decode(&self, decoder: &dyn Decoder) -> Result<Vec<f64>, CodingError> {
        if !decoder.is_complete() {
            return decoder.decode();
        }
        match decoder.partial_sum_terms() {
            Some(terms) => par_weighted_sum(self.par, &terms).ok_or(CodingError::DecodingFailed {
                reason: "partial_sum_terms returned an empty term list".into(),
            }),
            None => decoder.decode(),
        }
    }

    /// [`Decoder::decode_partial`] through the pool: parallel fold over the
    /// covered units' terms when available, serial readout otherwise.
    ///
    /// # Errors
    /// Exactly [`Decoder::decode_partial`]'s — decoders with nothing
    /// recoverable expose no terms and the serial path reports
    /// [`CodingError::NotComplete`].
    pub fn decode_partial(&self, decoder: &dyn Decoder) -> Result<Vec<f64>, CodingError> {
        match decoder.partial_sum_terms() {
            Some(terms) => par_weighted_sum(self.par, &terms).ok_or(CodingError::DecodingFailed {
                reason: "partial_sum_terms returned an empty term list".into(),
            }),
            None => decoder.decode_partial(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_coding::scheme::test_support::{random_gradients, total_sum, worker_partials};
    use bcc_coding::{GradientCodingScheme, UncodedScheme};

    fn fed<'a>(
        scheme: &'a UncodedScheme,
        grads: &[Vec<f64>],
        workers: &[usize],
    ) -> Box<dyn Decoder + 'a> {
        let mut dec = scheme.decoder();
        for &w in workers {
            let partials = worker_partials(scheme.placement(), w, grads);
            dec.receive(w, scheme.encode(w, &partials).unwrap())
                .unwrap();
        }
        dec
    }

    #[test]
    fn pool_decode_matches_serial_bitwise() {
        let scheme = UncodedScheme::new(6, 6);
        let grads = random_gradients(6, 40, 17);
        let dec = fed(&scheme, &grads, &[0, 1, 2, 3, 4, 5]);
        let expect = total_sum(&grads);
        for pool in [DecodePool::serial(), DecodePool::threads(4)] {
            let got = pool.decode(&*dec).unwrap();
            assert_eq!(got.len(), expect.len());
            for (g, e) in got.iter().zip(&expect) {
                assert_eq!(g.to_bits(), e.to_bits());
            }
        }
    }

    #[test]
    fn incomplete_decode_surfaces_not_complete() {
        let scheme = UncodedScheme::new(6, 6);
        let grads = random_gradients(6, 4, 18);
        let dec = fed(&scheme, &grads, &[0, 2]);
        let err = DecodePool::threads(4).decode(&*dec).unwrap_err();
        assert!(matches!(err, CodingError::NotComplete { received: 2 }));
    }

    #[test]
    fn empty_decoder_partial_surfaces_not_complete() {
        let scheme = UncodedScheme::new(6, 6);
        let dec = scheme.decoder();
        let err = DecodePool::threads(4).decode_partial(&*dec).unwrap_err();
        assert!(matches!(err, CodingError::NotComplete { received: 0 }));
    }

    #[test]
    fn partial_fold_matches_serial_readout() {
        let scheme = UncodedScheme::new(8, 4);
        let grads = random_gradients(8, 33, 19);
        let dec = fed(&scheme, &grads, &[1, 3]);
        let expect = dec.decode_partial().unwrap();
        let got = DecodePool::threads(8).decode_partial(&*dec).unwrap();
        for (g, e) in got.iter().zip(&expect) {
            assert_eq!(g.to_bits(), e.to_bits());
        }
    }
}
