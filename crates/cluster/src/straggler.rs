//! Pluggable worker-straggling models — the "model zoo".
//!
//! The paper evaluates one latency family: the shift-exponential of §IV
//! eq. (15). Its claim, though — BCC's near-optimality over uncoded,
//! replication, and MDS schemes — is about *distributions of stragglers*,
//! and related work evaluates under heavy-tailed (Bitar et al.), Weibull
//! (Karakus et al.), and persistent/time-correlated models. This module
//! makes the latency family a first-class extension point:
//! [`StragglerModel`] is an object-safe sampler both backends consult for
//! every `(round, worker)` compute time, and the zoo ships five members:
//!
//! | model | tail | state |
//! |---|---|---|
//! | [`ShiftedExpModel`] | exponential (the paper's eq. 15) | none |
//! | [`ParetoModel`] | polynomial (heavy) | none |
//! | [`WeibullModel`] | stretched-exponential | none |
//! | [`BimodalModel`] | exponential × slowdown | fixed slow subset, i.i.d. per round |
//! | [`MarkovModel`] | exponential × slowdown | per-worker 2-state chain across rounds |
//!
//! ## Determinism contract
//!
//! A model's sample is a **pure function** of `(seed, round, worker,
//! load)`. Stateful models (bimodal's per-round slow coin, Markov's
//! cross-round chain) derive their state from dedicated seed streams and —
//! for the chain — replay it deterministically from round 0, so the same
//! draw comes out regardless of which backend asks, in which order, or on
//! which thread. This is what lets the threaded backend's free-running
//! worker threads and the virtual backend's sorted schedule stay
//! event-for-event identical (`tests/backend_equivalence.rs`), exactly as
//! they do for the baseline model.
//!
//! [`ShiftedExpModel`] routes through the very RNG stream the backends used
//! before this trait existed, so installing it (which both backends do by
//! default) is byte-identical to the legacy hardcoded path — pinned by
//! `tests/straggler_models.rs`.

use crate::engine;
use crate::latency::{ClusterProfile, WorkerProfile};
use bcc_stats::dist::{Pareto, Sample, Weibull};
use bcc_stats::rng::{derive_rng, derive_seed};
use rand::{rngs::StdRng, Rng};
use std::fmt;
use std::sync::Arc;

/// Seed-stream tag for the bimodal model's per-round slow coin.
const BIMODAL_STREAM: u64 = 0xB1B0;
/// Seed-stream tag for the Markov model's per-worker state chain.
const MARKOV_STREAM: u64 = 0x4D4B;

/// A worker-latency model: how long worker `worker` takes to process `load`
/// units in round `round`.
///
/// Object-safe so backends can hold `Arc<dyn StragglerModel>`; `Send +
/// Sync` because the threaded backend samples from its per-worker OS
/// threads. Implementations must be pure functions of their arguments (see
/// the module docs' determinism contract) — both backends rely on replaying
/// the same draw for the same `(seed, round, worker)`.
pub trait StragglerModel: fmt::Debug + Send + Sync {
    /// Samples the compute time (simulated seconds) for `load` units.
    fn compute_seconds(&self, seed: u64, round: u64, worker: usize, load: usize) -> f64;

    /// Short display name (`"shifted-exp"`, `"pareto"`, …).
    fn name(&self) -> &'static str;

    /// Closed-form mean compute time for `(worker, load)`, when the model
    /// has one (`None` for the Markov chain, whose marginal depends on the
    /// round).
    fn mean_compute_seconds(&self, worker: usize, load: usize) -> Option<f64>;
}

/// The per-`(round, worker)` latency RNG — the one stream every stateless
/// draw comes from, keyed by [`engine::latency_stream`] (the same
/// derivation the legacy backends hardcoded).
fn round_rng(seed: u64, round: u64, worker: usize) -> StdRng {
    derive_rng(seed, engine::latency_stream(round, worker))
}

/// The paper's shift-exponential model (eq. 15), one [`WorkerProfile`] per
/// worker — the baseline member of the zoo and the model both backends
/// install by default.
///
/// Draws through the exact RNG stream the backends hardcoded before the
/// [`StragglerModel`] trait existed, so its samples are byte-identical to
/// the legacy path.
#[derive(Debug, Clone, PartialEq)]
pub struct ShiftedExpModel {
    workers: Vec<WorkerProfile>,
}

impl ShiftedExpModel {
    /// Wraps the worker profiles of an existing cluster profile.
    #[must_use]
    pub fn from_profile(profile: &ClusterProfile) -> Self {
        Self {
            workers: profile.workers.clone(),
        }
    }

    /// Homogeneous cluster of `n` identical `(mu, a)` workers.
    #[must_use]
    pub fn homogeneous(n: usize, mu: f64, a: f64) -> Self {
        Self {
            workers: vec![WorkerProfile { mu, a }; n],
        }
    }
}

impl StragglerModel for ShiftedExpModel {
    fn compute_seconds(&self, seed: u64, round: u64, worker: usize, load: usize) -> f64 {
        engine::sample_compute_seconds_with(&self.workers[worker], seed, round, worker, load)
    }

    fn name(&self) -> &'static str {
        "shifted-exp"
    }

    fn mean_compute_seconds(&self, worker: usize, load: usize) -> Option<f64> {
        Some(self.workers[worker].mean_compute_time(load))
    }
}

/// Heavy-tailed Pareto compute: `T = load · Pareto(scale, shape)`.
///
/// Support starts at `load·scale` (the deterministic floor), and the
/// polynomial tail produces the rare order-of-magnitude stragglers EC2
/// traces exhibit. `shape ≤ 1` is allowed (every sample is still finite)
/// but has no finite mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParetoModel {
    dist: Pareto,
}

impl ParetoModel {
    /// Per-unit Pareto with minimum `scale > 0` seconds/unit and tail index
    /// `shape > 0`.
    ///
    /// # Panics
    /// Panics on non-positive or non-finite parameters.
    #[must_use]
    pub fn new(scale: f64, shape: f64) -> Self {
        Self {
            dist: Pareto::new(scale, shape),
        }
    }
}

impl StragglerModel for ParetoModel {
    fn compute_seconds(&self, seed: u64, round: u64, worker: usize, load: usize) -> f64 {
        let mut rng = round_rng(seed, round, worker);
        load as f64 * self.dist.sample(&mut rng)
    }

    fn name(&self) -> &'static str {
        "pareto"
    }

    fn mean_compute_seconds(&self, _worker: usize, load: usize) -> Option<f64> {
        let mean = self.dist.mean();
        mean.is_finite().then_some(load as f64 * mean)
    }
}

/// Weibull compute with a deterministic floor:
/// `T = load · (shift + Weibull(scale, shape))`.
///
/// `shape < 1` gives a stretched-exponential tail (occasional long
/// stalls), `shape ≫ 1` near-deterministic workers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeibullModel {
    dist: Weibull,
    shift: f64,
}

impl WeibullModel {
    /// Per-unit Weibull with scale `scale > 0`, shape `shape > 0`, and
    /// deterministic per-unit shift `shift ≥ 0` (seconds/unit).
    ///
    /// # Panics
    /// Panics on non-positive `scale`/`shape`, or a negative or non-finite
    /// `shift`.
    #[must_use]
    pub fn new(scale: f64, shape: f64, shift: f64) -> Self {
        assert!(
            shift >= 0.0 && shift.is_finite(),
            "Weibull shift must be non-negative and finite, got {shift}"
        );
        Self {
            dist: Weibull::new(scale, shape),
            shift,
        }
    }
}

impl StragglerModel for WeibullModel {
    fn compute_seconds(&self, seed: u64, round: u64, worker: usize, load: usize) -> f64 {
        let mut rng = round_rng(seed, round, worker);
        load as f64 * (self.shift + self.dist.sample(&mut rng))
    }

    fn name(&self) -> &'static str {
        "weibull"
    }

    fn mean_compute_seconds(&self, _worker: usize, load: usize) -> Option<f64> {
        Some(load as f64 * (self.shift + self.dist.mean()))
    }
}

/// Bimodal persistent-straggler model: workers `0..slow_workers` form a
/// fixed slow subset; each round, each of them independently straggles
/// with probability `slow_probability`, multiplying its base
/// shift-exponential draw by `slowdown`.
///
/// This is the "bad node" regime replication schemes are sized for: the
/// *identity* of potential stragglers persists across the whole run (think
/// a degraded VM), only whether the degradation bites varies per round.
/// The base draw uses the same stream as [`ShiftedExpModel`]; the slow
/// coin comes from its own seed stream.
#[derive(Debug, Clone, PartialEq)]
pub struct BimodalModel {
    base: Vec<WorkerProfile>,
    slow_workers: usize,
    slow_probability: f64,
    slowdown: f64,
}

impl BimodalModel {
    /// Homogeneous `(mu, a)` base over `n` workers, with workers
    /// `0..slow_workers` slow with probability `slow_probability` per round
    /// at factor `slowdown`.
    ///
    /// # Panics
    /// Panics when `slow_workers > n`, `slow_probability ∉ [0, 1]`, or
    /// `slowdown` is not positive and finite.
    #[must_use]
    pub fn homogeneous(
        n: usize,
        mu: f64,
        a: f64,
        slow_workers: usize,
        slow_probability: f64,
        slowdown: f64,
    ) -> Self {
        assert!(
            slow_workers <= n,
            "slow subset ({slow_workers}) exceeds the worker count ({n})"
        );
        assert!(
            (0.0..=1.0).contains(&slow_probability),
            "slow_probability must be in [0,1], got {slow_probability}"
        );
        assert!(
            slowdown > 0.0 && slowdown.is_finite(),
            "slowdown must be positive and finite, got {slowdown}"
        );
        Self {
            base: vec![WorkerProfile { mu, a }; n],
            slow_workers,
            slow_probability,
            slowdown,
        }
    }

    /// Whether `worker` straggles in `round` (the per-round slow coin).
    #[must_use]
    pub fn is_slow(&self, seed: u64, round: u64, worker: usize) -> bool {
        if worker >= self.slow_workers {
            return false;
        }
        let mut rng = round_rng(derive_seed(seed, BIMODAL_STREAM), round, worker);
        rng.gen::<f64>() < self.slow_probability
    }
}

impl StragglerModel for BimodalModel {
    fn compute_seconds(&self, seed: u64, round: u64, worker: usize, load: usize) -> f64 {
        let base =
            engine::sample_compute_seconds_with(&self.base[worker], seed, round, worker, load);
        if self.is_slow(seed, round, worker) {
            base * self.slowdown
        } else {
            base
        }
    }

    fn name(&self) -> &'static str {
        "bimodal"
    }

    fn mean_compute_seconds(&self, worker: usize, load: usize) -> Option<f64> {
        let base = self.base[worker].mean_compute_time(load);
        let factor = if worker < self.slow_workers {
            1.0 + self.slow_probability * (self.slowdown - 1.0)
        } else {
            1.0
        };
        Some(base * factor)
    }
}

/// Markov time-correlated model: every worker carries a two-state
/// fast/slow chain across rounds — `P(fast→slow) = p_slow`,
/// `P(slow→fast) = p_recover` — and a slow round multiplies the base
/// shift-exponential draw by `slowdown`.
///
/// This captures *bursty* stragglers (a worker that lagged last round
/// probably lags this one), the regime where per-round i.i.d. analyses are
/// most optimistic. Chains start in the fast state before round 0 and take
/// one transition per round.
///
/// The state at round `t` is obtained by replaying the worker's chain from
/// round 0 on a dedicated `(seed, worker)` stream — `O(t)` per sample, but
/// a pure function of the key, which keeps the cross-backend determinism
/// contract (the threaded backend's workers sample rounds at their own
/// pace, so the model cannot rely on in-order calls).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MarkovModel {
    base: WorkerProfile,
    p_slow: f64,
    p_recover: f64,
    slowdown: f64,
}

impl MarkovModel {
    /// Homogeneous `(mu, a)` base with transition probabilities `p_slow`
    /// (fast→slow) and `p_recover` (slow→fast) and factor `slowdown`.
    ///
    /// # Panics
    /// Panics when a probability is outside `[0, 1]` or `slowdown` is not
    /// positive and finite.
    #[must_use]
    pub fn new(mu: f64, a: f64, p_slow: f64, p_recover: f64, slowdown: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p_slow),
            "p_slow must be in [0,1], got {p_slow}"
        );
        assert!(
            (0.0..=1.0).contains(&p_recover),
            "p_recover must be in [0,1], got {p_recover}"
        );
        assert!(
            slowdown > 0.0 && slowdown.is_finite(),
            "slowdown must be positive and finite, got {slowdown}"
        );
        Self {
            base: WorkerProfile { mu, a },
            p_slow,
            p_recover,
            slowdown,
        }
    }

    /// The chain's stationary probability of the slow state,
    /// `p_slow / (p_slow + p_recover)` (1 when both probabilities are 0 is
    /// undefined; returns 0 then, matching the chain that never leaves
    /// fast).
    #[must_use]
    pub fn stationary_slow_fraction(&self) -> f64 {
        let denom = self.p_slow + self.p_recover;
        if denom == 0.0 {
            0.0
        } else {
            self.p_slow / denom
        }
    }

    /// Whether `worker` is in the slow state at `round`, by deterministic
    /// chain replay from round 0.
    #[must_use]
    pub fn is_slow(&self, seed: u64, round: u64, worker: usize) -> bool {
        let mut rng = derive_rng(derive_seed(seed, MARKOV_STREAM), worker as u64);
        let mut slow = false;
        for _ in 0..=round {
            let u: f64 = rng.gen();
            slow = if slow {
                u >= self.p_recover
            } else {
                u < self.p_slow
            };
        }
        slow
    }
}

impl StragglerModel for MarkovModel {
    fn compute_seconds(&self, seed: u64, round: u64, worker: usize, load: usize) -> f64 {
        let base = engine::sample_compute_seconds_with(&self.base, seed, round, worker, load);
        if self.is_slow(seed, round, worker) {
            base * self.slowdown
        } else {
            base
        }
    }

    fn name(&self) -> &'static str {
        "markov"
    }

    fn mean_compute_seconds(&self, _worker: usize, _load: usize) -> Option<f64> {
        // The marginal depends on the round (the chain has not mixed at
        // round 0); no single closed form fits the signature.
        None
    }
}

/// The zoo's members as `(name, one-line description)` pairs — the
/// discovery surface `repro list` prints.
pub const ZOO: [(&str, &str); 5] = [
    (
        "shifted-exp",
        "the paper's shift-exponential (eq. 15): deterministic per-unit shift + exponential tail (default)",
    ),
    (
        "pareto",
        "heavy polynomial tail: rare order-of-magnitude stragglers (Bitar et al.'s regime)",
    ),
    (
        "weibull",
        "stretched-exponential tail between shift-exp and Pareto (Karakus et al.'s regime)",
    ),
    (
        "bimodal",
        "fixed slow subset straggling by a slowdown factor with per-round coin flips",
    ),
    (
        "markov",
        "per-worker fast/slow 2-state chain: time-correlated straggling across rounds",
    ),
];

/// The default model for a profile: the paper's shift-exponential over the
/// profile's per-worker `(mu, a)` parameters — what both backends install
/// unless given another model.
#[must_use]
pub fn default_model(profile: &ClusterProfile) -> Arc<dyn StragglerModel> {
    Arc::new(ShiftedExpModel::from_profile(profile))
}

/// Seed-stream tag for the WAN link-latency draws.
const WAN_STREAM: u64 = 0x3A17;

/// Quantization steps of the WAN jitter draw (see [`WanLinkModel`]).
const WAN_JITTER_STEPS: u64 = 4;

/// A WAN overlay on any straggler model: per-`(round, worker)` link
/// latency added on top of the wrapped model's compute time.
///
/// `delay = inner + latency + jitter · (k / (S-1))` with `k ∈ 0..S`
/// drawn uniformly from a dedicated seed stream (`S = 4` quantization
/// steps). The draw is a pure function of `(seed, round, worker)`, so it
/// obeys the module's determinism contract; the quantization keeps the
/// jitter values coarse relative to the staircase profiles the gateable
/// benchmarks use, preserving unambiguous real-time arrival order.
///
/// The networked master ships the *combined* delay in the round frame and
/// the worker sleeps it over a real socket — which is exactly per-link
/// latency injection — while a virtual twin wrapped with the same model
/// replays the identical arrival schedule, keeping WAN rows bit-comparable
/// across backends.
#[derive(Debug, Clone)]
pub struct WanLinkModel {
    inner: Arc<dyn StragglerModel>,
    latency: f64,
    jitter: f64,
}

impl WanLinkModel {
    /// Wraps `inner`, adding `latency` fixed plus up to `jitter` of
    /// quantized per-`(round, worker)` variation (simulated seconds).
    ///
    /// # Panics
    /// Panics on negative or non-finite parameters.
    #[must_use]
    pub fn wrap(inner: Arc<dyn StragglerModel>, latency: f64, jitter: f64) -> Self {
        assert!(
            latency >= 0.0 && latency.is_finite() && jitter >= 0.0 && jitter.is_finite(),
            "WAN latency/jitter must be finite and non-negative"
        );
        Self {
            inner,
            latency,
            jitter,
        }
    }

    /// The deterministic link delay (simulated seconds) for one
    /// `(round, worker)` link, excluding the wrapped compute time.
    #[must_use]
    pub fn link_delay(&self, seed: u64, round: u64, worker: usize) -> f64 {
        if self.jitter == 0.0 {
            return self.latency;
        }
        let mut rng = round_rng(derive_seed(seed, WAN_STREAM), round, worker);
        let step = rng.gen_range(0..WAN_JITTER_STEPS);
        self.latency + self.jitter * step as f64 / (WAN_JITTER_STEPS - 1) as f64
    }
}

impl StragglerModel for WanLinkModel {
    fn compute_seconds(&self, seed: u64, round: u64, worker: usize, load: usize) -> f64 {
        self.inner.compute_seconds(seed, round, worker, load) + self.link_delay(seed, round, worker)
    }

    fn name(&self) -> &'static str {
        "wan"
    }

    fn mean_compute_seconds(&self, worker: usize, load: usize) -> Option<f64> {
        self.inner
            .mean_compute_seconds(worker, load)
            .map(|m| m + self.latency + self.jitter / 2.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::{ClusterProfile, CommModel};
    use bcc_stats::Summary;

    fn profile(n: usize) -> ClusterProfile {
        ClusterProfile::homogeneous(
            n,
            2.0,
            0.01,
            CommModel {
                per_message_overhead: 0.0,
                per_unit: 0.0,
            },
        )
    }

    #[test]
    fn shifted_exp_model_is_byte_identical_to_the_legacy_stream() {
        let p = profile(4);
        let model = ShiftedExpModel::from_profile(&p);
        for round in 0..20 {
            for worker in 0..4 {
                let legacy = engine::sample_compute_seconds(&p, 9, round, worker, 5);
                let trait_draw = model.compute_seconds(9, round, worker, 5);
                assert_eq!(legacy.to_bits(), trait_draw.to_bits());
            }
        }
    }

    #[test]
    fn every_model_is_deterministic_in_its_key() {
        let models: Vec<Box<dyn StragglerModel>> = vec![
            Box::new(ShiftedExpModel::homogeneous(8, 2.0, 0.01)),
            Box::new(ParetoModel::new(0.01, 2.5)),
            Box::new(WeibullModel::new(0.01, 0.8, 0.005)),
            Box::new(BimodalModel::homogeneous(8, 2.0, 0.01, 2, 0.5, 10.0)),
            Box::new(MarkovModel::new(2.0, 0.01, 0.2, 0.4, 10.0)),
        ];
        for m in &models {
            let a = m.compute_seconds(7, 3, 1, 4);
            let b = m.compute_seconds(7, 3, 1, 4);
            assert_eq!(a.to_bits(), b.to_bits(), "{} must replay", m.name());
            assert!(a > 0.0 && a.is_finite());
            // Different rounds and workers decorrelate.
            assert_ne!(a, m.compute_seconds(7, 4, 1, 4), "{}", m.name());
            assert_ne!(a, m.compute_seconds(7, 3, 2, 4), "{}", m.name());
        }
    }

    #[test]
    fn pareto_and_weibull_means_match_empirics() {
        let pareto = ParetoModel::new(0.01, 3.0);
        let weibull = WeibullModel::new(0.02, 2.0, 0.005);
        for (name, m) in [
            ("pareto", &pareto as &dyn StragglerModel),
            ("weibull", &weibull),
        ] {
            let mean = m.mean_compute_seconds(0, 6).unwrap();
            let mut s = Summary::new();
            for round in 0..60_000 {
                s.push(m.compute_seconds(11, round, 0, 6));
            }
            assert!(
                (s.mean() - mean).abs() / mean < 0.02,
                "{name}: empirical {} vs closed-form {mean}",
                s.mean()
            );
        }
    }

    #[test]
    fn pareto_without_finite_mean_reports_none() {
        assert_eq!(ParetoModel::new(0.01, 1.0).mean_compute_seconds(0, 3), None);
    }

    #[test]
    fn bimodal_slow_subset_is_fixed_and_coin_matches_probability() {
        let m = BimodalModel::homogeneous(10, 2.0, 0.01, 3, 0.3, 10.0);
        // Fast workers never straggle.
        for round in 0..200 {
            for worker in 3..10 {
                assert!(!m.is_slow(5, round, worker));
            }
        }
        // Slow-set coin frequency ≈ p.
        let mut hits = 0u32;
        let rounds = 60_000u64;
        for round in 0..rounds {
            if m.is_slow(5, round, 0) {
                hits += 1;
            }
        }
        let freq = f64::from(hits) / rounds as f64;
        assert!((freq - 0.3).abs() < 0.01, "slow frequency {freq}");
        // Mean folds the mixture in: base·(1 + p·(slowdown−1)).
        let base = m.base[0].mean_compute_time(4);
        assert!((m.mean_compute_seconds(0, 4).unwrap() - base * 3.7).abs() < 1e-12);
        assert!((m.mean_compute_seconds(9, 4).unwrap() - base).abs() < 1e-12);
    }

    #[test]
    fn bimodal_mixture_mean_matches_empirics() {
        let m = BimodalModel::homogeneous(4, 2.0, 0.01, 1, 0.25, 8.0);
        let mean = m.mean_compute_seconds(0, 5).unwrap();
        let mut s = Summary::new();
        for round in 0..60_000 {
            s.push(m.compute_seconds(13, round, 0, 5));
        }
        assert!(
            (s.mean() - mean).abs() / mean < 0.02,
            "empirical {} vs {mean}",
            s.mean()
        );
    }

    #[test]
    fn markov_state_carries_across_rounds() {
        // With p_recover = 0 a worker that ever turns slow stays slow.
        let absorbing = MarkovModel::new(2.0, 0.01, 0.3, 0.0, 10.0);
        let mut seen_slow = false;
        for round in 0..200 {
            let slow = absorbing.is_slow(3, round, 0);
            if seen_slow {
                assert!(slow, "absorbing slow state must persist (round {round})");
            }
            seen_slow |= slow;
        }
        assert!(seen_slow, "p_slow = 0.3 over 200 rounds must trigger");
    }

    #[test]
    fn markov_chain_is_sticky() {
        // P(slow_t | slow_{t-1}) must be ≈ 1 − p_recover ≫ stationary π.
        let m = MarkovModel::new(2.0, 0.01, 0.05, 0.2, 10.0);
        let (mut slow_after_slow, mut slow_rounds) = (0u32, 0u32);
        for worker in 0..40 {
            for round in 0..1500 {
                if m.is_slow(17, round, worker) {
                    slow_rounds += 1;
                    if m.is_slow(17, round + 1, worker) {
                        slow_after_slow += 1;
                    }
                }
            }
        }
        let sticky = f64::from(slow_after_slow) / f64::from(slow_rounds);
        assert!(
            (sticky - 0.8).abs() < 0.03,
            "P(slow|slow) = {sticky}, want 1 − p_recover = 0.8"
        );
        assert!((m.stationary_slow_fraction() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn markov_long_run_frequency_approaches_stationary() {
        let m = MarkovModel::new(2.0, 0.01, 0.1, 0.3, 10.0);
        let mut slow = 0u32;
        let rounds = 2000u64;
        let workers = 30usize;
        for worker in 0..workers {
            for round in 0..rounds {
                if m.is_slow(23, round, worker) {
                    slow += 1;
                }
            }
        }
        let freq = f64::from(slow) / (rounds * workers as u64) as f64;
        assert!(
            (freq - m.stationary_slow_fraction()).abs() < 0.02,
            "long-run slow fraction {freq} vs stationary {}",
            m.stationary_slow_fraction()
        );
    }

    #[test]
    #[should_panic(expected = "slow subset")]
    fn bimodal_rejects_oversized_slow_set() {
        let _ = BimodalModel::homogeneous(4, 1.0, 0.0, 5, 0.5, 2.0);
    }

    #[test]
    #[should_panic(expected = "p_slow")]
    fn markov_rejects_bad_probability() {
        let _ = MarkovModel::new(1.0, 0.0, 1.5, 0.5, 2.0);
    }
}
