//! DES-backed virtual cluster: the threaded protocol replayed in virtual
//! time.
//!
//! Per round: every participating worker `i` samples a compute time
//! `Tᵢ ~ shift-exp(aᵢ·rᵢ, μᵢ/rᵢ)` and "finishes" at `Tᵢ`; its message then
//! queues for the master's single receive port (transfer time
//! `overhead + units·per_unit`, one transfer at a time). The master feeds
//! each arrival to the scheme's decoder and stops at completion. Identical
//! event semantics to [`crate::ThreadedCluster`], minus the wall clock.

use crate::backend::{ClusterBackend, RoundOutcome};
use crate::error::ClusterError;
use crate::latency::ClusterProfile;
use crate::metrics::RoundMetrics;
use crate::units::UnitMap;
use bcc_coding::GradientCodingScheme;
use bcc_data::Dataset;
use bcc_des::{Simulation, Verdict, VirtualTime};
use bcc_optim::Loss;
use bcc_stats::rng::derive_rng;
use std::collections::HashSet;

/// Virtual (discrete-event) cluster backend.
#[derive(Debug, Clone)]
pub struct VirtualCluster {
    profile: ClusterProfile,
    seed: u64,
    round: u64,
    dead_workers: HashSet<usize>,
}

/// DES events of one round.
enum Event {
    /// Worker finished computing; message joins the master port queue.
    WorkerDone { worker: usize, compute_seconds: f64 },
    /// Transfer of this worker's message completed at the master.
    Delivered { worker: usize, compute_seconds: f64 },
}

impl VirtualCluster {
    /// Creates a virtual cluster with the given latency profile and seed.
    #[must_use]
    pub fn new(profile: ClusterProfile, seed: u64) -> Self {
        Self {
            profile,
            seed,
            round: 0,
            dead_workers: HashSet::new(),
        }
    }

    /// Marks workers as dead for failure-injection experiments; they never
    /// produce messages.
    pub fn kill_workers(&mut self, workers: impl IntoIterator<Item = usize>) {
        self.dead_workers.extend(workers);
    }

    /// Revives all workers.
    pub fn revive_all(&mut self) {
        self.dead_workers.clear();
    }

    /// The latency profile in force.
    #[must_use]
    pub fn profile(&self) -> &ClusterProfile {
        &self.profile
    }
}

impl ClusterBackend for VirtualCluster {
    fn run_round(
        &mut self,
        scheme: &dyn GradientCodingScheme,
        units: &UnitMap,
        data: &Dataset,
        loss: &dyn Loss,
        weights: &[f64],
    ) -> Result<RoundOutcome, ClusterError> {
        let n = scheme.num_workers();
        assert_eq!(
            n,
            self.profile.num_workers(),
            "scheme has {n} workers but profile has {}",
            self.profile.num_workers()
        );
        assert_eq!(
            scheme.num_examples(),
            units.num_units(),
            "scheme units and unit map disagree"
        );

        let round = self.round;
        self.round += 1;

        // Sample worker finish times and schedule their events.
        let mut sim: Simulation<Event> = Simulation::new();
        let mut live = 0usize;
        for worker in 0..n {
            if self.dead_workers.contains(&worker) {
                continue;
            }
            let load = scheme.placement().load_of(worker);
            if load == 0 {
                continue;
            }
            live += 1;
            let mut rng = derive_rng(self.seed, round.wrapping_mul(1_000_003) + worker as u64);
            let t = self.profile.workers[worker].sample_compute_time(load, &mut rng);
            sim.schedule_at(
                VirtualTime::new(t),
                Event::WorkerDone {
                    worker,
                    compute_seconds: t,
                },
            );
        }
        if live == 0 {
            return Err(ClusterError::Stalled {
                received: 0,
                reason: "no live workers hold any data".into(),
            });
        }

        // Run the protocol: serialized master port + incremental decoding.
        let mut decoder = scheme.decoder();
        let comm = self.profile.comm;
        let mut port_free_at = VirtualTime::ZERO;
        let mut max_compute_used = 0.0f64;
        let mut decode_error: Option<ClusterError> = None;
        let mut complete = false;

        let end_time = sim.run(|sched, event| match event {
            Event::WorkerDone {
                worker,
                compute_seconds,
            } => {
                // Queue on the single receive port.
                let payload_units = scheme.message_units(worker);
                let start = port_free_at.max(sched.now());
                let done = start + comm.transfer_time(payload_units);
                port_free_at = done;
                sched.schedule_at(
                    done,
                    Event::Delivered {
                        worker,
                        compute_seconds,
                    },
                );
                Verdict::Continue
            }
            Event::Delivered {
                worker,
                compute_seconds,
            } => {
                // Compute the worker's actual partial gradients and encode.
                let worker_units = scheme.placement().worker_examples(worker);
                let partials = units.worker_partials_dyn(data, loss, worker_units, weights);
                let payload = match scheme.encode(worker, &partials) {
                    Ok(p) => p,
                    Err(e) => {
                        decode_error = Some(e.into());
                        return Verdict::Stop;
                    }
                };
                match decoder.receive(worker, payload) {
                    Ok(done) => {
                        max_compute_used = max_compute_used.max(compute_seconds);
                        if done {
                            complete = true;
                            Verdict::Stop
                        } else {
                            Verdict::Continue
                        }
                    }
                    Err(e) => {
                        decode_error = Some(e.into());
                        Verdict::Stop
                    }
                }
            }
        });

        if let Some(e) = decode_error {
            return Err(e);
        }
        if !complete {
            return Err(ClusterError::Stalled {
                received: decoder.messages_received(),
                reason: "all live workers reported without completing the scheme".into(),
            });
        }

        let gradient_sum = decoder.decode().map_err(ClusterError::from)?;
        let total_time = end_time.seconds();
        let metrics = RoundMetrics {
            messages_used: decoder.messages_received(),
            communication_units: decoder.communication_units(),
            compute_time: max_compute_used,
            comm_time: (total_time - max_compute_used).max(0.0),
            total_time,
        };
        Ok(RoundOutcome {
            gradient_sum,
            metrics,
        })
    }

    fn backend_name(&self) -> &'static str {
        "virtual-des"
    }
}

// Object-safe helper mirroring `UnitMap::worker_partials` for `dyn Loss`.
impl UnitMap {
    /// Like [`UnitMap::worker_partials`] but callable with `&dyn Loss`.
    #[must_use]
    pub fn worker_partials_dyn(
        &self,
        data: &Dataset,
        loss: &dyn Loss,
        units: &[usize],
        w: &[f64],
    ) -> Vec<Vec<f64>> {
        units
            .iter()
            .map(|&u| {
                let idx = self.unit_examples(u);
                let mut acc = vec![0.0; w.len()];
                for j in idx {
                    loss.add_gradient(data.x(j), data.y(j), w, &mut acc);
                }
                acc
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::{ClusterProfile, CommModel};
    use bcc_coding::{BccScheme, UncodedScheme};
    use bcc_data::synthetic::{generate, SyntheticConfig};
    use bcc_linalg::approx_eq_slice;
    use bcc_optim::gradient::full_gradient;
    use bcc_optim::LogisticLoss;

    fn profile(n: usize) -> ClusterProfile {
        ClusterProfile::homogeneous(
            n,
            2.0,
            0.001,
            CommModel {
                per_message_overhead: 0.001,
                per_unit: 0.01,
            },
        )
    }

    #[test]
    fn uncoded_round_matches_serial_gradient() {
        let g = generate(&SyntheticConfig::small(40, 6, 1));
        let units = UnitMap::grouped(40, 20);
        let scheme = UncodedScheme::new(20, 10);
        let mut cluster = VirtualCluster::new(profile(10), 7);
        let w = vec![0.05; 6];
        let out = cluster
            .run_round(&scheme, &units, &g.dataset, &LogisticLoss, &w)
            .unwrap();
        let mut expect = full_gradient(&g.dataset, &LogisticLoss, &w);
        bcc_linalg::vec_ops::scale(40.0, &mut expect);
        assert!(approx_eq_slice(&out.gradient_sum, &expect, 1e-8));
        assert_eq!(out.metrics.messages_used, 10);
        assert!(out.metrics.is_consistent());
        assert!(out.metrics.total_time > 0.0);
    }

    #[test]
    fn bcc_round_uses_fewer_messages_than_uncoded() {
        let g = generate(&SyntheticConfig::small(40, 4, 2));
        let m_units = 20;
        let units = UnitMap::grouped(40, m_units);
        let n = 40;
        let mut rng = bcc_stats::rng::derive_rng(3, 0);
        let scheme = loop {
            let s = BccScheme::new(m_units, n, 5, &mut rng);
            if s.covers_all_batches() {
                break s;
            }
        };
        let mut cluster = VirtualCluster::new(profile(n), 11);
        let w = vec![0.0; 4];
        let out = cluster
            .run_round(&scheme, &units, &g.dataset, &LogisticLoss, &w)
            .unwrap();
        // 4 batches: completion needs ≥ 4 and usually ≪ 40 messages.
        assert!(out.metrics.messages_used >= 4);
        assert!(out.metrics.messages_used < 40);
        let mut expect = full_gradient(&g.dataset, &LogisticLoss, &w);
        bcc_linalg::vec_ops::scale(40.0, &mut expect);
        assert!(approx_eq_slice(&out.gradient_sum, &expect, 1e-8));
    }

    #[test]
    fn deterministic_given_seed() {
        let g = generate(&SyntheticConfig::small(20, 3, 3));
        let units = UnitMap::grouped(20, 10);
        let scheme = UncodedScheme::new(10, 5);
        let w = vec![0.1; 3];
        let run = |seed| {
            let mut c = VirtualCluster::new(profile(5), seed);
            c.run_round(&scheme, &units, &g.dataset, &LogisticLoss, &w)
                .unwrap()
                .metrics
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42).total_time, run(43).total_time);
    }

    #[test]
    fn dead_worker_stalls_uncoded() {
        let g = generate(&SyntheticConfig::small(20, 3, 4));
        let units = UnitMap::grouped(20, 10);
        let scheme = UncodedScheme::new(10, 5);
        let mut cluster = VirtualCluster::new(profile(5), 9);
        cluster.kill_workers([2]);
        let err = cluster
            .run_round(&scheme, &units, &g.dataset, &LogisticLoss, &[0.0; 3])
            .unwrap_err();
        assert!(matches!(err, ClusterError::Stalled { received: 4, .. }));
        cluster.revive_all();
        assert!(cluster
            .run_round(&scheme, &units, &g.dataset, &LogisticLoss, &[0.0; 3])
            .is_ok());
    }

    #[test]
    fn dead_worker_tolerated_by_bcc_when_covered() {
        let m_units = 4;
        let g = generate(&SyntheticConfig::small(8, 3, 5));
        let units = UnitMap::grouped(8, m_units);
        // r = 1 → 4 batches over 4 units; 8 workers, two per batch:
        // killing one worker keeps every batch covered.
        let scheme = BccScheme::from_choices(m_units, 1, vec![0, 1, 2, 3, 0, 1, 2, 3]);
        let mut cluster = VirtualCluster::new(profile(8), 13);
        cluster.kill_workers([1]);
        let out = cluster
            .run_round(&scheme, &units, &g.dataset, &LogisticLoss, &[0.0; 3])
            .unwrap();
        assert!(out.metrics.messages_used >= m_units);
    }

    #[test]
    fn rounds_resample_latencies() {
        let g = generate(&SyntheticConfig::small(20, 3, 6));
        let units = UnitMap::grouped(20, 10);
        let scheme = UncodedScheme::new(10, 5);
        let mut cluster = VirtualCluster::new(profile(5), 21);
        let w = vec![0.0; 3];
        let t1 = cluster
            .run_round(&scheme, &units, &g.dataset, &LogisticLoss, &w)
            .unwrap()
            .metrics
            .total_time;
        let t2 = cluster
            .run_round(&scheme, &units, &g.dataset, &LogisticLoss, &w)
            .unwrap()
            .metrics
            .total_time;
        assert_ne!(t1, t2, "per-round latency streams must differ");
    }
}
