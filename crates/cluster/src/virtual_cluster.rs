//! Virtual cluster: the round protocol replayed in virtual time.
//!
//! Per round: every participating worker `i` samples a compute time from
//! the installed [`StragglerModel`] (default: the paper's
//! `shift-exp(aᵢ·rᵢ, μᵢ/rᵢ)`) and "finishes" at `Tᵢ`; its message then
//! queues for the master's single receive port (transfer time
//! `overhead + units·per_unit`, one transfer at a time). All protocol logic
//! — decoder feeding, completion, stalls, metrics — lives in the shared
//! [`RoundEngine`]; this file is only the arrival adapter that feeds the
//! engine's pull-based [`ArrivalSource`]. Identical protocol semantics to
//! [`crate::ThreadedCluster`] by construction, minus the wall clock.
//!
//! Because every finish time is known when the round starts and the
//! receive port is strictly serial, the event calendar collapses to a
//! stable sort of `(finish time, worker)` walked in order — delivery
//! timestamps and arrival order are event-for-event identical to pumping a
//! general discrete-event queue (which the `bcc-des` crate still provides
//! for models with feedback), at a fraction of the per-round cost.

use crate::backend::{ClusterBackend, RoundDriver, RoundOutcome};
use crate::config::BackendConfig;
use crate::decode::DecodePool;
use crate::engine::{Arrival, ArrivalEvent, ArrivalSource, RoundContext, RoundEngine};
use crate::error::ClusterError;
use crate::latency::{ClusterProfile, CommModel};
use crate::minibatch::{Minibatch, UnitSelection};
use crate::observer::{NullObserver, RoundObserver, SharedObserver};
use crate::packed::{UnitGradientCache, WorkerBlocks};
use crate::policy::AggregationPolicy;
use crate::straggler::{self, StragglerModel};
use crate::units::UnitMap;
use bcc_coding::{GradientCodingScheme, Payload};
use bcc_data::Dataset;
use bcc_optim::{GradScratch, Loss};
use std::collections::HashSet;
use std::sync::Arc;

/// Virtual (discrete-event) cluster backend.
#[derive(Debug, Clone)]
pub struct VirtualCluster {
    profile: ClusterProfile,
    model: Arc<dyn StragglerModel>,
    policy: Arc<dyn AggregationPolicy>,
    observer: Option<SharedObserver>,
    seed: u64,
    round: u64,
    dead_workers: HashSet<usize>,
    decode_pool: DecodePool,
    minibatch: Option<Minibatch>,
}

impl VirtualCluster {
    /// Creates a virtual cluster with the given latency profile and seed,
    /// sampling compute times from the paper's shift-exponential model over
    /// the profile's per-worker parameters.
    #[must_use]
    pub fn new(profile: ClusterProfile, seed: u64) -> Self {
        let model = straggler::default_model(&profile);
        Self {
            profile,
            model,
            policy: crate::policy::default_policy(),
            observer: None,
            seed,
            round: 0,
            dead_workers: HashSet::new(),
            decode_pool: DecodePool::default(),
            minibatch: None,
        }
    }

    /// Applies every [`BackendConfig`] knob this backend implements:
    /// latency model, aggregation policy, observer, decode pool, and
    /// minibatch sampler. Network-only knobs (timeouts, pipelining, job,
    /// auth token) are ignored — the virtual clock has no real network.
    #[must_use]
    pub fn configured(mut self, config: BackendConfig) -> Self {
        if let Some(model) = config.straggler_model {
            self.model = model;
        }
        if let Some(policy) = config.aggregation_policy {
            self.policy = policy;
        }
        if let Some(observer) = config.observer {
            self.observer = Some(observer);
        }
        if let Some(pool) = config.decode_pool {
            self.decode_pool = pool;
        }
        if let Some(minibatch) = config.minibatch {
            self.minibatch = Some(minibatch);
        }
        self
    }

    /// Installs a per-round unit-subset sampler: each round trains on a
    /// sampled minibatch instead of the full partition (see
    /// [`crate::minibatch`]). `None` restores full-partition rounds.
    #[deprecated(note = "use `configured(BackendConfig)` instead")]
    #[must_use]
    pub fn with_minibatch(mut self, minibatch: Option<Minibatch>) -> Self {
        self.minibatch = minibatch;
        self
    }

    /// Overrides the master's decode/aggregate thread budget (default:
    /// all available cores). Bit-identical results at any setting — see
    /// [`crate::decode`]'s determinism contract.
    #[deprecated(note = "use `configured(BackendConfig)` instead")]
    #[must_use]
    pub fn with_decode_pool(mut self, pool: DecodePool) -> Self {
        self.decode_pool = pool;
        self
    }

    /// Replaces the worker-latency model (see the
    /// [zoo](crate::straggler)). The profile keeps supplying the comm model
    /// and worker count; compute times come from `model`.
    #[deprecated(note = "use `configured(BackendConfig)` instead")]
    #[must_use]
    pub fn with_straggler_model(mut self, model: Arc<dyn StragglerModel>) -> Self {
        self.model = model;
        self
    }

    /// Replaces the aggregation policy deciding round completion and the
    /// returned gradient (default:
    /// [`WaitDecodable`](crate::policy::WaitDecodable)).
    #[deprecated(note = "use `configured(BackendConfig)` instead")]
    #[must_use]
    pub fn with_aggregation_policy(mut self, policy: Arc<dyn AggregationPolicy>) -> Self {
        self.policy = policy;
        self
    }

    /// Installs a subscriber for the per-round
    /// [`RoundEvent`](crate::observer::RoundEvent) stream.
    #[deprecated(note = "use `configured(BackendConfig)` instead")]
    #[must_use]
    pub fn with_observer(mut self, observer: SharedObserver) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Marks workers as dead for failure-injection experiments; they never
    /// produce messages.
    pub fn kill_workers(&mut self, workers: impl IntoIterator<Item = usize>) {
        self.dead_workers.extend(workers);
    }

    /// Revives all workers.
    pub fn revive_all(&mut self) {
        self.dead_workers.clear();
    }

    /// The latency profile in force.
    #[must_use]
    pub fn profile(&self) -> &ClusterProfile {
        &self.profile
    }

    /// Runs one round over a fixed participant set (round id preallocated).
    /// `scratch` carries the reusable gradient buffers across rounds.
    #[allow(clippy::too_many_arguments)] // per-run reusable state, one arg each
    fn round_with_participants(
        &self,
        round: u64,
        participants: &[usize],
        ctx: RoundContext<'_>,
        weights: &[f64],
        scratch: &mut GradScratch,
        cache: Option<&mut UnitGradientCache>,
        schedule: &mut Vec<(usize, f64)>,
    ) -> Result<RoundOutcome, ClusterError> {
        let mut cache = cache;
        if let Some(c) = cache.as_deref_mut() {
            c.begin_round();
        }
        let selection = ctx.selection_for(round);
        let examples_used = selection.as_ref().map(|sel| ctx.examples_in(sel));
        let mut source = VirtualArrivals::new(
            self.profile.comm,
            participants.iter().map(|&worker| {
                // Minibatch rounds only charge compute for the worker's
                // units that fall in the sample.
                let load = match &selection {
                    Some(sel) => sel.selected_load(ctx.scheme.placement().worker_examples(worker)),
                    None => ctx.scheme.placement().load_of(worker),
                };
                // A worker whose units all fell outside the minibatch still
                // encodes and sends (coded messages mix selected and
                // unselected units), but computes nothing — the latency
                // model is undefined at zero load, so charge zero compute.
                let t = if load == 0 {
                    0.0
                } else {
                    self.model.compute_seconds(self.seed, round, worker, load)
                };
                (worker, t)
            }),
            ctx,
            weights,
            scratch,
            cache,
            schedule,
            selection.as_ref(),
        );
        let mut engine = RoundEngine::with_policy(ctx.scheme, participants.len(), &*self.policy)
            .with_decode_pool(self.decode_pool);
        let mut null = NullObserver;
        let mut guard = self
            .observer
            .as_ref()
            .map(|o| o.lock().expect("round observer lock poisoned"));
        let observer: &mut dyn RoundObserver = match guard.as_deref_mut() {
            Some(o) => o,
            None => &mut null,
        };
        let end = engine.run_observed(&mut source, round, observer)?;
        let arrivals = engine.arrival_stamps();
        let (aggregate, metrics) = engine.finish(end)?;
        Ok(RoundOutcome::new(aggregate, metrics)
            .with_examples_used(examples_used)
            .with_arrivals(arrivals))
    }
}

impl ClusterBackend for VirtualCluster {
    fn run_round(
        &mut self,
        scheme: &dyn GradientCodingScheme,
        units: &UnitMap,
        data: &Dataset,
        loss: &dyn Loss,
        weights: &[f64],
    ) -> Result<RoundOutcome, ClusterError> {
        let packed = WorkerBlocks::build(scheme, units, data);
        let ctx = RoundContext {
            scheme,
            units,
            data,
            loss,
            packed: &packed,
            minibatch: self.minibatch,
        };
        ctx.validate(&self.profile);
        let round = self.round;
        self.round += 1;
        let participants = ctx.participants(&self.dead_workers);
        let mut scratch = GradScratch::new();
        let mut cache = use_cache(scheme).then(|| UnitGradientCache::new(units.num_units()));
        let mut schedule = Vec::new();
        self.round_with_participants(
            round,
            &participants,
            ctx,
            weights,
            &mut scratch,
            cache.as_mut(),
            &mut schedule,
        )
    }

    fn run_rounds(
        &mut self,
        rounds: usize,
        scheme: &dyn GradientCodingScheme,
        units: &UnitMap,
        data: &Dataset,
        loss: &dyn Loss,
        driver: &mut dyn RoundDriver,
    ) -> Result<(), ClusterError> {
        // Amortize round setup: validate, build the participant set, pack
        // each worker's data, and allocate the gradient scratch once for
        // the whole run instead of once per round.
        let packed = WorkerBlocks::build(scheme, units, data);
        let ctx = RoundContext {
            scheme,
            units,
            data,
            loss,
            packed: &packed,
            minibatch: self.minibatch,
        };
        ctx.validate(&self.profile);
        let participants = ctx.participants(&self.dead_workers);
        let mut scratch = GradScratch::new();
        // Replication-free schemes (uncoded) never share a unit across
        // workers, so memoization would be pure copy overhead — decided
        // once per run, not per round.
        let mut cache = use_cache(scheme).then(|| UnitGradientCache::new(units.num_units()));
        let mut schedule = Vec::new();
        for index in 0..rounds {
            // Advance per attempted round (failing rounds included), exactly
            // like sequential run_round calls would.
            let round = self.round;
            self.round += 1;
            let weights = driver.eval_point(index);
            let outcome = self.round_with_participants(
                round,
                &participants,
                ctx,
                &weights,
                &mut scratch,
                cache.as_mut(),
                &mut schedule,
            )?;
            driver.consume(index, outcome);
        }
        Ok(())
    }

    fn backend_name(&self) -> &'static str {
        "virtual-des"
    }
}

/// True when any unit is stored by more than one worker (per-round unit
/// memoization pays off).
fn use_cache(scheme: &dyn GradientCodingScheme) -> bool {
    scheme
        .placement()
        .replication_counts()
        .iter()
        .any(|&c| c > 1)
}

/// Arrival adapter: walks the round's finish-time schedule in order,
/// modelling the master's serialized receive port, and materializes each
/// worker's payload at delivery time.
struct VirtualArrivals<'a> {
    /// `(worker, finish_time)` stably sorted by finish time — FIFO port
    /// order; the buffer is reused across rounds.
    schedule: &'a [(usize, f64)],
    next: usize,
    port_free_at: f64,
    comm: CommModel,
    ctx: RoundContext<'a>,
    weights: &'a [f64],
    scratch: &'a mut GradScratch,
    cache: Option<&'a mut UnitGradientCache>,
    selection: Option<&'a UnitSelection>,
}

impl<'a> VirtualArrivals<'a> {
    #[allow(clippy::too_many_arguments)] // per-round reusable state, one arg each
    fn new(
        comm: CommModel,
        finish_times: impl Iterator<Item = (usize, f64)>,
        ctx: RoundContext<'a>,
        weights: &'a [f64],
        scratch: &'a mut GradScratch,
        cache: Option<&'a mut UnitGradientCache>,
        schedule: &'a mut Vec<(usize, f64)>,
        selection: Option<&'a UnitSelection>,
    ) -> Self {
        schedule.clear();
        schedule.extend(finish_times);
        // Stable: simultaneous finishers keep participant order, exactly
        // like the FIFO tie-breaking of a discrete-event calendar.
        schedule.sort_by(|a, b| a.1.total_cmp(&b.1));
        Self {
            schedule,
            next: 0,
            port_free_at: 0.0,
            comm,
            ctx,
            weights,
            scratch,
            cache,
            selection,
        }
    }

    /// [`RoundContext::compute_and_encode`] with per-round unit
    /// memoization: units already computed this round (by a replica worker)
    /// are copied from the cache instead of recomputed — bit-identical by
    /// construction, since every replica computes the same block at the
    /// same weights.
    fn compute_and_encode_cached(&mut self, worker: usize) -> Result<Payload, ClusterError> {
        let Some(cache) = self.cache.as_mut() else {
            return self.ctx.compute_and_encode_selected(
                worker,
                self.weights,
                self.scratch,
                self.selection,
            );
        };
        let unit_ids = self.ctx.scheme.placement().worker_examples(worker);
        let ranges = self.ctx.packed.worker(worker);
        let (x, y) = self.ctx.packed.arena(self.ctx.data);
        self.scratch.ensure_slots(ranges.len(), self.weights.len());
        for (slot, (&unit, rows)) in unit_ids.iter().zip(ranges).enumerate() {
            // Units outside the round's minibatch keep the zero vector
            // `ensure_slots` left in the slot.
            if self.selection.is_some_and(|sel| !sel.contains(unit)) {
                continue;
            }
            if let Some(grad) = cache.get(unit) {
                self.scratch.copy_partial_from(slot, grad);
            } else {
                self.scratch
                    .fill_partial(slot, self.ctx.loss, x, y, rows.clone(), self.weights);
                cache.store(unit, self.scratch.partial(slot));
            }
        }
        self.ctx
            .scheme
            .encode(worker, self.scratch.partials(ranges.len()))
            .map_err(ClusterError::from)
    }
}

impl ArrivalSource for VirtualArrivals<'_> {
    fn next_arrival(&mut self) -> Result<ArrivalEvent, ClusterError> {
        let Some(&(worker, finish)) = self.schedule.get(self.next) else {
            return Ok(ArrivalEvent::Exhausted {
                reason: "all live workers reported without completing the scheme".into(),
            });
        };
        self.next += 1;
        // Queue on the single receive port: the transfer starts when both
        // the message and the port are ready. Port order is finish order,
        // so delivery times are nondecreasing.
        let payload_units = self.ctx.scheme.message_units(worker);
        let start = self.port_free_at.max(finish);
        let done = start + self.comm.transfer_time(payload_units);
        self.port_free_at = done;
        let payload = self.compute_and_encode_cached(worker)?;
        Ok(ArrivalEvent::Delivered(Arrival {
            worker,
            payload,
            compute_seconds: finish,
            at: done,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::{ClusterProfile, CommModel};
    use bcc_coding::{BccScheme, UncodedScheme};
    use bcc_data::synthetic::{generate, SyntheticConfig};
    use bcc_linalg::approx_eq_slice;
    use bcc_optim::gradient::full_gradient;
    use bcc_optim::LogisticLoss;

    fn profile(n: usize) -> ClusterProfile {
        ClusterProfile::homogeneous(
            n,
            2.0,
            0.001,
            CommModel {
                per_message_overhead: 0.001,
                per_unit: 0.01,
            },
        )
    }

    #[test]
    fn uncoded_round_matches_serial_gradient() {
        let g = generate(&SyntheticConfig::small(40, 6, 1));
        let units = UnitMap::grouped(40, 20);
        let scheme = UncodedScheme::new(20, 10);
        let mut cluster = VirtualCluster::new(profile(10), 7);
        let w = vec![0.05; 6];
        let out = cluster
            .run_round(&scheme, &units, &g.dataset, &LogisticLoss, &w)
            .unwrap();
        let mut expect = full_gradient(&g.dataset, &LogisticLoss, &w);
        bcc_linalg::vec_ops::scale(40.0, &mut expect);
        assert!(approx_eq_slice(&out.gradient_sum, &expect, 1e-8));
        assert_eq!(out.metrics.messages_used, 10);
        assert!(out.metrics.is_consistent());
        assert!(out.metrics.total_time > 0.0);
    }

    #[test]
    fn bcc_round_uses_fewer_messages_than_uncoded() {
        let g = generate(&SyntheticConfig::small(40, 4, 2));
        let m_units = 20;
        let units = UnitMap::grouped(40, m_units);
        let n = 40;
        let mut rng = bcc_stats::rng::derive_rng(3, 0);
        let scheme = loop {
            let s = BccScheme::new(m_units, n, 5, &mut rng);
            if s.covers_all_batches() {
                break s;
            }
        };
        let mut cluster = VirtualCluster::new(profile(n), 11);
        let w = vec![0.0; 4];
        let out = cluster
            .run_round(&scheme, &units, &g.dataset, &LogisticLoss, &w)
            .unwrap();
        // 4 batches: completion needs ≥ 4 and usually ≪ 40 messages.
        assert!(out.metrics.messages_used >= 4);
        assert!(out.metrics.messages_used < 40);
        let mut expect = full_gradient(&g.dataset, &LogisticLoss, &w);
        bcc_linalg::vec_ops::scale(40.0, &mut expect);
        assert!(approx_eq_slice(&out.gradient_sum, &expect, 1e-8));
    }

    #[test]
    fn deterministic_given_seed() {
        let g = generate(&SyntheticConfig::small(20, 3, 3));
        let units = UnitMap::grouped(20, 10);
        let scheme = UncodedScheme::new(10, 5);
        let w = vec![0.1; 3];
        let run = |seed| {
            let mut c = VirtualCluster::new(profile(5), seed);
            c.run_round(&scheme, &units, &g.dataset, &LogisticLoss, &w)
                .unwrap()
                .metrics
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42).total_time, run(43).total_time);
    }

    #[test]
    fn dead_worker_stalls_uncoded() {
        let g = generate(&SyntheticConfig::small(20, 3, 4));
        let units = UnitMap::grouped(20, 10);
        let scheme = UncodedScheme::new(10, 5);
        let mut cluster = VirtualCluster::new(profile(5), 9);
        cluster.kill_workers([2]);
        let err = cluster
            .run_round(&scheme, &units, &g.dataset, &LogisticLoss, &[0.0; 3])
            .unwrap_err();
        assert!(matches!(err, ClusterError::Stalled { received: 4, .. }));
        cluster.revive_all();
        assert!(cluster
            .run_round(&scheme, &units, &g.dataset, &LogisticLoss, &[0.0; 3])
            .is_ok());
    }

    #[test]
    fn dead_worker_tolerated_by_bcc_when_covered() {
        let m_units = 4;
        let g = generate(&SyntheticConfig::small(8, 3, 5));
        let units = UnitMap::grouped(8, m_units);
        // r = 1 → 4 batches over 4 units; 8 workers, two per batch:
        // killing one worker keeps every batch covered.
        let scheme = BccScheme::from_choices(m_units, 1, vec![0, 1, 2, 3, 0, 1, 2, 3]);
        let mut cluster = VirtualCluster::new(profile(8), 13);
        cluster.kill_workers([1]);
        let out = cluster
            .run_round(&scheme, &units, &g.dataset, &LogisticLoss, &[0.0; 3])
            .unwrap();
        assert!(out.metrics.messages_used >= m_units);
    }

    #[test]
    fn rounds_resample_latencies() {
        let g = generate(&SyntheticConfig::small(20, 3, 6));
        let units = UnitMap::grouped(20, 10);
        let scheme = UncodedScheme::new(10, 5);
        let mut cluster = VirtualCluster::new(profile(5), 21);
        let w = vec![0.0; 3];
        let t1 = cluster
            .run_round(&scheme, &units, &g.dataset, &LogisticLoss, &w)
            .unwrap()
            .metrics
            .total_time;
        let t2 = cluster
            .run_round(&scheme, &units, &g.dataset, &LogisticLoss, &w)
            .unwrap()
            .metrics
            .total_time;
        assert_ne!(t1, t2, "per-round latency streams must differ");
    }

    #[test]
    fn run_rounds_matches_sequential_run_round_calls() {
        let g = generate(&SyntheticConfig::small(30, 4, 8));
        let units = UnitMap::grouped(30, 10);
        let scheme = UncodedScheme::new(10, 5);
        let w = vec![0.1; 4];

        let mut sequential = VirtualCluster::new(profile(5), 33);
        let mut expected = Vec::new();
        for _ in 0..4 {
            expected.push(
                sequential
                    .run_round(&scheme, &units, &g.dataset, &LogisticLoss, &w)
                    .unwrap(),
            );
        }

        let mut batched = VirtualCluster::new(profile(5), 33);
        let mut driver = crate::backend::FixedPointDriver::new(w);
        batched
            .run_rounds(4, &scheme, &units, &g.dataset, &LogisticLoss, &mut driver)
            .unwrap();

        assert_eq!(driver.outcomes.len(), expected.len());
        for (got, want) in driver.outcomes.iter().zip(&expected) {
            assert_eq!(got.gradient_sum, want.gradient_sum);
            assert_eq!(got.metrics, want.metrics);
        }
    }
}
