//! Cluster-level errors.

use bcc_coding::CodingError;
use std::fmt;

/// Errors from running a distributed GD round.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterError {
    /// A coding-layer failure (malformed payload, failed decode, …).
    Coding(CodingError),
    /// The round cannot complete: all live workers reported but the scheme's
    /// completion condition still does not hold (e.g. uncoded with a dead
    /// worker, or a BCC realization that left a batch unchosen).
    Stalled {
        /// Messages received before the stall was detected.
        received: usize,
        /// Human-readable cause.
        reason: String,
    },
    /// A worker thread panicked or its channel disconnected unexpectedly.
    WorkerFailed {
        /// Worker id.
        worker: usize,
    },
    /// A wire-format encode/decode failure.
    Wire(String),
    /// A networking/transport failure: socket IO, handshake, or framing
    /// errors from the TCP backend.
    Net(String),
    /// The master refused a worker's handshake because its auth token did
    /// not match the one derived from the job seed. Typed (instead of a
    /// silent drop or a generic [`Self::Net`]) so operators can tell a
    /// mis-seeded fleet from a flaky network.
    AuthRejected {
        /// The worker id the rejected connection announced.
        worker: usize,
        /// The master's stated reason.
        reason: String,
    },
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Coding(e) => write!(f, "coding error: {e}"),
            Self::Stalled { received, reason } => {
                write!(f, "round stalled after {received} messages: {reason}")
            }
            Self::WorkerFailed { worker } => write!(f, "worker {worker} failed"),
            Self::Wire(msg) => write!(f, "wire error: {msg}"),
            Self::Net(msg) => write!(f, "network error: {msg}"),
            Self::AuthRejected { worker, reason } => {
                write!(f, "worker {worker} rejected by master: {reason}")
            }
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<CodingError> for ClusterError {
    fn from(e: CodingError) -> Self {
        Self::Coding(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_from() {
        let e: ClusterError = CodingError::NotComplete { received: 2 }.into();
        assert!(e.to_string().contains("coding error"));
        assert!(ClusterError::Stalled {
            received: 5,
            reason: "dead worker".into()
        }
        .to_string()
        .contains("dead worker"));
        assert!(ClusterError::WorkerFailed { worker: 3 }
            .to_string()
            .contains('3'));
        assert!(ClusterError::Wire("truncated".into())
            .to_string()
            .contains("truncated"));
        assert!(ClusterError::Net("connection refused".into())
            .to_string()
            .contains("connection refused"));
        let rejected = ClusterError::AuthRejected {
            worker: 4,
            reason: "auth token mismatch".into(),
        };
        assert!(rejected.to_string().contains("worker 4"));
        assert!(rejected.to_string().contains("auth token mismatch"));
    }
}
