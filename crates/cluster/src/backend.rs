//! The backend trait both runtimes implement.

use crate::error::ClusterError;
use crate::metrics::RoundMetrics;
use crate::units::UnitMap;
use bcc_coding::GradientCodingScheme;
use bcc_data::Dataset;
use bcc_optim::Loss;

/// Result of one distributed-GD round.
#[derive(Debug, Clone)]
pub struct RoundOutcome {
    /// The exact gradient **sum** over all units `Σ_u g_u = Σ_j g_j`
    /// (the caller divides by the example count).
    pub gradient_sum: Vec<f64>,
    /// Timing and load metrics for the round.
    pub metrics: RoundMetrics,
}

/// A cluster backend: executes one gradient round under a coding scheme.
///
/// The scheme codes over [`UnitMap`] units; `data` holds the raw examples.
/// Implementations must (a) compute each worker's unit partial gradients,
/// (b) encode them with the scheme, (c) deliver messages to the master under
/// the backend's timing model, and (d) stop as soon as the scheme's decoder
/// reports completion.
pub trait ClusterBackend {
    /// Runs one round, returning the decoded gradient sum and metrics.
    ///
    /// # Errors
    /// [`ClusterError::Stalled`] when all live workers report without
    /// completing the scheme, plus coding/wire failures.
    fn run_round(
        &mut self,
        scheme: &dyn GradientCodingScheme,
        units: &UnitMap,
        data: &Dataset,
        loss: &dyn Loss,
        weights: &[f64],
    ) -> Result<RoundOutcome, ClusterError>;

    /// Human-readable backend name for reports.
    fn backend_name(&self) -> &'static str;
}
