//! The backend trait both runtimes implement.

use crate::error::ClusterError;
use crate::metrics::{ArrivalStamp, RoundMetrics, RoundSample};
use crate::policy::AggregatedGradient;
use crate::units::UnitMap;
use bcc_coding::{Coverage, GradientCodingScheme};
use bcc_data::Dataset;
use bcc_optim::Loss;

/// Result of one distributed-GD round.
#[derive(Debug, Clone)]
pub struct RoundOutcome {
    /// The gradient **sum** over all units `Σ_u g_u = Σ_j g_j` (the caller
    /// divides by the example count). Exact under the default
    /// [`WaitDecodable`](crate::policy::WaitDecodable) policy; an
    /// approximate policy's coverage-rescaled estimate otherwise (see
    /// [`Self::exact`]).
    pub gradient_sum: Vec<f64>,
    /// How many coding units back the gradient.
    pub coverage: Coverage,
    /// `true` when `gradient_sum` is the exact decode.
    pub exact: bool,
    /// Timing and load metrics for the round.
    pub metrics: RoundMetrics,
    /// Dataset examples the round's gradient sums over: `Some(count)` on
    /// minibatch rounds (divide `gradient_sum` by this, not the dataset
    /// size), `None` on full-partition rounds.
    pub examples_used: Option<usize>,
    /// The messages the master consumed, sorted by worker id — the
    /// per-worker arrival telemetry adaptive controllers feed on (see
    /// [`RoundEngine::arrival_stamps`](crate::engine::RoundEngine::arrival_stamps)).
    pub arrivals: Vec<ArrivalStamp>,
}

impl RoundOutcome {
    /// Assembles the outcome from a policy's aggregate and the round's
    /// metrics (full-partition round: no example subsetting).
    #[must_use]
    pub fn new(aggregate: AggregatedGradient, metrics: RoundMetrics) -> Self {
        Self {
            gradient_sum: aggregate.gradient_sum,
            coverage: aggregate.coverage,
            exact: aggregate.exact,
            metrics,
            examples_used: None,
            arrivals: Vec::new(),
        }
    }

    /// Tags the outcome with the minibatch's backing example count.
    #[must_use]
    pub fn with_examples_used(mut self, examples_used: Option<usize>) -> Self {
        self.examples_used = examples_used;
        self
    }

    /// Attaches the round's per-worker arrival telemetry.
    #[must_use]
    pub fn with_arrivals(mut self, arrivals: Vec<ArrivalStamp>) -> Self {
        self.arrivals = arrivals;
        self
    }

    /// The per-round observable sample for this outcome;
    /// `gradient_error` is the caller-computed `‖ĝ − g‖₂` of the mean
    /// gradient (`None` when not measured — exact rounds have none to
    /// measure). `staleness` starts at `0` (synchronous application); the
    /// stale-mode drivers overwrite it with the realized per-update
    /// staleness at merge time.
    #[must_use]
    pub fn sample(&self, gradient_error: Option<f64>) -> RoundSample {
        RoundSample {
            total_time: self.metrics.total_time,
            messages_used: self.metrics.messages_used,
            covered_units: self.coverage.covered_units,
            total_units: self.coverage.total_units,
            exact: self.exact,
            gradient_error,
            staleness: 0,
            arrivals: self.arrivals.clone(),
        }
    }
}

/// Supplies per-round evaluation points to [`ClusterBackend::run_rounds`]
/// and consumes each round's outcome.
///
/// Training loops are inherently sequential — round `t + 1`'s broadcast
/// weights depend on round `t`'s decoded gradient — so batching across
/// rounds has to invert control: the backend keeps its expensive per-run
/// state (worker threads, DES schedules) alive and calls back into the
/// driver between rounds.
pub trait RoundDriver {
    /// The model broadcast for `round` (0-based within this run).
    fn eval_point(&mut self, round: usize) -> Vec<f64>;

    /// Consumes the finished round's outcome (update the optimizer, record
    /// metrics, …).
    fn consume(&mut self, round: usize, outcome: RoundOutcome);
}

/// The trivial [`RoundDriver`]: broadcasts the same weights every round and
/// collects the outcomes. The fixture for measurements and tests that want
/// raw rounds without an optimizer in the loop.
#[derive(Debug, Clone, Default)]
pub struct FixedPointDriver {
    /// Weights broadcast each round.
    pub weights: Vec<f64>,
    /// Outcomes in round order.
    pub outcomes: Vec<RoundOutcome>,
}

impl FixedPointDriver {
    /// Driver broadcasting `weights` every round.
    #[must_use]
    pub fn new(weights: Vec<f64>) -> Self {
        Self {
            weights,
            outcomes: Vec::new(),
        }
    }
}

impl RoundDriver for FixedPointDriver {
    fn eval_point(&mut self, _round: usize) -> Vec<f64> {
        self.weights.clone()
    }

    fn consume(&mut self, _round: usize, outcome: RoundOutcome) {
        self.outcomes.push(outcome);
    }
}

/// A cluster backend: executes gradient rounds under a coding scheme.
///
/// The scheme codes over [`UnitMap`] units; `data` holds the raw examples.
/// Implementations must (a) compute each worker's unit partial gradients,
/// (b) encode them with the scheme, (c) deliver messages to the master under
/// the backend's timing model, and (d) stop as soon as the scheme's decoder
/// reports completion. All backends share the protocol logic in
/// [`crate::engine::RoundEngine`] and differ only in how arrivals are
/// produced.
pub trait ClusterBackend {
    /// Runs one round, returning the decoded gradient sum and metrics.
    ///
    /// # Errors
    /// [`ClusterError::Stalled`] when all live workers report without
    /// completing the scheme, plus coding/wire failures.
    fn run_round(
        &mut self,
        scheme: &dyn GradientCodingScheme,
        units: &UnitMap,
        data: &Dataset,
        loss: &dyn Loss,
        weights: &[f64],
    ) -> Result<RoundOutcome, ClusterError>;

    /// Runs `rounds` consecutive rounds, amortizing per-round setup (worker
    /// thread spawning, schedule construction) across the whole run where
    /// the backend supports it.
    ///
    /// The default implementation simply loops over [`run_round`]; backends
    /// override it to keep expensive state alive between rounds. Batching
    /// is a throughput optimization, never a protocol change: rounds use
    /// the same per-round latency streams and the same engine as
    /// `rounds` sequential [`run_round`] calls, and a mid-batch failure
    /// leaves the round counter exactly where the sequential calls would
    /// have. On deterministic backends the outcomes are bit-identical
    /// (pinned by tests). On the threaded backend arrival order is subject
    /// to OS scheduling jitter either way; additionally, a pooled worker
    /// that is mid-computation when the master finishes its round starts
    /// the next round late by the leftover compute time (sequential
    /// `run_round` calls joined every thread between rounds) — workers
    /// sleep their emulated delay *before* computing precisely to keep that
    /// window to the cancellation slice in the common case.
    ///
    /// [`run_round`]: ClusterBackend::run_round
    ///
    /// # Errors
    /// Propagates the first round failure; earlier rounds' outcomes have
    /// already been handed to `driver`.
    fn run_rounds(
        &mut self,
        rounds: usize,
        scheme: &dyn GradientCodingScheme,
        units: &UnitMap,
        data: &Dataset,
        loss: &dyn Loss,
        driver: &mut dyn RoundDriver,
    ) -> Result<(), ClusterError> {
        for round in 0..rounds {
            let weights = driver.eval_point(round);
            let outcome = self.run_round(scheme, units, data, loss, &weights)?;
            driver.consume(round, outcome);
        }
        Ok(())
    }

    /// Human-readable backend name for reports.
    fn backend_name(&self) -> &'static str;
}
