//! Minibatch contract suite.
//!
//! 1. **Sampler properties** (proptest): each round's selection is a
//!    permutation-free subset — sorted, duplicate-free, in range, exactly
//!    `units_per_round` long — and a pure function of `(seed, round)`.
//! 2. **Round semantics**: a minibatch round's decoded gradient equals the
//!    exact sum over the sampled units only, `examples_used` reports the
//!    minibatch's backing row count, and full-partition rounds keep
//!    `examples_used = None`.
//! 3. **Cross-backend byte-identity**: under a deterministic latency
//!    staircase the virtual and threaded backends agree bit-for-bit on
//!    minibatch rounds, because both derive the same per-round selection
//!    from the sampler seed.

use bcc_cluster::backend::FixedPointDriver;
use bcc_cluster::{
    BackendConfig, ClusterBackend, ClusterProfile, CommModel, Minibatch, ThreadedCluster, UnitMap,
    VirtualCluster, WorkerProfile,
};
use bcc_coding::UncodedScheme;
use bcc_data::synthetic::{generate, SyntheticConfig};
use bcc_optim::LogisticLoss;
use proptest::prelude::*;

proptest! {
    #[test]
    fn selection_is_a_deterministic_sorted_subset(
        seed in 0u64..1_000_000,
        round in 0u64..10_000,
        k in 1usize..40,
        extra in 0usize..60,
    ) {
        let num_units = k + extra;
        let mb = Minibatch::new(k, seed);
        let sel = mb.select(round, num_units);
        prop_assert_eq!(sel.len(), k);
        prop_assert!(sel.units().windows(2).all(|w| w[0] < w[1]),
            "sorted and duplicate-free");
        prop_assert!(sel.units().iter().all(|&u| u < num_units), "in range");
        prop_assert_eq!(sel, mb.select(round, num_units));
    }

    #[test]
    fn different_rounds_resample(seed in 0u64..100_000) {
        let mb = Minibatch::new(3, seed);
        let all_equal = (1..30u64).all(|r| mb.select(r, 30) == mb.select(0, 30));
        prop_assert!(!all_equal, "30 rounds of C(30,3) draws cannot all collide");
    }
}

fn staircase(n: usize) -> ClusterProfile {
    ClusterProfile {
        workers: (0..n)
            .map(|i| WorkerProfile {
                mu: 1e4,
                a: 0.01 * (i + 1) as f64,
            })
            .collect(),
        comm: CommModel {
            per_message_overhead: 0.001,
            per_unit: 0.001,
        },
    }
}

#[test]
fn minibatch_gradient_sums_selected_units_only() {
    let g = generate(&SyntheticConfig::small(40, 5, 21));
    let units = UnitMap::grouped(40, 10);
    let scheme = UncodedScheme::new(10, 10);
    let w = vec![0.07; 5];
    let mb = Minibatch::new(4, 77);

    let mut cluster =
        VirtualCluster::new(staircase(10), 5).configured(BackendConfig::new().minibatch(mb));
    let out = cluster
        .run_round(&scheme, &units, &g.dataset, &LogisticLoss, &w)
        .expect("minibatch round completes");

    // The backend ran round id 0; recompute its selection independently.
    let sel = mb.select(0, units.num_units());
    let mut expect = vec![0.0; 5];
    let mut rows = 0usize;
    for &u in sel.units() {
        let gu = units.unit_gradient(&g.dataset, &LogisticLoss, u, &w);
        bcc_linalg::vec_ops::add_assign(&mut expect, &gu);
        rows += units.unit_range(u).len();
    }
    assert_eq!(out.examples_used, Some(rows));
    assert!(out.exact, "uncoded decode is exact w.r.t. the minibatch");
    assert!(
        bcc_linalg::approx_eq_slice(&out.gradient_sum, &expect, 1e-9),
        "decoded minibatch gradient must equal the sampled units' sum"
    );
}

#[test]
fn full_rounds_report_no_examples_used() {
    let g = generate(&SyntheticConfig::small(20, 4, 22));
    let units = UnitMap::grouped(20, 10);
    let scheme = UncodedScheme::new(10, 5);
    let mut cluster = VirtualCluster::new(staircase(5), 6);
    let out = cluster
        .run_round(&scheme, &units, &g.dataset, &LogisticLoss, &[0.0; 4])
        .expect("full round completes");
    assert_eq!(out.examples_used, None);
}

#[test]
fn minibatch_rounds_replay_and_resample() {
    let g = generate(&SyntheticConfig::small(40, 4, 23));
    let units = UnitMap::grouped(40, 10);
    let scheme = UncodedScheme::new(10, 10);
    let w = vec![0.02; 4];
    let run = |seed: u64| {
        let mut c = VirtualCluster::new(staircase(10), seed)
            .configured(BackendConfig::new().minibatch(Minibatch::new(3, 9)));
        let mut driver = FixedPointDriver::new(w.clone());
        c.run_rounds(3, &scheme, &units, &g.dataset, &LogisticLoss, &mut driver)
            .expect("rounds complete");
        driver.outcomes
    };
    let (a, b) = (run(42), run(42));
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.gradient_sum, y.gradient_sum, "same seed must replay");
        assert_eq!(x.examples_used, y.examples_used);
    }
    assert!(
        a.windows(2).any(|w| w[0].gradient_sum != w[1].gradient_sum),
        "rounds must resample the unit subset"
    );
}

#[test]
fn minibatch_is_backend_invariant() {
    let g = generate(&SyntheticConfig::small(30, 4, 24));
    let units = UnitMap::grouped(30, 10);
    let scheme = UncodedScheme::new(10, 10);
    let w = vec![0.05; 4];
    let mb = Minibatch::new(5, 31);

    let mut virtual_cluster =
        VirtualCluster::new(staircase(10), 8).configured(BackendConfig::new().minibatch(mb));
    let v = virtual_cluster
        .run_round(&scheme, &units, &g.dataset, &LogisticLoss, &w)
        .expect("virtual minibatch round completes");

    let mut threaded_cluster =
        ThreadedCluster::new(staircase(10), 8, 1.0).configured(BackendConfig::new().minibatch(mb));
    let t = threaded_cluster
        .run_round(&scheme, &units, &g.dataset, &LogisticLoss, &w)
        .expect("threaded minibatch round completes");

    assert_eq!(v.metrics.messages_used, t.metrics.messages_used);
    assert_eq!(
        v.metrics.compute_time.to_bits(),
        t.metrics.compute_time.to_bits(),
        "same selected-load latency stream on both backends"
    );
    assert_eq!(v.examples_used, t.examples_used);
    for (i, (a, b)) in v.gradient_sum.iter().zip(&t.gradient_sum).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "gradient component {i}");
    }
}
