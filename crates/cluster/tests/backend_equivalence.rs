//! Cross-backend equivalence: the shared [`RoundEngine`] makes the threaded
//! and virtual backends two transports for *one* protocol, so the same
//! `(seed, scheme, ClusterProfile)` triple must produce byte-identical
//! decoded gradient sums and identical message/load accounting on both.
//!
//! Both backends draw each worker's compute time from the same
//! `(seed, round, worker)` latency stream and feed the same decoder, so the
//! only way they can diverge is arrival *order*. The virtual backend orders
//! arrivals exactly by sampled finish time; the threaded backend orders them
//! by real sleeps, which tracks the sampled times only up to OS scheduling
//! jitter. The profiles here therefore use a deterministic "staircase" of
//! per-worker shifts (gaps ≫ jitter, negligible exponential tail) so the
//! wall-clock order is unambiguous — under which the engine guarantees the
//! two backends are indistinguishable, which is exactly what this test pins.
//!
//! [`RoundEngine`]: bcc_cluster::RoundEngine

use bcc_cluster::backend::FixedPointDriver;
use bcc_cluster::{
    ClusterBackend, ClusterProfile, CommModel, RoundOutcome, ThreadedCluster, UnitMap,
    VirtualCluster, WorkerProfile,
};
use bcc_coding::{BccScheme, GradientCodingScheme, UncodedScheme};
use bcc_data::synthetic::{generate, SyntheticConfig};
use bcc_optim::LogisticLoss;

/// A staircase profile: worker `i`'s compute time is dominated by the
/// deterministic shift `shifts[i]·load`, with a microsecond-scale
/// exponential tail (`μ = 10⁴`), so arrival order is fixed by construction.
fn staircase_profile(shifts: &[f64]) -> ClusterProfile {
    ClusterProfile {
        workers: shifts
            .iter()
            .map(|&a| WorkerProfile { mu: 1e4, a })
            .collect(),
        comm: CommModel {
            per_message_overhead: 0.001,
            per_unit: 0.001,
        },
    }
}

/// Runs one round on both backends and asserts byte-identical outcomes.
fn assert_equivalent_round(
    scheme: &dyn GradientCodingScheme,
    profile: &ClusterProfile,
    units: &UnitMap,
    seed: u64,
) {
    let data = generate(&SyntheticConfig::small(units.num_examples(), 4, seed));
    let w = vec![0.05; 4];

    let mut virtual_cluster = VirtualCluster::new(profile.clone(), seed);
    let virtual_out = virtual_cluster
        .run_round(scheme, units, &data.dataset, &LogisticLoss, &w)
        .expect("virtual round completes");

    // time_scale 1.0: simulated seconds are real seconds, so the staircase
    // gaps (≥ 10 ms) dwarf scheduler jitter.
    let mut threaded_cluster = ThreadedCluster::new(profile.clone(), seed, 1.0);
    let threaded_out = threaded_cluster
        .run_round(scheme, units, &data.dataset, &LogisticLoss, &w)
        .expect("threaded round completes");

    assert_outcomes_match(&virtual_out, &threaded_out);
}

fn assert_outcomes_match(virtual_out: &RoundOutcome, threaded_out: &RoundOutcome) {
    assert_eq!(
        virtual_out.metrics.messages_used, threaded_out.metrics.messages_used,
        "both backends must consume the same number of messages"
    );
    assert_eq!(
        virtual_out.metrics.communication_units, threaded_out.metrics.communication_units,
        "identical message sets ⇒ identical communication load"
    );
    assert_eq!(
        virtual_out.metrics.compute_time.to_bits(),
        threaded_out.metrics.compute_time.to_bits(),
        "both backends sample the same per-worker latency stream"
    );
    assert_eq!(
        virtual_out.gradient_sum.len(),
        threaded_out.gradient_sum.len()
    );
    for (i, (a, b)) in virtual_out
        .gradient_sum
        .iter()
        .zip(&threaded_out.gradient_sum)
        .enumerate()
    {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "gradient component {i} differs: {a} vs {b}"
        );
    }
}

#[test]
fn uncoded_round_is_backend_invariant() {
    // 5 workers finishing in the scrambled order 1, 3, 4, 2, 0.
    let profile = staircase_profile(&[0.025, 0.005, 0.020, 0.010, 0.015]);
    let units = UnitMap::grouped(30, 10);
    let scheme = UncodedScheme::new(10, 5);
    assert_equivalent_round(&scheme, &profile, &units, 41);
}

#[test]
fn bcc_round_is_backend_invariant() {
    // 10 workers over 5 BCC batches (two choices per batch): the round
    // completes mid-stream once every batch is covered, so this exercises
    // early stopping, not just wait-for-all.
    let shifts: Vec<f64> = (0..10)
        .map(|i| 0.005 * (((i * 7) % 10) + 1) as f64)
        .collect();
    let profile = staircase_profile(&shifts);
    let units = UnitMap::grouped(40, 10);
    let scheme = BccScheme::from_choices(10, 2, vec![0, 1, 2, 3, 4, 4, 3, 2, 1, 0]);
    assert_equivalent_round(&scheme, &profile, &units, 43);
}

#[test]
fn batched_runs_stay_equivalent_across_rounds() {
    // Per-round latency streams are keyed on the global round id, so
    // equivalence must survive consecutive rounds of run_rounds too.
    let profile = staircase_profile(&[0.020, 0.005, 0.015, 0.010]);
    let units = UnitMap::grouped(24, 8);
    let scheme = UncodedScheme::new(8, 4);
    let data = generate(&SyntheticConfig::small(24, 4, 47));
    let rounds = 3;

    let mut virtual_driver = FixedPointDriver::new(vec![0.1; 4]);
    VirtualCluster::new(profile.clone(), 47)
        .run_rounds(
            rounds,
            &scheme,
            &units,
            &data.dataset,
            &LogisticLoss,
            &mut virtual_driver,
        )
        .expect("virtual run completes");

    let mut threaded_driver = FixedPointDriver::new(vec![0.1; 4]);
    ThreadedCluster::new(profile, 47, 1.0)
        .run_rounds(
            rounds,
            &scheme,
            &units,
            &data.dataset,
            &LogisticLoss,
            &mut threaded_driver,
        )
        .expect("threaded run completes");

    assert_eq!(virtual_driver.outcomes.len(), rounds);
    assert_eq!(threaded_driver.outcomes.len(), rounds);
    for (v, t) in virtual_driver
        .outcomes
        .iter()
        .zip(&threaded_driver.outcomes)
    {
        assert_outcomes_match(v, t);
    }
    // And the rounds genuinely resampled: compute times differ round-over-round.
    assert_ne!(
        virtual_driver.outcomes[0].metrics.compute_time,
        virtual_driver.outcomes[1].metrics.compute_time,
    );
}
