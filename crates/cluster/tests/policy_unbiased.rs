//! [`FastestK`]'s coverage rescale is **unbiased in expectation** on the
//! uncoded scheme: averaged over every equally-likely "fastest k" worker
//! set, the rescaled partial gradient equals the exact sum.
//!
//! Why this is exact (not just approximate): under i.i.d. compute times
//! the fastest-`k` set is a uniformly random `k`-subset of the `n` equal
//! shards, so each shard is covered with probability `k/n`, and the
//! coverage rescale `total/covered = n/k` is precisely inverse-probability
//! (Horvitz–Thompson) weighting. The test enumerates **all** `C(n, k)`
//! subsets — a finite expectation, checked to float tolerance — rather
//! than sampling, so a biased estimator cannot hide behind Monte-Carlo
//! noise.

use bcc_cluster::{AggregationPolicy, DecodePool, FastestK, RoundView};
use bcc_coding::scheme::test_support::{random_gradients, total_sum, worker_partials};
use bcc_coding::{GradientCodingScheme, UncodedScheme};
use proptest::prelude::*;

/// The FastestK estimate for one realized "fastest k" worker set.
fn estimate(scheme: &UncodedScheme, grads: &[Vec<f64>], subset: &[usize], k: usize) -> Vec<f64> {
    let mut dec = scheme.decoder();
    for &w in subset {
        let partials = worker_partials(scheme.placement(), w, grads);
        dec.receive(w, scheme.encode(w, &partials).expect("encode"))
            .expect("receive");
    }
    let view = RoundView {
        decoder: &*dec,
        live_participants: scheme.num_workers(),
        now: 0.0,
        pool: DecodePool::default(),
    };
    let agg = FastestK::new(k).finish(&view).expect("partial finish");
    assert_eq!(agg.exact, subset.len() == scheme.num_workers());
    agg.gradient_sum
}

/// Every `k`-subset of `0..n`, by bitmask (n ≤ 12 in the strategy below).
fn k_subsets(n: usize, k: usize) -> Vec<Vec<usize>> {
    (0u32..(1 << n))
        .filter(|mask| mask.count_ones() as usize == k)
        .map(|mask| (0..n).filter(|i| mask >> i & 1 == 1).collect())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fastest_k_rescale_is_unbiased_over_arrival_orders(
        n in 2usize..7,
        units_per_shard in 1usize..4,
        k_offset in 0usize..6,
        p in 1usize..5,
        seed in 0u64..1000,
    ) {
        // Equal shards: m = n · units_per_shard units over n workers, so
        // every message covers the same unit count and the coverage
        // rescale is exactly inverse-probability weighting.
        let m = n * units_per_shard;
        let k = 1 + k_offset % n;
        let scheme = UncodedScheme::new(m, n);
        let grads = random_gradients(m, p, seed);
        let exact = total_sum(&grads);

        let subsets = k_subsets(n, k);
        let mut mean = vec![0.0f64; p];
        for subset in &subsets {
            let est = estimate(&scheme, &grads, subset, k);
            prop_assert_eq!(est.len(), p);
            for (acc, x) in mean.iter_mut().zip(&est) {
                *acc += x / subsets.len() as f64;
            }
        }
        for (i, (avg, want)) in mean.iter().zip(&exact).enumerate() {
            prop_assert!(
                (avg - want).abs() <= 1e-9 * want.abs().max(1.0),
                "component {}: E[estimate] = {} but exact sum = {} (n={}, k={}, m={})",
                i, avg, want, n, k, m
            );
        }
    }

    #[test]
    fn fastest_k_single_subset_is_generally_biased_but_scaled_right(
        n in 3usize..7,
        p in 1usize..4,
        seed in 0u64..1000,
    ) {
        // Sanity bound on the estimator itself: a single subset's estimate
        // is the covered sum scaled by exactly n/k (equal shards, k = 1).
        let scheme = UncodedScheme::new(n, n);
        let grads = random_gradients(n, p, seed);
        for w in 0..n {
            let est = estimate(&scheme, &grads, &[w], 1);
            for (x, g) in est.iter().zip(&grads[w]) {
                prop_assert!((x - g * n as f64).abs() <= 1e-12 * g.abs().max(1.0) * n as f64);
            }
        }
    }
}
