//! Pin: the chunk-streamed worker compute path encodes payloads
//! bit-identical to the resident-arena path, on every builtin scheme, for
//! full and minibatch rounds, at chunk sizes both tiling and straddling
//! the units — so swapping the data path can never change a result.

use bcc_cluster::engine::RoundContext;
use bcc_cluster::{Minibatch, StreamedContext, UnitMap, WorkerBlocks};
use bcc_coding::{
    BccScheme, CyclicMdsScheme, CyclicRepetitionScheme, FractionalRepetitionScheme,
    GeneralizedBccScheme, GradientCodingScheme, RandomSubsetScheme, UncodedScheme,
    UncompressedBccScheme,
};
use bcc_data::synthetic::{generate, SyntheticConfig};
use bcc_data::ChunkedDataset;
use bcc_optim::{GradScratch, LogisticLoss};
use bcc_stats::rng::derive_rng;

fn builtin_schemes(
    m: usize,
    n: usize,
    r: usize,
) -> Vec<(&'static str, Box<dyn GradientCodingScheme>)> {
    let mut rng = derive_rng(91, 0);
    let bcc = loop {
        let s = BccScheme::new(m, n, r, &mut rng);
        if s.covers_all_batches() {
            break s;
        }
    };
    let bcc_uncompressed = loop {
        let s = UncompressedBccScheme::new(m, n, r, &mut rng);
        if s.covers_all_batches() {
            break s;
        }
    };
    let random = loop {
        let s = RandomSubsetScheme::new(m, n, r, &mut rng);
        if s.placement().covers_all() {
            break s;
        }
    };
    let generalized = GeneralizedBccScheme::new(m, &vec![r; n], &mut rng)
        .expect("generalized BCC coverage with r·n ≥ m");
    vec![
        (
            "uncoded",
            Box::new(UncodedScheme::new(m, n)) as Box<dyn GradientCodingScheme>,
        ),
        ("bcc", Box::new(bcc)),
        ("bcc_uncompressed", Box::new(bcc_uncompressed)),
        ("random", Box::new(random)),
        ("generalized_bcc", Box::new(generalized)),
        (
            "cyclic_repetition",
            Box::new(CyclicRepetitionScheme::new(n, r, &mut rng)),
        ),
        ("cyclic_mds", Box::new(CyclicMdsScheme::new(n, r))),
        (
            "fractional",
            Box::new(FractionalRepetitionScheme::new(n, r)),
        ),
    ]
}

#[test]
fn streamed_payloads_match_arena_payloads() {
    let m = 10;
    let n = 10;
    let cfg = SyntheticConfig::small(40, 4, 33);
    let g = generate(&cfg);
    let units = UnitMap::grouped(40, m);
    let w = vec![0.04; 4];
    let selections = [None, Some(Minibatch::new(4, 55).select(0, m))];

    // Chunk sizes: tiling the 4-row units exactly, and straddling them.
    for chunk_rows in [4, 7] {
        let chunked = ChunkedDataset::synthetic(cfg, chunk_rows, 3);
        for (name, scheme) in builtin_schemes(m, n, 2) {
            let packed = WorkerBlocks::build(scheme.as_ref(), &units, &g.dataset);
            let ctx = RoundContext {
                scheme: scheme.as_ref(),
                units: &units,
                data: &g.dataset,
                loss: &LogisticLoss,
                packed: &packed,
                minibatch: None,
            };
            let streamed = StreamedContext {
                scheme: scheme.as_ref(),
                units: &units,
                data: &chunked,
                loss: &LogisticLoss,
            };
            for selection in &selections {
                for worker in 0..n {
                    let mut sa = GradScratch::new();
                    let mut sb = GradScratch::new();
                    let arena = ctx
                        .compute_and_encode_selected(worker, &w, &mut sa, selection.as_ref())
                        .expect("arena path encodes");
                    let stream = streamed
                        .compute_and_encode(worker, &w, &mut sb, selection.as_ref())
                        .expect("streamed path encodes");
                    assert_eq!(
                        arena,
                        stream,
                        "{name}: worker {worker} payload must be bit-identical \
                         (chunk_rows={chunk_rows}, minibatch={})",
                        selection.is_some()
                    );
                }
            }
        }
    }
}

#[test]
fn unit_tiling_chunks_read_zero_copy() {
    let cfg = SyntheticConfig::small(40, 4, 33);
    let units = UnitMap::grouped(40, 10);
    // chunk_rows == unit size → every unit read aliases a live chunk.
    let chunked = ChunkedDataset::synthetic(cfg, 4, 10);
    for u in 0..units.num_units() {
        assert!(
            chunked.read(units.unit_range(u)).is_shared(),
            "unit {u} tiles a chunk and must read zero-copy"
        );
    }
}
