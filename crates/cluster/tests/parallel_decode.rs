//! Pin: the master's parallel decode/aggregate is **thread-count
//! invariant** — rounds folded through [`DecodePool::threads`] at 1, 2,
//! and 8 threads produce gradients bit-identical to each other (and to the
//! serial pool), on full and minibatch rounds, exact and partial decodes.
//!
//! This is the determinism contract of
//! [`bcc_linalg::parallel::par_weighted_sum`]: the reduction partitions
//! columns, never the per-element accumulation chain, so the thread budget
//! is a pure throughput knob with zero numeric surface.

use bcc_cluster::backend::FixedPointDriver;
use bcc_cluster::{
    BackendConfig, ClusterBackend, ClusterProfile, CommModel, DecodePool, FastestK, Minibatch,
    RoundOutcome, UnitMap, VirtualCluster, WorkerProfile,
};
use bcc_coding::{BccScheme, CyclicRepetitionScheme, GradientCodingScheme, UncodedScheme};
use bcc_data::synthetic::{generate, SyntheticConfig};
use bcc_optim::LogisticLoss;
use bcc_stats::rng::derive_rng;
use std::sync::Arc;

fn staircase(n: usize) -> ClusterProfile {
    ClusterProfile {
        workers: (0..n)
            .map(|i| WorkerProfile {
                mu: 1e4,
                a: 0.01 * (i + 1) as f64,
            })
            .collect(),
        comm: CommModel {
            per_message_overhead: 0.001,
            per_unit: 0.001,
        },
    }
}

/// Schemes spanning the three decode routes: uncoded (identity terms),
/// BCC (weighted terms), cyclic repetition (coefficient terms).
fn schemes() -> Vec<Box<dyn GradientCodingScheme>> {
    let (m, n, r) = (10usize, 10usize, 2usize);
    let mut rng = derive_rng(91, 0);
    let bcc = loop {
        let s = BccScheme::new(m, n, r, &mut rng);
        if s.covers_all_batches() {
            break s;
        }
    };
    vec![
        Box::new(UncodedScheme::new(m, n)),
        Box::new(bcc),
        Box::new(CyclicRepetitionScheme::new(n, r, &mut rng)),
    ]
}

fn run_rounds(
    scheme: &dyn GradientCodingScheme,
    pool: DecodePool,
    minibatch: Option<Minibatch>,
    fastest_k: Option<usize>,
) -> Vec<RoundOutcome> {
    let units = UnitMap::grouped(40, 10);
    let data = generate(&SyntheticConfig::small(40, 5, 29));
    let mut config = BackendConfig::new().decode_pool(pool);
    if let Some(mb) = minibatch {
        config = config.minibatch(mb);
    }
    if let Some(k) = fastest_k {
        config = config.aggregation_policy(Arc::new(FastestK::new(k)));
    }
    let mut cluster = VirtualCluster::new(staircase(10), 29).configured(config);
    let mut driver = FixedPointDriver::new(vec![0.05; 5]);
    cluster
        .run_rounds(3, scheme, &units, &data.dataset, &LogisticLoss, &mut driver)
        .expect("rounds complete");
    driver.outcomes
}

fn assert_identical(a: &[RoundOutcome], b: &[RoundOutcome], tag: &str) {
    assert_eq!(a.len(), b.len(), "{tag}: round counts");
    for (round, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.metrics, y.metrics, "{tag}/round {round}: metrics");
        assert_eq!(x.exact, y.exact, "{tag}/round {round}: exactness");
        assert_eq!(
            x.examples_used, y.examples_used,
            "{tag}/round {round}: examples_used"
        );
        for (i, (g, h)) in x.gradient_sum.iter().zip(&y.gradient_sum).enumerate() {
            assert_eq!(
                g.to_bits(),
                h.to_bits(),
                "{tag}/round {round}: gradient component {i} ({g} vs {h})"
            );
        }
    }
}

#[test]
fn exact_decode_is_thread_count_invariant() {
    for scheme in schemes() {
        let baseline = run_rounds(scheme.as_ref(), DecodePool::serial(), None, None);
        for threads in [1, 2, 8] {
            let parallel = run_rounds(scheme.as_ref(), DecodePool::threads(threads), None, None);
            assert_identical(
                &baseline,
                &parallel,
                &format!("{}/threads {threads}", scheme.name()),
            );
        }
    }
}

#[test]
fn minibatch_decode_is_thread_count_invariant() {
    for scheme in schemes() {
        let mb = || Some(Minibatch::new(4, 77));
        let baseline = run_rounds(scheme.as_ref(), DecodePool::serial(), mb(), None);
        assert!(
            baseline.iter().all(|o| o.examples_used.is_some()),
            "minibatch rounds report their sampled example count"
        );
        for threads in [1, 2, 8] {
            let parallel = run_rounds(scheme.as_ref(), DecodePool::threads(threads), mb(), None);
            assert_identical(
                &baseline,
                &parallel,
                &format!("{}/minibatch/threads {threads}", scheme.name()),
            );
        }
    }
}

#[test]
fn partial_decode_is_thread_count_invariant() {
    // FastestK(6) cuts before exactness on the uncoded shards, forcing the
    // approximate `decode_partial` route through the pool.
    let scheme = UncodedScheme::new(10, 10);
    let baseline = run_rounds(&scheme, DecodePool::serial(), None, Some(6));
    assert!(
        baseline.iter().all(|o| !o.exact),
        "6 of 10 shards cannot decode exactly"
    );
    for threads in [1, 2, 8] {
        let parallel = run_rounds(&scheme, DecodePool::threads(threads), None, Some(6));
        assert_identical(&baseline, &parallel, &format!("partial/threads {threads}"));
    }
}
