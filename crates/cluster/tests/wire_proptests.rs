//! Property tests for the wire codec: arbitrary envelopes roundtrip
//! bit-exactly, and arbitrary byte garbage never panics the decoder.

use bcc_cluster::message::Envelope;
use bcc_cluster::wire;
use bcc_coding::Payload;
use bcc_linalg::Complex;
use proptest::prelude::*;

fn vec_f64(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(
        prop_oneof![
            any::<f64>().prop_filter("finite", |v| v.is_finite()),
            Just(0.0),
            Just(-0.0),
            Just(f64::MIN_POSITIVE),
            Just(f64::MAX),
        ],
        0..max_len,
    )
}

fn payload_strategy() -> impl Strategy<Value = Payload> {
    prop_oneof![
        (any::<u16>(), vec_f64(32)).prop_map(|(unit, vector)| Payload::Sum {
            unit: unit as usize,
            vector
        }),
        vec_f64(32).prop_map(|vector| Payload::Linear { vector }),
        prop::collection::vec((any::<f32>(), any::<f32>()), 0..16).prop_map(|pairs| {
            Payload::LinearComplex {
                vector: pairs
                    .into_iter()
                    .map(|(re, im)| Complex::new(f64::from(re), f64::from(im)))
                    .collect(),
            }
        }),
        prop::collection::vec((any::<u16>(), vec_f64(8)), 0..8).prop_map(|entries| {
            Payload::PerExample {
                entries: entries.into_iter().map(|(j, g)| (j as usize, g)).collect(),
            }
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn roundtrip_any_envelope(
        iteration in any::<u32>(),
        worker in any::<u16>(),
        compute_seconds in 0.0..1e6f64,
        payload in payload_strategy(),
    ) {
        let env = Envelope {
            iteration: u64::from(iteration),
            worker: worker as usize,
            compute_seconds,
            payload,
        };
        let bytes = wire::encode(&env);
        let back = wire::decode(bytes).expect("own encoding must decode");
        prop_assert_eq!(back, env);
    }

    #[test]
    fn garbage_bytes_never_panic(garbage in prop::collection::vec(any::<u8>(), 0..256)) {
        // Decoding arbitrary bytes may fail, but must never panic or hang.
        let _ = wire::decode(bytes::Bytes::from(garbage));
    }

    #[test]
    fn truncations_of_valid_messages_fail_cleanly(
        payload in payload_strategy(),
        cut_fraction in 0.0..1.0f64,
    ) {
        let env = Envelope {
            iteration: 1,
            worker: 2,
            compute_seconds: 3.0,
            payload,
        };
        let full = wire::encode(&env);
        let cut = ((full.len() as f64) * cut_fraction) as usize;
        prop_assume!(cut < full.len());
        prop_assert!(wire::decode(full.slice(0..cut)).is_err());
    }

    #[test]
    fn corrupting_the_kind_byte_is_rejected_or_structural(
        vector in vec_f64(16),
        bad_kind in 4u8..255,
    ) {
        let env = Envelope {
            iteration: 0,
            worker: 0,
            compute_seconds: 0.0,
            payload: Payload::Linear { vector },
        };
        let mut bytes = wire::encode(&env).to_vec();
        bytes[5] = bad_kind; // kind byte position per the format doc
        prop_assert!(wire::decode(bytes::Bytes::from(bytes)).is_err());
    }
}
