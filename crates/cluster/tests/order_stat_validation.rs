//! Cross-validation of the DES cluster against closed-form order
//! statistics: with a free link, the uncoded round time is the *maximum* of
//! `n` i.i.d. shift-exponential worker latencies, whose expectation is
//! `a·r + H_n·r/μ`.

use bcc_cluster::{ClusterBackend, ClusterProfile, CommModel, UnitMap, VirtualCluster};
use bcc_coding::UncodedScheme;
use bcc_data::synthetic::{generate, SyntheticConfig};
use bcc_optim::LogisticLoss;
use bcc_stats::order::expected_kth_shift_exp;
use bcc_stats::Summary;

#[test]
fn uncoded_round_time_matches_expected_maximum() {
    let n = 20;
    let (mu, a) = (2.0, 0.5);
    let profile = ClusterProfile::homogeneous(
        n,
        mu,
        a,
        CommModel {
            per_message_overhead: 0.0,
            per_unit: 0.0,
        },
    );
    // m = n units → every worker holds exactly one unit (r = 1).
    let g = generate(&SyntheticConfig::small(n, 3, 1));
    let units = UnitMap::identity(n);
    let scheme = UncodedScheme::new(n, n);
    let w = vec![0.0; 3];

    let expect = expected_kth_shift_exp(n, n, mu, a, 1);
    let mut s = Summary::new();
    for seed in 0..400 {
        let mut cluster = VirtualCluster::new(profile.clone(), seed);
        let out = cluster
            .run_round(&scheme, &units, &g.dataset, &LogisticLoss, &w)
            .unwrap();
        s.push(out.metrics.total_time);
    }
    assert!(
        (s.mean() - expect).abs() < 4.0 * s.std_err().max(0.01),
        "measured mean round time {} vs closed form {expect}",
        s.mean()
    );
}

#[test]
fn waiting_for_fewer_workers_tracks_lower_order_statistics() {
    // A BCC-like scheme that stops after the k fastest workers should pay
    // roughly the k-th order statistic. Use fractional repetition with one
    // replica group per worker pair: completion needs one of each pair.
    // Simpler and exact: compare the uncoded time against the k-th order
    // statistic bounds — the max must dominate every k < n statistic.
    let n = 16;
    let (mu, a) = (1.0, 0.1);
    let t_max = expected_kth_shift_exp(n, n, mu, a, 1);
    for k in [1, 4, 8, 12] {
        let t_k = expected_kth_shift_exp(n, k, mu, a, 1);
        assert!(t_k < t_max, "k={k}: {t_k} must be below the max {t_max}");
    }
}
