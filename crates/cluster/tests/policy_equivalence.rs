//! Aggregation-policy equivalence suite.
//!
//! Two contracts:
//!
//! 1. **Legacy equivalence.** The default engine path *is*
//!    [`WaitDecodable`]: a backend with no policy installed and one with
//!    `WaitDecodable` installed explicitly must produce byte-identical
//!    gradients, metrics, and coverage on **every** builtin scheme — the
//!    guarantee that promoting the stopping rule to a trait changed
//!    nothing (the checked-in `BENCH_round_engine.json` replay in
//!    `crates/bench/tests/perf_baseline_pin.rs` pins the same property
//!    end-to-end against the pre-refactor artifact).
//! 2. **Cross-backend equivalence per policy.** Under a deterministic
//!    staircase of worker latencies (arrival order fixed by construction,
//!    as in `backend_equivalence.rs`), the threaded and virtual backends
//!    must agree byte-for-byte under *every* builtin policy, not just the
//!    exact one.
//! 3. **Parallel-decode equivalence.** The master's parallel
//!    decode/aggregate fold ([`bcc_cluster::DecodePool`]) must replay the
//!    serial fold bit-for-bit on every builtin scheme under every builtin
//!    policy — exact decodes and partial (approximate) readouts alike.

use bcc_cluster::backend::FixedPointDriver;
use bcc_cluster::{
    AggregationPolicy, BackendConfig, BestEffortAll, ClusterBackend, ClusterProfile, CommModel,
    Deadline, DecodePool, EventLog, FastestK, RoundEvent, RoundOutcome, ThreadedCluster, UnitMap,
    VirtualCluster, WaitDecodable, WorkerProfile,
};
use bcc_coding::{
    BccScheme, CyclicMdsScheme, CyclicRepetitionScheme, FractionalRepetitionScheme,
    GradientCodingScheme, RandomSubsetScheme, UncodedScheme, UncompressedBccScheme,
};
use bcc_data::synthetic::{generate, SyntheticConfig};
use bcc_optim::LogisticLoss;
use bcc_stats::rng::derive_rng;
use std::sync::Arc;

/// Every builtin scheme at `m = n = 10`, `r = 2` (coverage-retried for the
/// randomized ones).
fn builtin_schemes() -> Vec<Box<dyn GradientCodingScheme>> {
    let (m, n, r) = (10usize, 10usize, 2usize);
    let mut rng = derive_rng(91, 0);
    let bcc = loop {
        let s = BccScheme::new(m, n, r, &mut rng);
        if s.covers_all_batches() {
            break s;
        }
    };
    let bcc_uncompressed = loop {
        let s = UncompressedBccScheme::new(m, n, r, &mut rng);
        if s.covers_all_batches() {
            break s;
        }
    };
    let random = loop {
        let s = RandomSubsetScheme::new(m, n, r, &mut rng);
        if s.placement().covers_all() {
            break s;
        }
    };
    vec![
        Box::new(UncodedScheme::new(m, n)),
        Box::new(bcc),
        Box::new(bcc_uncompressed),
        Box::new(random),
        Box::new(CyclicRepetitionScheme::new(n, r, &mut rng)),
        Box::new(CyclicMdsScheme::new(n, r)),
        Box::new(FractionalRepetitionScheme::new(n, r)),
    ]
}

fn assert_outcomes_identical(a: &RoundOutcome, b: &RoundOutcome, tag: &str) {
    assert_eq!(a.metrics, b.metrics, "{tag}: metrics diverged");
    assert_eq!(a.coverage, b.coverage, "{tag}: coverage diverged");
    assert_eq!(a.exact, b.exact, "{tag}: exactness diverged");
    assert_eq!(
        a.gradient_sum.len(),
        b.gradient_sum.len(),
        "{tag}: gradient dims"
    );
    for (i, (x, y)) in a.gradient_sum.iter().zip(&b.gradient_sum).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{tag}: gradient component {i} differs ({x} vs {y})"
        );
    }
}

#[test]
fn explicit_wait_decodable_replays_the_default_path_on_every_builtin_scheme() {
    let profile = ClusterProfile::ec2_like(10);
    let units = UnitMap::grouped(40, 10);
    let data = generate(&SyntheticConfig::small(40, 5, 17));
    let w = vec![0.05; 5];
    for scheme in builtin_schemes() {
        let run = |policy: Option<Arc<dyn AggregationPolicy>>| {
            let mut cluster = VirtualCluster::new(profile.clone(), 23);
            if let Some(p) = policy {
                cluster = cluster.configured(BackendConfig::new().aggregation_policy(p));
            }
            let mut driver = FixedPointDriver::new(w.clone());
            cluster
                .run_rounds(
                    3,
                    scheme.as_ref(),
                    &units,
                    &data.dataset,
                    &LogisticLoss,
                    &mut driver,
                )
                .expect("rounds complete");
            driver.outcomes
        };
        let default_path = run(None);
        let explicit = run(Some(Arc::new(WaitDecodable)));
        assert_eq!(default_path.len(), explicit.len());
        for (round, (a, b)) in default_path.iter().zip(&explicit).enumerate() {
            assert_outcomes_identical(a, b, &format!("{}/round {round}", scheme.name()));
            assert!(
                a.exact,
                "{}: exact policy must decode exactly",
                scheme.name()
            );
            assert!(
                a.coverage.is_full(),
                "{}: exact decode covers every unit",
                scheme.name()
            );
        }
    }
}

/// A staircase profile: arrival order fixed by deterministic shifts
/// (gaps ≫ OS jitter, microsecond exponential tail).
fn staircase_profile(shifts: &[f64]) -> ClusterProfile {
    ClusterProfile {
        workers: shifts
            .iter()
            .map(|&a| WorkerProfile { mu: 1e4, a })
            .collect(),
        comm: CommModel {
            per_message_overhead: 0.001,
            per_unit: 0.001,
        },
    }
}

fn cross_backend_case(
    scheme: &dyn GradientCodingScheme,
    units: &UnitMap,
    policy: Arc<dyn AggregationPolicy>,
    seed: u64,
) -> (RoundOutcome, RoundOutcome) {
    let shifts: Vec<f64> = (0..scheme.num_workers())
        .map(|i| 0.005 * (((i * 7) % scheme.num_workers()) + 1) as f64)
        .collect();
    cross_backend_case_with(scheme, units, policy, seed, &shifts)
}

fn cross_backend_case_with(
    scheme: &dyn GradientCodingScheme,
    units: &UnitMap,
    policy: Arc<dyn AggregationPolicy>,
    seed: u64,
    shifts: &[f64],
) -> (RoundOutcome, RoundOutcome) {
    let profile = staircase_profile(shifts);
    let data = generate(&SyntheticConfig::small(units.num_examples(), 4, seed));
    let w = vec![0.05; 4];

    let mut virtual_cluster = VirtualCluster::new(profile.clone(), seed)
        .configured(BackendConfig::new().aggregation_policy(Arc::clone(&policy)));
    let virtual_out = virtual_cluster
        .run_round(scheme, units, &data.dataset, &LogisticLoss, &w)
        .expect("virtual round completes");

    let mut threaded_cluster = ThreadedCluster::new(profile, seed, 1.0)
        .configured(BackendConfig::new().aggregation_policy(policy));
    let threaded_out = threaded_cluster
        .run_round(scheme, units, &data.dataset, &LogisticLoss, &w)
        .expect("threaded round completes");
    (virtual_out, threaded_out)
}

/// Cross-backend agreement on everything except the clock fields (the
/// threaded backend's times are wall-clock; message sets and gradients
/// must still match bit-for-bit).
fn assert_backend_agreement(v: &RoundOutcome, t: &RoundOutcome, tag: &str) {
    assert_eq!(v.metrics.messages_used, t.metrics.messages_used, "{tag}");
    assert_eq!(
        v.metrics.communication_units, t.metrics.communication_units,
        "{tag}"
    );
    assert_eq!(
        v.metrics.compute_time.to_bits(),
        t.metrics.compute_time.to_bits(),
        "{tag}: same latency stream"
    );
    assert_eq!(v.coverage, t.coverage, "{tag}: coverage diverged");
    assert_eq!(v.exact, t.exact, "{tag}: exactness diverged");
    for (i, (a, b)) in v.gradient_sum.iter().zip(&t.gradient_sum).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "{tag}: gradient component {i}");
    }
}

#[test]
fn parallel_decode_replays_the_serial_fold_on_every_scheme_and_policy() {
    // A coarse staircase fixes the arrival order, so every policy's cut
    // point — and with it the decoded/partially-decoded unit set — is
    // identical between the two pools; the only degree of freedom left is
    // the fold itself.
    let shifts: Vec<f64> = (0..10).map(|i| 0.04 * (i + 1) as f64).collect();
    let profile = staircase_profile(&shifts);
    let units = UnitMap::grouped(40, 10);
    let data = generate(&SyntheticConfig::small(40, 5, 83));
    let w = vec![0.05; 5];
    let policies: Vec<(&str, Arc<dyn AggregationPolicy>)> = vec![
        ("wait-decodable", Arc::new(WaitDecodable)),
        ("fastest-k", Arc::new(FastestK::new(6))),
        ("deadline", Arc::new(Deadline::new(0.19))),
        ("best-effort-all", Arc::new(BestEffortAll)),
    ];
    for scheme in builtin_schemes() {
        for (policy_name, policy) in &policies {
            // Some combinations legitimately cannot finish (e.g. a
            // fastest-k cut below cyclic-MDS's solve threshold): then both
            // pools must fail identically, never just one of them.
            let run = |pool: DecodePool| {
                let mut cluster = VirtualCluster::new(profile.clone(), 83).configured(
                    BackendConfig::new()
                        .aggregation_policy(Arc::clone(policy))
                        .decode_pool(pool),
                );
                let mut driver = FixedPointDriver::new(w.clone());
                cluster
                    .run_rounds(
                        3,
                        scheme.as_ref(),
                        &units,
                        &data.dataset,
                        &LogisticLoss,
                        &mut driver,
                    )
                    .map(|()| driver.outcomes)
            };
            let tag = format!("{}/{policy_name}", scheme.name());
            match (run(DecodePool::serial()), run(DecodePool::threads(8))) {
                (Ok(serial), Ok(parallel)) => {
                    assert_eq!(serial.len(), parallel.len(), "{tag}");
                    for (round, (s, p)) in serial.iter().zip(&parallel).enumerate() {
                        assert_outcomes_identical(s, p, &format!("{tag}/round {round}"));
                    }
                }
                (Err(serial), Err(parallel)) => {
                    assert_eq!(
                        serial.to_string(),
                        parallel.to_string(),
                        "{tag}: pools must fail identically"
                    );
                }
                (serial, parallel) => panic!(
                    "{tag}: pools diverged — serial {:?} vs parallel {:?}",
                    serial.map(|o| o.len()),
                    parallel.map(|o| o.len())
                ),
            }
        }
    }
}

#[test]
fn fastest_k_is_backend_invariant_on_uncoded() {
    let units = UnitMap::grouped(30, 10);
    let scheme = UncodedScheme::new(10, 10);
    let (v, t) = cross_backend_case(&scheme, &units, Arc::new(FastestK::new(6)), 53);
    assert_backend_agreement(&v, &t, "fastest-k/uncoded");
    assert_eq!(v.metrics.messages_used, 6);
    assert!(!v.exact, "6 of 10 shards cannot decode exactly");
    assert_eq!(v.coverage.covered_units, 6, "6 of the 10 unit shards");
    assert_eq!(v.coverage.total_units, 10);
}

#[test]
fn best_effort_all_is_backend_invariant_on_bcc() {
    let units = UnitMap::grouped(40, 10);
    let scheme = BccScheme::from_choices(10, 2, vec![0, 1, 2, 3, 4, 4, 3, 2, 1, 0]);
    let (v, t) = cross_backend_case(&scheme, &units, Arc::new(BestEffortAll), 59);
    assert_backend_agreement(&v, &t, "best-effort-all/bcc");
    // Drained everyone, and full coverage decodes exactly.
    assert_eq!(v.metrics.messages_used, 10);
    assert!(v.exact);
}

#[test]
fn deadline_is_backend_invariant_on_uncoded() {
    // A coarse staircase (40 ms steps): the threaded backend's delivery
    // clocks differ from the virtual ones only by scheduler noise well
    // under a step, and the deadline sits mid-step, so both backends cut
    // at the same arrival.
    let shifts: Vec<f64> = (0..10).map(|i| 0.04 * (i + 1) as f64).collect();
    let units = UnitMap::grouped(30, 10);
    let scheme = UncodedScheme::new(10, 10);
    let (v, t) =
        cross_backend_case_with(&scheme, &units, Arc::new(Deadline::new(0.19)), 61, &shifts);
    assert_backend_agreement(&v, &t, "deadline/uncoded");
    assert!(!v.exact);
    assert_eq!(
        v.metrics.messages_used, 5,
        "first delivery at/after 0.19 s is the fifth (0.04 s staircase)"
    );
}

#[test]
fn best_effort_all_completes_where_exact_policies_stall() {
    // A dead worker under uncoded: the exact policy stalls, the drain-all
    // policy returns the surviving coverage, rescaled.
    let units = UnitMap::grouped(30, 10);
    let scheme = UncodedScheme::new(10, 10);
    let profile = ClusterProfile::ec2_like(10);
    let data = generate(&SyntheticConfig::small(30, 4, 67));

    let mut exact = VirtualCluster::new(profile.clone(), 67);
    exact.kill_workers([4]);
    let err = exact
        .run_round(&scheme, &units, &data.dataset, &LogisticLoss, &[0.0; 4])
        .unwrap_err();
    assert!(matches!(err, bcc_cluster::ClusterError::Stalled { .. }));

    let mut tolerant = VirtualCluster::new(profile, 67)
        .configured(BackendConfig::new().aggregation_policy(Arc::new(BestEffortAll)));
    tolerant.kill_workers([4]);
    let out = tolerant
        .run_round(&scheme, &units, &data.dataset, &LogisticLoss, &[0.0; 4])
        .expect("best-effort completes on exhaustion");
    assert_eq!(out.metrics.messages_used, 9);
    assert!(!out.exact);
    assert_eq!(out.coverage.covered_units, 9, "9 of the 10 unit shards");
}

#[test]
fn observer_sees_the_round_event_stream() {
    let units = UnitMap::grouped(30, 10);
    let scheme = UncodedScheme::new(10, 10);
    let profile = ClusterProfile::ec2_like(10);
    let data = generate(&SyntheticConfig::small(30, 4, 71));
    let log = EventLog::shared();

    let mut observed = VirtualCluster::new(profile.clone(), 71)
        .configured(BackendConfig::new().observer(log.clone() as bcc_cluster::SharedObserver));
    let observed_out = observed
        .run_round(&scheme, &units, &data.dataset, &LogisticLoss, &[0.0; 4])
        .unwrap();

    // Observation must not perturb the protocol.
    let mut unobserved = VirtualCluster::new(profile, 71);
    let unobserved_out = unobserved
        .run_round(&scheme, &units, &data.dataset, &LogisticLoss, &[0.0; 4])
        .unwrap();
    assert_outcomes_identical(&observed_out, &unobserved_out, "observed vs unobserved");

    let log = log.lock().unwrap();
    // Broadcast, 10 arrivals, completion.
    assert_eq!(log.events.len(), 12, "events: {:?}", log.events);
    assert!(matches!(
        log.events[0],
        RoundEvent::Broadcast {
            round: 0,
            participants: 10
        }
    ));
    let mut last_messages = 0;
    let mut last_at = 0.0;
    for event in &log.events[1..11] {
        let RoundEvent::Arrival {
            at,
            messages,
            coverage,
            ..
        } = event
        else {
            panic!("expected arrival, got {event:?}");
        };
        assert!(*messages == last_messages + 1, "messages monotone");
        assert!(*at >= last_at, "delivery clocks nondecreasing");
        assert!(coverage.covered_units <= coverage.total_units);
        last_messages = *messages;
        last_at = *at;
    }
    let RoundEvent::Complete {
        messages,
        coverage,
        at,
        ..
    } = &log.events[11]
    else {
        panic!("expected completion, got {:?}", log.events[11]);
    };
    assert_eq!(*messages, 10);
    assert!(coverage.is_full());
    assert_eq!(at.to_bits(), observed_out.metrics.total_time.to_bits());
}

#[test]
fn stall_emits_a_stalled_event() {
    let units = UnitMap::grouped(30, 10);
    let scheme = UncodedScheme::new(10, 10);
    let log = EventLog::shared();
    let mut cluster = VirtualCluster::new(ClusterProfile::ec2_like(10), 73)
        .configured(BackendConfig::new().observer(log.clone() as bcc_cluster::SharedObserver));
    cluster.kill_workers([2]);
    let data = generate(&SyntheticConfig::small(30, 4, 73));
    let _ = cluster
        .run_round(&scheme, &units, &data.dataset, &LogisticLoss, &[0.0; 4])
        .unwrap_err();
    let log = log.lock().unwrap();
    assert!(
        matches!(
            log.events.last(),
            Some(RoundEvent::Stalled { received: 9, .. })
        ),
        "{:?}",
        log.events.last()
    );
}
