//! Straggler-model integration: the pluggable sampler must not change
//! *anything* for the baseline model, and must keep the cross-backend
//! determinism contract for the stateful zoo members.
//!
//! * Installing [`ShiftedExpModel`] explicitly is byte-identical to the
//!   default path (which is itself the pre-trait hardcoded behaviour —
//!   the unit pin lives in `src/straggler.rs`).
//! * Under the Markov time-correlated model, the threaded and virtual
//!   backends still produce byte-identical gradients and identical
//!   message accounting: the chain replays from its keyed stream, so
//!   free-running worker threads and the sorted virtual schedule cannot
//!   diverge.
//! * Every zoo member runs rounds that are deterministic in the seed and
//!   visibly reshape round-time behaviour.

use bcc_cluster::{
    BackendConfig, BimodalModel, ClusterBackend, ClusterProfile, CommModel, MarkovModel,
    ParetoModel, ShiftedExpModel, StragglerModel, ThreadedCluster, UnitMap, VirtualCluster,
    WeibullModel,
};
use bcc_coding::UncodedScheme;
use bcc_data::synthetic::{generate, SyntheticConfig};
use bcc_optim::LogisticLoss;
use std::sync::Arc;

fn profile(n: usize) -> ClusterProfile {
    ClusterProfile::homogeneous(
        n,
        2.0,
        0.01,
        CommModel {
            per_message_overhead: 0.001,
            per_unit: 0.01,
        },
    )
}

#[test]
fn explicit_shifted_exp_model_is_byte_identical_to_the_default_path() {
    let g = generate(&SyntheticConfig::small(30, 4, 2));
    let units = UnitMap::grouped(30, 10);
    let scheme = UncodedScheme::new(10, 5);
    let w = vec![0.07; 4];

    let mut default_cluster = VirtualCluster::new(profile(5), 17);
    let mut explicit_cluster = VirtualCluster::new(profile(5), 17).configured(
        BackendConfig::new().straggler_model(Arc::new(ShiftedExpModel::from_profile(&profile(5)))),
    );

    for _ in 0..3 {
        let a = default_cluster
            .run_round(&scheme, &units, &g.dataset, &LogisticLoss, &w)
            .unwrap();
        let b = explicit_cluster
            .run_round(&scheme, &units, &g.dataset, &LogisticLoss, &w)
            .unwrap();
        assert_eq!(a.gradient_sum, b.gradient_sum);
        assert_eq!(a.metrics, b.metrics, "trait path must not perturb metrics");
    }
}

#[test]
fn markov_model_is_backend_invariant_for_uncoded() {
    // Uncoded waits for every worker, so the outcome is insensitive to
    // arrival-order jitter in the threaded backend — what must agree is
    // the sampled latency stream (compute_time = max over workers) and
    // the decoded gradient, both byte-level.
    let n = 5;
    let g = generate(&SyntheticConfig::small(20, 3, 6));
    let units = UnitMap::grouped(20, 10);
    let scheme = UncodedScheme::new(10, n);
    let w = vec![0.05; 3];
    let model =
        || -> Arc<dyn StragglerModel> { Arc::new(MarkovModel::new(100.0, 0.02, 0.4, 0.3, 5.0)) };

    let mut virtual_cluster = VirtualCluster::new(profile(n), 23)
        .configured(BackendConfig::new().straggler_model(model()));
    let mut threaded_cluster = ThreadedCluster::new(profile(n), 23, 0.02)
        .configured(BackendConfig::new().straggler_model(model()));

    // Several rounds so the chains actually transition.
    for round in 0..3 {
        let v = virtual_cluster
            .run_round(&scheme, &units, &g.dataset, &LogisticLoss, &w)
            .unwrap();
        let t = threaded_cluster
            .run_round(&scheme, &units, &g.dataset, &LogisticLoss, &w)
            .unwrap();
        assert_eq!(v.metrics.messages_used, t.metrics.messages_used);
        assert_eq!(
            v.metrics.compute_time.to_bits(),
            t.metrics.compute_time.to_bits(),
            "round {round}: both backends must replay the same chain + draws"
        );
        assert_eq!(v.gradient_sum, t.gradient_sum, "round {round}");
    }
}

#[test]
fn zoo_members_run_deterministically_on_the_virtual_backend() {
    let n = 8;
    let g = generate(&SyntheticConfig::small(16, 3, 9));
    let units = UnitMap::grouped(16, 8);
    let scheme = UncodedScheme::new(8, n);
    let w = vec![0.0; 3];
    let models: Vec<(&str, Arc<dyn StragglerModel>)> = vec![
        ("pareto", Arc::new(ParetoModel::new(0.01, 2.0))),
        ("weibull", Arc::new(WeibullModel::new(0.01, 0.7, 0.005))),
        (
            "bimodal",
            Arc::new(BimodalModel::homogeneous(n, 2.0, 0.01, 2, 0.5, 10.0)),
        ),
        (
            "markov",
            Arc::new(MarkovModel::new(2.0, 0.01, 0.3, 0.4, 10.0)),
        ),
    ];
    for (name, model) in models {
        let run = |seed: u64| {
            let mut cluster = VirtualCluster::new(profile(n), seed)
                .configured(BackendConfig::new().straggler_model(Arc::clone(&model)));
            cluster
                .run_round(&scheme, &units, &g.dataset, &LogisticLoss, &w)
                .unwrap()
                .metrics
        };
        assert_eq!(run(42), run(42), "{name}: same seed must replay");
        assert_ne!(
            run(42).total_time,
            run(43).total_time,
            "{name}: different seeds must differ"
        );
    }
}

#[test]
fn bimodal_slowdown_stretches_the_round() {
    // Same base profile, same seed: adding a certain slowdown on one
    // always-slow worker must strictly lengthen the uncoded round (which
    // waits for everyone).
    let n = 4;
    let g = generate(&SyntheticConfig::small(8, 3, 11));
    let units = UnitMap::grouped(8, 4);
    let scheme = UncodedScheme::new(4, n);
    let w = vec![0.0; 3];
    let run = |model: Arc<dyn StragglerModel>| {
        let mut cluster = VirtualCluster::new(profile(n), 31)
            .configured(BackendConfig::new().straggler_model(model));
        cluster
            .run_round(&scheme, &units, &g.dataset, &LogisticLoss, &w)
            .unwrap()
            .metrics
            .total_time
    };
    let baseline = run(Arc::new(ShiftedExpModel::homogeneous(n, 2.0, 0.01)));
    let slowed = run(Arc::new(BimodalModel::homogeneous(
        n, 2.0, 0.01, 1, 1.0, 50.0,
    )));
    assert!(
        slowed > baseline,
        "certain 50x straggler must lengthen the round ({slowed} vs {baseline})"
    );
}
