//! Property-based tests for the linear-algebra substrate.

use bcc_linalg::{qr, solve, vec_ops, Matrix};
use proptest::prelude::*;

/// Strategy: a vector of finite, moderate floats.
fn vec_f64(len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e3..1e3f64, len)
}

/// Strategy: a well-conditioned (diagonally dominant) square matrix.
fn dd_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-1.0..1.0f64, n * n).prop_map(move |data| {
        let mut m = Matrix::from_vec(n, n, data).unwrap();
        for i in 0..n {
            let rowsum: f64 = m.row(i).iter().map(|v| v.abs()).sum();
            m[(i, i)] += rowsum + 1.0;
        }
        m
    })
}

proptest! {
    #[test]
    fn dot_commutes(x in vec_f64(32), y in vec_f64(32)) {
        let a = vec_ops::dot(&x, &y);
        let b = vec_ops::dot(&y, &x);
        prop_assert!((a - b).abs() <= 1e-6 * (1.0 + a.abs()));
    }

    #[test]
    fn dot_linear_in_first_arg(x in vec_f64(16), y in vec_f64(16), c in -10.0..10.0f64) {
        let scaled: Vec<f64> = x.iter().map(|v| c * v).collect();
        let lhs = vec_ops::dot(&scaled, &y);
        let rhs = c * vec_ops::dot(&x, &y);
        prop_assert!((lhs - rhs).abs() <= 1e-6 * (1.0 + rhs.abs()));
    }

    #[test]
    fn axpy_matches_definition(x in vec_f64(24), y in vec_f64(24), a in -5.0..5.0f64) {
        let mut z = y.clone();
        vec_ops::axpy(a, &x, &mut z);
        for i in 0..x.len() {
            prop_assert!((z[i] - (a * x[i] + y[i])).abs() < 1e-9);
        }
    }

    #[test]
    fn norm2_triangle_inequality(x in vec_f64(16), y in vec_f64(16)) {
        let s = vec_ops::add(&x, &y);
        prop_assert!(vec_ops::norm2(&s) <= vec_ops::norm2(&x) + vec_ops::norm2(&y) + 1e-9);
    }

    #[test]
    fn sum_vectors_order_independent(a in vec_f64(8), b in vec_f64(8), c in vec_f64(8)) {
        let s1 = vec_ops::sum_vectors([a.as_slice(), b.as_slice(), c.as_slice()].into_iter()).unwrap();
        let s2 = vec_ops::sum_vectors([c.as_slice(), a.as_slice(), b.as_slice()].into_iter()).unwrap();
        prop_assert!(bcc_linalg::approx_eq_slice(&s1, &s2, 1e-9));
    }

    #[test]
    fn lu_solve_residual_small(a in dd_matrix(6), b in vec_f64(6)) {
        let x = solve::solve(&a, &b).unwrap();
        let ax = a.gemv(&x).unwrap();
        for i in 0..b.len() {
            prop_assert!((ax[i] - b[i]).abs() < 1e-6 * (1.0 + b[i].abs()));
        }
    }

    #[test]
    fn lu_det_product_rule(a in dd_matrix(4), b in dd_matrix(4)) {
        let da = solve::det(&a).unwrap();
        let db = solve::det(&b).unwrap();
        let dab = solve::det(&a.matmul(&b).unwrap()).unwrap();
        prop_assert!((dab - da * db).abs() <= 1e-6 * (1.0 + (da * db).abs()));
    }

    #[test]
    fn inverse_is_two_sided(a in dd_matrix(5)) {
        let inv = solve::inverse(&a).unwrap();
        let left = inv.matmul(&a).unwrap();
        let right = a.matmul(&inv).unwrap();
        let id = Matrix::identity(5);
        prop_assert!(left.approx_eq(&id, 1e-7));
        prop_assert!(right.approx_eq(&id, 1e-7));
    }

    #[test]
    fn qr_least_squares_residual_orthogonal(
        data in prop::collection::vec(-10.0..10.0f64, 8 * 3),
        b in vec_f64(8),
    ) {
        let a = Matrix::from_vec(8, 3, data).unwrap();
        if let Ok(x) = qr::least_squares(&a, &b) {
            let ax = a.gemv(&x).unwrap();
            let r: Vec<f64> = b.iter().zip(&ax).map(|(u, v)| u - v).collect();
            let atr = a.gemv_t(&r).unwrap();
            let scale = 1.0 + a.norm_max() * vec_ops::norm2(&b);
            for v in atr {
                prop_assert!(v.abs() <= 1e-6 * scale);
            }
        }
    }

    #[test]
    fn transpose_preserves_fro_norm(data in prop::collection::vec(-10.0..10.0f64, 12), _n in 0..1u8) {
        let a = Matrix::from_vec(3, 4, data).unwrap();
        prop_assert!((a.norm_fro() - a.transpose().norm_fro()).abs() < 1e-9);
    }

    #[test]
    fn gemv_distributes_over_addition(a in dd_matrix(5), x in vec_f64(5), y in vec_f64(5)) {
        let xy = vec_ops::add(&x, &y);
        let lhs = a.gemv(&xy).unwrap();
        let ax = a.gemv(&x).unwrap();
        let ay = a.gemv(&y).unwrap();
        let rhs = vec_ops::add(&ax, &ay);
        prop_assert!(bcc_linalg::approx_eq_slice(&lhs, &rhs, 1e-6));
    }
}
