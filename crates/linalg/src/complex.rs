//! Minimal complex arithmetic and complex dense matrices.
//!
//! The cyclic-MDS gradient code of Raviv et al. is constructed over the
//! complex roots of unity; decoding solves a complex linear system. We only
//! need `Complex` scalars, a row-major [`CMatrix`], matrix–vector products and
//! an LU solve — so those are all that is implemented.

use crate::error::LinAlgError;
use crate::Result;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Zero.
    pub const ZERO: Self = Self { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: Self = Self { re: 1.0, im: 0.0 };
    /// The imaginary unit `i`.
    pub const I: Self = Self { re: 0.0, im: 1.0 };

    /// Constructs `re + i·im`.
    #[must_use]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// A real number as a complex one.
    #[must_use]
    pub const fn from_real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// `e^{iθ}` — point on the unit circle.
    #[must_use]
    pub fn cis(theta: f64) -> Self {
        Self {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// The primitive `n`-th root of unity raised to power `k`: `e^{2πik/n}`.
    ///
    /// # Panics
    /// Panics when `n == 0`.
    #[must_use]
    pub fn root_of_unity(n: usize, k: usize) -> Self {
        assert!(n > 0, "root_of_unity: n must be positive");
        // Reduce k modulo n first for accuracy with large powers.
        let k = k % n;
        Self::cis(2.0 * std::f64::consts::PI * (k as f64) / (n as f64))
    }

    /// Complex conjugate.
    #[must_use]
    pub fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude `|z|²`.
    #[must_use]
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    #[must_use]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Multiplicative inverse; returns NaN components for zero input.
    #[must_use]
    pub fn recip(self) -> Self {
        let d = self.norm_sq();
        Self {
            re: self.re / d,
            im: -self.im / d,
        }
    }

    /// Integer power by repeated squaring.
    #[must_use]
    pub fn powi(self, mut e: u32) -> Self {
        let mut base = self;
        let mut acc = Self::ONE;
        while e > 0 {
            if e & 1 == 1 {
                acc *= base;
            }
            base *= base;
            e >>= 1;
        }
        acc
    }
}

impl Add for Complex {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl Sub for Complex {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Self::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex {
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl Mul for Complex {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        Self::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex {
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex {
    type Output = Self;
    fn mul(self, rhs: f64) -> Self {
        Self::new(self.re * rhs, self.im * rhs)
    }
}

impl Div for Complex {
    type Output = Self;
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Self) -> Self {
        self * rhs.recip()
    }
}

impl Neg for Complex {
    type Output = Self;
    fn neg(self) -> Self {
        Self::new(-self.re, -self.im)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

/// Row-major dense complex matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct CMatrix {
    rows: usize,
    cols: usize,
    data: Vec<Complex>,
}

impl CMatrix {
    /// All-zeros complex matrix.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![Complex::ZERO; rows * cols],
        }
    }

    /// Builds a matrix by evaluating `f(i, j)` at every entry.
    #[must_use]
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> Complex) -> Self {
        let mut m = Self::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m.set(i, j, f(i, j));
            }
        }
        m
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Entry accessor.
    #[must_use]
    pub fn get(&self, i: usize, j: usize) -> Complex {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        self.data[i * self.cols + j]
    }

    /// Entry setter.
    pub fn set(&mut self, i: usize, j: usize, v: Complex) {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        self.data[i * self.cols + j] = v;
    }

    /// Immutable view of row `i`.
    #[must_use]
    pub fn row(&self, i: usize) -> &[Complex] {
        assert!(i < self.rows, "row out of bounds");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Selects rows into a fresh matrix.
    ///
    /// # Errors
    /// [`LinAlgError::OutOfBounds`] on a bad row index.
    pub fn select_rows(&self, indices: &[usize]) -> Result<Self> {
        let mut out = Self::zeros(indices.len(), self.cols);
        for (dst, &src) in indices.iter().enumerate() {
            if src >= self.rows {
                return Err(LinAlgError::OutOfBounds {
                    index: src,
                    len: self.rows,
                });
            }
            let (a, b) = (dst * self.cols, src * self.cols);
            out.data[a..a + self.cols].copy_from_slice(&self.data[b..b + self.cols]);
        }
        Ok(out)
    }

    /// Conjugate transpose.
    #[must_use]
    pub fn hermitian_transpose(&self) -> Self {
        Self::from_fn(self.cols, self.rows, |i, j| self.get(j, i).conj())
    }

    /// Matrix–vector product `y = A x`.
    ///
    /// # Errors
    /// [`LinAlgError::ShapeMismatch`] when `x.len() != cols`.
    pub fn gemv(&self, x: &[Complex]) -> Result<Vec<Complex>> {
        if x.len() != self.cols {
            return Err(LinAlgError::ShapeMismatch {
                op: "cgemv",
                lhs: (self.rows, self.cols),
                rhs: (x.len(), 1),
            });
        }
        Ok((0..self.rows)
            .map(|i| {
                let mut s = Complex::ZERO;
                for (a, b) in self.row(i).iter().zip(x) {
                    s += *a * *b;
                }
                s
            })
            .collect())
    }

    /// Solves the square complex system `A x = b` by LU with partial
    /// pivoting (pivot by magnitude).
    ///
    /// # Errors
    /// [`LinAlgError::NotSquare`], [`LinAlgError::ShapeMismatch`], or
    /// [`LinAlgError::Singular`].
    pub fn solve(&self, b: &[Complex]) -> Result<Vec<Complex>> {
        if self.rows != self.cols {
            return Err(LinAlgError::NotSquare {
                shape: (self.rows, self.cols),
            });
        }
        let n = self.rows;
        if b.len() != n {
            return Err(LinAlgError::ShapeMismatch {
                op: "csolve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        let mut a = self.clone();
        let mut x = b.to_vec();
        for k in 0..n {
            let mut p = k;
            let mut pmax = a.get(k, k).abs();
            for i in k + 1..n {
                let v = a.get(i, k).abs();
                if v > pmax {
                    pmax = v;
                    p = i;
                }
            }
            if pmax < 1e-12 {
                return Err(LinAlgError::Singular { pivot: k });
            }
            if p != k {
                for j in 0..n {
                    let (vk, vp) = (a.get(k, j), a.get(p, j));
                    a.set(k, j, vp);
                    a.set(p, j, vk);
                }
                x.swap(k, p);
            }
            let piv = a.get(k, k).recip();
            for i in k + 1..n {
                let f = a.get(i, k) * piv;
                if f == Complex::ZERO {
                    continue;
                }
                for j in k..n {
                    let v = a.get(i, j) - f * a.get(k, j);
                    a.set(i, j, v);
                }
                let xi = x[i] - f * x[k];
                x[i] = xi;
            }
        }
        for i in (0..n).rev() {
            let mut s = x[i];
            for j in i + 1..n {
                s -= a.get(i, j) * x[j];
            }
            x[i] = s / a.get(i, i);
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ceq(a: Complex, b: Complex, tol: f64) -> bool {
        (a - b).abs() < tol
    }

    #[test]
    fn arithmetic_identities() {
        let z = Complex::new(3.0, -4.0);
        assert_eq!(z + Complex::ZERO, z);
        assert_eq!(z * Complex::ONE, z);
        assert!(ceq(z * z.recip(), Complex::ONE, 1e-12));
        assert_eq!(z.conj().conj(), z);
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.norm_sq(), 25.0);
        assert_eq!(-z, Complex::new(-3.0, 4.0));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert!(ceq(
            Complex::I * Complex::I,
            Complex::from_real(-1.0),
            1e-15
        ));
    }

    #[test]
    fn roots_of_unity_cycle() {
        let n = 7;
        let w = Complex::root_of_unity(n, 1);
        assert!(ceq(w.powi(n as u32), Complex::ONE, 1e-12));
        // Sum of all n-th roots is zero.
        let mut s = Complex::ZERO;
        for k in 0..n {
            s += Complex::root_of_unity(n, k);
        }
        assert!(s.abs() < 1e-12);
    }

    #[test]
    fn powi_matches_repeated_multiplication() {
        let z = Complex::new(1.1, -0.3);
        let mut manual = Complex::ONE;
        for _ in 0..9 {
            manual *= z;
        }
        assert!(ceq(z.powi(9), manual, 1e-10));
        assert_eq!(z.powi(0), Complex::ONE);
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1-2i");
    }

    #[test]
    fn cmatrix_solve_identity() {
        let i3 = CMatrix::from_fn(
            3,
            3,
            |i, j| {
                if i == j {
                    Complex::ONE
                } else {
                    Complex::ZERO
                }
            },
        );
        let b = vec![
            Complex::new(1.0, 1.0),
            Complex::new(2.0, -1.0),
            Complex::new(0.0, 3.0),
        ];
        let x = i3.solve(&b).unwrap();
        for (xi, bi) in x.iter().zip(&b) {
            assert!(ceq(*xi, *bi, 1e-12));
        }
    }

    #[test]
    fn cmatrix_solve_vandermonde_roots() {
        // Vandermonde in the 4th roots of unity is unitary-like: solvable.
        let n = 4;
        let v = CMatrix::from_fn(n, n, |i, j| Complex::root_of_unity(n, i * j));
        let b = vec![Complex::ONE; n];
        let x = v.solve(&b).unwrap();
        let vx = v.gemv(&x).unwrap();
        for (a, c) in vx.iter().zip(&b) {
            assert!(ceq(*a, *c, 1e-10));
        }
    }

    #[test]
    fn cmatrix_singular_detected() {
        let m = CMatrix::from_fn(2, 2, |_, _| Complex::ONE);
        assert!(matches!(
            m.solve(&[Complex::ONE, Complex::ZERO]),
            Err(LinAlgError::Singular { .. })
        ));
    }

    #[test]
    fn cmatrix_select_and_hermitian() {
        let m = CMatrix::from_fn(2, 2, |i, j| Complex::new(i as f64, j as f64));
        let h = m.hermitian_transpose();
        assert_eq!(h.get(0, 1), Complex::new(1.0, -0.0));
        assert_eq!(h.get(1, 0), Complex::new(0.0, -1.0));
        let s = m.select_rows(&[1]).unwrap();
        assert_eq!(s.rows(), 1);
        assert_eq!(s.get(0, 1), Complex::new(1.0, 1.0));
        assert!(m.select_rows(&[7]).is_err());
    }

    #[test]
    fn gemv_shape_mismatch() {
        let m = CMatrix::zeros(2, 3);
        assert!(m.gemv(&[Complex::ZERO; 2]).is_err());
    }
}
