//! Dense linear-algebra substrate for the BCC reproduction.
//!
//! The paper's workloads (logistic regression gradients, gradient-coding
//! encode/decode) need a small but trustworthy dense linear algebra stack:
//!
//! * [`vec_ops`] — BLAS-1 style kernels over `&[f64]` slices (dot, axpy, …).
//! * [`Matrix`] — row-major dense matrices with BLAS-2/3 kernels.
//! * [`solve`] — LU with partial pivoting, triangular solves, inverse.
//! * [`cholesky`] — SPD factorization for normal-equation and ridge solves.
//! * [`qr`] — Householder QR and least-squares solves (used by the
//!   cyclic-repetition decoder, which solves `a^T B_F = 1^T`).
//! * [`complex`] — minimal complex arithmetic plus complex matrices and a
//!   complex LU solver (used by the cyclic-MDS code of Raviv et al., whose
//!   generator lives over the complex roots of unity).
//! * [`parallel`] — chunked fork/join helpers built on `crossbeam::scope`,
//!   the only data-parallelism primitive the workloads need.
//!
//! Everything is `f64`; the reproduction never needs mixed precision.

#![forbid(unsafe_code)]
// Index loops are kept where they mirror the papers' matrix/recurrence
// notation; iterator rewrites would obscure the correspondence.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

pub mod cholesky;
pub mod complex;
pub mod error;
pub mod matrix;
pub mod parallel;
pub mod power;
pub mod qr;
pub mod solve;
pub mod vec_ops;

pub use complex::{CMatrix, Complex};
pub use error::LinAlgError;
pub use matrix::Matrix;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, LinAlgError>;

/// Default absolute tolerance used by equality helpers in tests and decoders.
pub const DEFAULT_TOL: f64 = 1e-9;

/// Returns true when `a` and `b` are within `tol` absolutely or relatively.
///
/// The relative branch guards comparisons of large gradient sums where the
/// absolute error scales with the magnitude of the operands.
#[must_use]
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    let diff = (a - b).abs();
    if diff <= tol {
        return true;
    }
    let scale = a.abs().max(b.abs());
    diff <= tol * scale
}

/// Slice-wise [`approx_eq`]; false when lengths differ.
#[must_use]
pub fn approx_eq_slice(a: &[f64], b: &[f64], tol: f64) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| approx_eq(*x, *y, tol))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_absolute() {
        assert!(approx_eq(1.0, 1.0 + 1e-12, 1e-9));
        assert!(!approx_eq(1.0, 1.1, 1e-9));
    }

    #[test]
    fn approx_eq_relative_for_large_values() {
        assert!(approx_eq(1e12, 1e12 + 1.0, 1e-9));
        assert!(!approx_eq(1e12, 1.01e12, 1e-9));
    }

    #[test]
    fn approx_eq_slice_checks_length() {
        assert!(!approx_eq_slice(&[1.0], &[1.0, 2.0], 1e-9));
        assert!(approx_eq_slice(&[1.0, 2.0], &[1.0, 2.0], 1e-9));
    }
}
