//! Chunked fork/join helpers built on `crossbeam::scope`.
//!
//! The only data parallelism the workloads need is "split a slice into
//! contiguous chunks, process each on its own thread, combine the results" —
//! e.g. computing per-example partial gradients of a large batch. Scoped
//! threads keep borrows simple (no `Arc`), per the Rust Atomics & Locks
//! guidance, and avoid pulling in a full work-stealing runtime.

use std::num::NonZeroUsize;

/// Degree of parallelism to use for chunked maps.
///
/// Defaults to the machine's available parallelism, capped so tiny inputs do
/// not spawn more threads than chunks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism(NonZeroUsize);

impl Parallelism {
    /// Uses up to `n` threads.
    ///
    /// # Panics
    /// Panics when `n == 0`.
    #[must_use]
    pub fn threads(n: usize) -> Self {
        Self(NonZeroUsize::new(n).expect("parallelism must be non-zero"))
    }

    /// Single-threaded execution (useful for deterministic tests).
    #[must_use]
    pub fn sequential() -> Self {
        Self::threads(1)
    }

    /// Available hardware parallelism, falling back to 1.
    #[must_use]
    pub fn available() -> Self {
        Self(std::thread::available_parallelism().unwrap_or(NonZeroUsize::MIN))
    }

    /// Thread count.
    #[must_use]
    pub fn get(self) -> usize {
        self.0.get()
    }
}

impl Default for Parallelism {
    fn default() -> Self {
        Self::available()
    }
}

/// Applies `f` to contiguous chunks of `items` across up to `par` threads and
/// returns per-chunk results in input order.
///
/// `f` receives `(chunk_start_index, chunk)` so callers can recover global
/// indices. Falls back to a simple sequential loop for one thread or small
/// inputs.
pub fn par_chunk_map<T, R, F>(par: Parallelism, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    let threads = par.get().min(items.len().max(1));
    if threads <= 1 || items.is_empty() {
        return if items.is_empty() {
            Vec::new()
        } else {
            vec![f(0, items)]
        };
    }
    let chunk_len = items.len().div_ceil(threads);
    let mut out: Vec<Option<R>> = Vec::with_capacity(threads);
    out.resize_with(items.len().div_ceil(chunk_len), || None);

    crossbeam::scope(|s| {
        let mut handles = Vec::with_capacity(out.len());
        for (ci, chunk) in items.chunks(chunk_len).enumerate() {
            let fref = &f;
            handles.push(s.spawn(move |_| (ci, fref(ci * chunk_len, chunk))));
        }
        for h in handles {
            let (ci, r) = h.join().expect("parallel chunk worker panicked");
            out[ci] = Some(r);
        }
    })
    .expect("crossbeam scope failed");

    out.into_iter().map(|r| r.expect("chunk missing")).collect()
}

/// Parallel map-reduce: maps chunks with `map`, folds the per-chunk values
/// with `reduce` in chunk order, starting from `init`.
pub fn par_map_reduce<T, R, M, F>(
    par: Parallelism,
    items: &[T],
    init: R,
    map: M,
    mut reduce: F,
) -> R
where
    T: Sync,
    R: Send,
    M: Fn(usize, &[T]) -> R + Sync,
    F: FnMut(R, R) -> R,
{
    par_chunk_map(par, items, map)
        .into_iter()
        .fold(init, &mut reduce)
}

/// Sums equal-length `f64` vectors produced per chunk — the common pattern for
/// "sum of per-example gradients" — returning a zero vector of `dim` when
/// `items` is empty.
pub fn par_sum_vectors<T, M>(par: Parallelism, items: &[T], dim: usize, map: M) -> Vec<f64>
where
    T: Sync,
    M: Fn(usize, &[T]) -> Vec<f64> + Sync,
{
    par_map_reduce(par, items, vec![0.0; dim], map, |mut acc, v| {
        crate::vec_ops::add_assign(&mut acc, &v);
        acc
    })
}

/// Columns per work item of [`par_weighted_sum`]. Fixed (never derived from
/// the thread count) so the work decomposition — and therefore the output —
/// is a function of the input shape alone.
const WEIGHTED_SUM_COL_CHUNK: usize = 1024;

/// Minimum `terms × dim` below which [`par_weighted_sum`] stays serial:
/// under ~64k multiply-adds the reduction finishes faster than threads
/// spawn. Purely a scheduling threshold — both paths produce identical bits.
const WEIGHTED_SUM_MIN_WORK: usize = 1 << 16;

/// Weighted sum `Σ cᵢ·vᵢ` over equal-length vectors, parallelized across
/// **columns** with a work-stealing claim over fixed-size column chunks.
///
/// Bit-for-bit identical to the serial left folds in
/// [`vec_ops`](crate::vec_ops) regardless of the thread count, because every
/// output element is produced by the exact serial recurrence
///
/// ```text
/// out[k] = c₀·v₀[k];  out[k] = vᵢ[k].mul_add(cᵢ, out[k])  for i = 1, 2, …
/// ```
///
/// — the element order [`vec_ops::linear_combination`](crate::vec_ops::linear_combination)
/// uses, and (at `cᵢ = 1`) the order
/// [`vec_ops::sum_vectors`](crate::vec_ops::sum_vectors) uses, since `1·x == x` and
/// `x.mul_add(1, y) == x + y` exactly in IEEE 754. Column partitioning never
/// splits an element's accumulation chain, so chunk boundaries and thread
/// scheduling cannot perturb a single bit.
///
/// Returns `None` when `terms` is empty (an empty sum has no dimension).
///
/// # Panics
/// Panics when the term vectors have different lengths.
#[must_use]
pub fn par_weighted_sum(par: Parallelism, terms: &[(f64, &[f64])]) -> Option<Vec<f64>> {
    let (_, first) = terms.first()?;
    let dim = first.len();
    for (_, v) in terms {
        assert_eq!(v.len(), dim, "par_weighted_sum: length mismatch");
    }
    let chunks = dim.div_ceil(WEIGHTED_SUM_COL_CHUNK).max(1);
    let threads = par.get().min(chunks);
    if threads <= 1 || terms.len() * dim < WEIGHTED_SUM_MIN_WORK {
        let mut out = vec![0.0; dim];
        weighted_sum_columns(terms, 0..dim, &mut out);
        return Some(out);
    }

    // Work stealing: threads claim chunk indices from a shared counter, so
    // an unlucky thread (preempted, slow core) cannot stall the reduction.
    // Results are keyed by chunk index and reassembled in column order;
    // which thread computed a chunk is unobservable in the output.
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut out = vec![0.0; dim];
    let mut parts: Vec<Option<Vec<f64>>> = Vec::new();
    parts.resize_with(chunks, || None);
    crossbeam::scope(|s| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let next = &next;
            handles.push(s.spawn(move |_| {
                let mut mine = Vec::new();
                loop {
                    let ci = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if ci >= chunks {
                        break;
                    }
                    let lo = ci * WEIGHTED_SUM_COL_CHUNK;
                    let hi = (lo + WEIGHTED_SUM_COL_CHUNK).min(dim);
                    let mut part = vec![0.0; hi - lo];
                    weighted_sum_columns(terms, lo..hi, &mut part);
                    mine.push((ci, part));
                }
                mine
            }));
        }
        for h in handles {
            for (ci, part) in h.join().expect("weighted-sum worker panicked") {
                parts[ci] = Some(part);
            }
        }
    })
    .expect("crossbeam scope failed");
    for (ci, part) in parts.into_iter().enumerate() {
        let part = part.expect("every chunk claimed exactly once");
        let lo = ci * WEIGHTED_SUM_COL_CHUNK;
        out[lo..lo + part.len()].copy_from_slice(&part);
    }
    Some(out)
}

/// The serial recurrence of [`par_weighted_sum`] over columns `cols`,
/// writing into `out` (whose length equals the column range). Terms sweep
/// the chunk one at a time — the same streaming access pattern as the
/// serial fold, restricted to a cache-resident column window.
fn weighted_sum_columns(terms: &[(f64, &[f64])], cols: std::ops::Range<usize>, out: &mut [f64]) {
    let (c0, v0) = terms[0];
    for (o, x) in out.iter_mut().zip(&v0[cols.clone()]) {
        *o = c0 * x;
    }
    for &(c, v) in &terms[1..] {
        for (o, x) in out.iter_mut().zip(&v[cols.clone()]) {
            *o = x.mul_add(c, *o);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallelism_constructors() {
        assert_eq!(Parallelism::sequential().get(), 1);
        assert_eq!(Parallelism::threads(4).get(), 4);
        assert!(Parallelism::available().get() >= 1);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_parallelism_panics() {
        let _ = Parallelism::threads(0);
    }

    #[test]
    fn chunk_map_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let sums = par_chunk_map(Parallelism::threads(7), &items, |_, c| {
            c.iter().sum::<u64>()
        });
        let total: u64 = sums.iter().sum();
        assert_eq!(total, 999 * 1000 / 2);
        // Order: first chunk contains the smallest values.
        assert!(sums[0] < *sums.last().unwrap());
    }

    #[test]
    fn chunk_map_passes_global_offsets() {
        let items: Vec<u32> = (0..100).collect();
        let offsets = par_chunk_map(Parallelism::threads(4), &items, |start, chunk| {
            // Each element equals its global index.
            for (k, v) in chunk.iter().enumerate() {
                assert_eq!(*v as usize, start + k);
            }
            start
        });
        assert_eq!(offsets[0], 0);
    }

    #[test]
    fn empty_input() {
        let items: Vec<u8> = vec![];
        let r = par_chunk_map(Parallelism::threads(4), &items, |_, c| c.len());
        assert!(r.is_empty());
        let s = par_sum_vectors(Parallelism::threads(4), &items, 3, |_, _| vec![1.0; 3]);
        assert_eq!(s, vec![0.0; 3]);
    }

    #[test]
    fn sequential_equals_parallel() {
        let items: Vec<f64> = (0..257).map(|i| i as f64).collect();
        let seq = par_map_reduce(
            Parallelism::sequential(),
            &items,
            0.0,
            |_, c| c.iter().sum::<f64>(),
            |a, b| a + b,
        );
        let par = par_map_reduce(
            Parallelism::threads(8),
            &items,
            0.0,
            |_, c| c.iter().sum::<f64>(),
            |a, b| a + b,
        );
        assert!((seq - par).abs() < 1e-9);
    }

    #[test]
    fn par_sum_vectors_sums_per_chunk_gradients() {
        let items: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        // Each chunk contributes [sum, count].
        let s = par_sum_vectors(Parallelism::threads(3), &items, 2, |_, c| {
            vec![c.iter().sum::<f64>(), c.len() as f64]
        });
        assert_eq!(s, vec![55.0, 10.0]);
    }

    #[test]
    fn more_threads_than_items() {
        let items = [1.0, 2.0];
        let r = par_chunk_map(Parallelism::threads(16), &items, |_, c| c.len());
        let total: usize = r.iter().sum();
        assert_eq!(total, 2);
    }

    /// Deterministic but irregular test vectors (golden-ratio hashing), so
    /// sums exercise real rounding.
    fn test_terms(n: usize, dim: usize) -> Vec<(f64, Vec<f64>)> {
        (0..n)
            .map(|i| {
                let c = 0.25 + ((i * 37) % 11) as f64 * 0.125;
                let v = (0..dim)
                    .map(|k| {
                        let h = (i * 1_000_003 + k).wrapping_mul(0x9E37_79B9) % 10_007;
                        (h as f64 - 5_003.0) * 1e-3
                    })
                    .collect();
                (c, v)
            })
            .collect()
    }

    fn as_refs(terms: &[(f64, Vec<f64>)]) -> Vec<(f64, &[f64])> {
        terms.iter().map(|(c, v)| (*c, v.as_slice())).collect()
    }

    #[test]
    fn weighted_sum_empty_is_none() {
        assert!(par_weighted_sum(Parallelism::threads(4), &[]).is_none());
    }

    #[test]
    fn weighted_sum_matches_linear_combination_bit_for_bit() {
        // Large enough to cross the serial threshold and span many column
        // chunks at every thread count.
        let terms = test_terms(40, 5_000);
        let refs = as_refs(&terms);
        let serial = crate::vec_ops::linear_combination(refs.iter().copied()).unwrap();
        for threads in [1, 2, 3, 8] {
            let par = par_weighted_sum(Parallelism::threads(threads), &refs).unwrap();
            assert_eq!(par.len(), serial.len());
            for (k, (a, b)) in par.iter().zip(&serial).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "threads={threads}, column {k}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn unit_coefficients_match_sum_vectors_bit_for_bit() {
        let terms: Vec<(f64, Vec<f64>)> = test_terms(30, 4_096)
            .into_iter()
            .map(|(_, v)| (1.0, v))
            .collect();
        let refs = as_refs(&terms);
        let serial = crate::vec_ops::sum_vectors(terms.iter().map(|(_, v)| v.as_slice())).unwrap();
        let par = par_weighted_sum(Parallelism::threads(8), &refs).unwrap();
        for (k, (a, b)) in par.iter().zip(&serial).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "column {k}");
        }
    }

    #[test]
    fn small_inputs_stay_serial_and_correct() {
        let terms = test_terms(3, 7);
        let refs = as_refs(&terms);
        let serial = crate::vec_ops::linear_combination(refs.iter().copied()).unwrap();
        let par = par_weighted_sum(Parallelism::threads(8), &refs).unwrap();
        assert_eq!(par, serial);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn weighted_sum_length_mismatch_panics() {
        let a = [1.0, 2.0];
        let b = [1.0];
        let _ = par_weighted_sum(
            Parallelism::threads(2),
            &[(1.0, a.as_slice()), (1.0, b.as_slice())],
        );
    }
}
