//! Chunked fork/join helpers built on `crossbeam::scope`.
//!
//! The only data parallelism the workloads need is "split a slice into
//! contiguous chunks, process each on its own thread, combine the results" —
//! e.g. computing per-example partial gradients of a large batch. Scoped
//! threads keep borrows simple (no `Arc`), per the Rust Atomics & Locks
//! guidance, and avoid pulling in a full work-stealing runtime.

use std::num::NonZeroUsize;

/// Degree of parallelism to use for chunked maps.
///
/// Defaults to the machine's available parallelism, capped so tiny inputs do
/// not spawn more threads than chunks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism(NonZeroUsize);

impl Parallelism {
    /// Uses up to `n` threads.
    ///
    /// # Panics
    /// Panics when `n == 0`.
    #[must_use]
    pub fn threads(n: usize) -> Self {
        Self(NonZeroUsize::new(n).expect("parallelism must be non-zero"))
    }

    /// Single-threaded execution (useful for deterministic tests).
    #[must_use]
    pub fn sequential() -> Self {
        Self::threads(1)
    }

    /// Available hardware parallelism, falling back to 1.
    #[must_use]
    pub fn available() -> Self {
        Self(std::thread::available_parallelism().unwrap_or(NonZeroUsize::MIN))
    }

    /// Thread count.
    #[must_use]
    pub fn get(self) -> usize {
        self.0.get()
    }
}

impl Default for Parallelism {
    fn default() -> Self {
        Self::available()
    }
}

/// Applies `f` to contiguous chunks of `items` across up to `par` threads and
/// returns per-chunk results in input order.
///
/// `f` receives `(chunk_start_index, chunk)` so callers can recover global
/// indices. Falls back to a simple sequential loop for one thread or small
/// inputs.
pub fn par_chunk_map<T, R, F>(par: Parallelism, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    let threads = par.get().min(items.len().max(1));
    if threads <= 1 || items.is_empty() {
        return if items.is_empty() {
            Vec::new()
        } else {
            vec![f(0, items)]
        };
    }
    let chunk_len = items.len().div_ceil(threads);
    let mut out: Vec<Option<R>> = Vec::with_capacity(threads);
    out.resize_with(items.len().div_ceil(chunk_len), || None);

    crossbeam::scope(|s| {
        let mut handles = Vec::with_capacity(out.len());
        for (ci, chunk) in items.chunks(chunk_len).enumerate() {
            let fref = &f;
            handles.push(s.spawn(move |_| (ci, fref(ci * chunk_len, chunk))));
        }
        for h in handles {
            let (ci, r) = h.join().expect("parallel chunk worker panicked");
            out[ci] = Some(r);
        }
    })
    .expect("crossbeam scope failed");

    out.into_iter().map(|r| r.expect("chunk missing")).collect()
}

/// Parallel map-reduce: maps chunks with `map`, folds the per-chunk values
/// with `reduce` in chunk order, starting from `init`.
pub fn par_map_reduce<T, R, M, F>(
    par: Parallelism,
    items: &[T],
    init: R,
    map: M,
    mut reduce: F,
) -> R
where
    T: Sync,
    R: Send,
    M: Fn(usize, &[T]) -> R + Sync,
    F: FnMut(R, R) -> R,
{
    par_chunk_map(par, items, map)
        .into_iter()
        .fold(init, &mut reduce)
}

/// Sums equal-length `f64` vectors produced per chunk — the common pattern for
/// "sum of per-example gradients" — returning a zero vector of `dim` when
/// `items` is empty.
pub fn par_sum_vectors<T, M>(par: Parallelism, items: &[T], dim: usize, map: M) -> Vec<f64>
where
    T: Sync,
    M: Fn(usize, &[T]) -> Vec<f64> + Sync,
{
    par_map_reduce(par, items, vec![0.0; dim], map, |mut acc, v| {
        crate::vec_ops::add_assign(&mut acc, &v);
        acc
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallelism_constructors() {
        assert_eq!(Parallelism::sequential().get(), 1);
        assert_eq!(Parallelism::threads(4).get(), 4);
        assert!(Parallelism::available().get() >= 1);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_parallelism_panics() {
        let _ = Parallelism::threads(0);
    }

    #[test]
    fn chunk_map_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let sums = par_chunk_map(Parallelism::threads(7), &items, |_, c| {
            c.iter().sum::<u64>()
        });
        let total: u64 = sums.iter().sum();
        assert_eq!(total, 999 * 1000 / 2);
        // Order: first chunk contains the smallest values.
        assert!(sums[0] < *sums.last().unwrap());
    }

    #[test]
    fn chunk_map_passes_global_offsets() {
        let items: Vec<u32> = (0..100).collect();
        let offsets = par_chunk_map(Parallelism::threads(4), &items, |start, chunk| {
            // Each element equals its global index.
            for (k, v) in chunk.iter().enumerate() {
                assert_eq!(*v as usize, start + k);
            }
            start
        });
        assert_eq!(offsets[0], 0);
    }

    #[test]
    fn empty_input() {
        let items: Vec<u8> = vec![];
        let r = par_chunk_map(Parallelism::threads(4), &items, |_, c| c.len());
        assert!(r.is_empty());
        let s = par_sum_vectors(Parallelism::threads(4), &items, 3, |_, _| vec![1.0; 3]);
        assert_eq!(s, vec![0.0; 3]);
    }

    #[test]
    fn sequential_equals_parallel() {
        let items: Vec<f64> = (0..257).map(|i| i as f64).collect();
        let seq = par_map_reduce(
            Parallelism::sequential(),
            &items,
            0.0,
            |_, c| c.iter().sum::<f64>(),
            |a, b| a + b,
        );
        let par = par_map_reduce(
            Parallelism::threads(8),
            &items,
            0.0,
            |_, c| c.iter().sum::<f64>(),
            |a, b| a + b,
        );
        assert!((seq - par).abs() < 1e-9);
    }

    #[test]
    fn par_sum_vectors_sums_per_chunk_gradients() {
        let items: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        // Each chunk contributes [sum, count].
        let s = par_sum_vectors(Parallelism::threads(3), &items, 2, |_, c| {
            vec![c.iter().sum::<f64>(), c.len() as f64]
        });
        assert_eq!(s, vec![55.0, 10.0]);
    }

    #[test]
    fn more_threads_than_items() {
        let items = [1.0, 2.0];
        let r = par_chunk_map(Parallelism::threads(16), &items, |_, c| c.len());
        let total: usize = r.iter().sum();
        assert_eq!(total, 2);
    }
}
