//! Householder QR and least-squares solves.
//!
//! The cyclic-repetition decoder needs the minimum-norm/least-squares solution
//! of `B_Fᵀ a = 1` when the finished-worker set is larger than strictly
//! necessary; Householder QR is the numerically stable way to get it.

use crate::error::LinAlgError;
use crate::matrix::Matrix;
use crate::Result;

/// Threshold below which a diagonal entry of `R` is treated as rank-deficient.
const RANK_TOL: f64 = 1e-10;

/// Householder QR factorization `A = Q R` for `rows ≥ cols`.
///
/// `Q` is stored implicitly as Householder reflectors in the lower trapezoid.
#[derive(Debug, Clone)]
pub struct Qr {
    /// Packed reflectors (below diagonal) and `R` (upper triangle).
    qr: Matrix,
    /// Scalar `τ` per reflector.
    tau: Vec<f64>,
}

impl Qr {
    /// Factors a tall (or square) matrix.
    ///
    /// # Errors
    /// [`LinAlgError::Underdetermined`] when `rows < cols`.
    pub fn factor(a: &Matrix) -> Result<Self> {
        let (m, n) = a.shape();
        if m < n {
            return Err(LinAlgError::Underdetermined { rows: m, cols: n });
        }
        let mut qr = a.clone();
        let mut tau = vec![0.0; n];

        for k in 0..n {
            // Build the Householder reflector annihilating column k below row k.
            let mut norm = 0.0f64;
            for i in k..m {
                norm = norm.hypot(qr[(i, k)]);
            }
            if norm == 0.0 {
                tau[k] = 0.0;
                continue;
            }
            let alpha = if qr[(k, k)] >= 0.0 { -norm } else { norm };
            let v0 = qr[(k, k)] - alpha;
            // v = [v0, qr[k+1..m, k]] with implicit normalization by v0.
            for i in k + 1..m {
                qr[(i, k)] /= v0;
            }
            tau[k] = -v0 / alpha;
            qr[(k, k)] = alpha;

            // Apply reflector to trailing columns: A := (I − τ v vᵀ) A.
            for j in k + 1..n {
                let mut s = qr[(k, j)];
                for i in k + 1..m {
                    s += qr[(i, k)] * qr[(i, j)];
                }
                s *= tau[k];
                qr[(k, j)] -= s;
                for i in k + 1..m {
                    let vik = qr[(i, k)];
                    qr[(i, j)] -= s * vik;
                }
            }
        }
        Ok(Self { qr, tau })
    }

    /// Shape of the factored matrix.
    #[must_use]
    pub fn shape(&self) -> (usize, usize) {
        self.qr.shape()
    }

    /// Numerical rank: count of `|R[k,k]|` above tolerance (relative to the
    /// largest diagonal magnitude).
    #[must_use]
    pub fn rank(&self) -> usize {
        let n = self.qr.cols();
        let rmax = (0..n).fold(0.0f64, |acc, k| acc.max(self.qr[(k, k)].abs()));
        if rmax == 0.0 {
            return 0;
        }
        (0..n)
            .filter(|&k| self.qr[(k, k)].abs() > RANK_TOL * rmax)
            .count()
    }

    /// Least-squares solve `min ‖A x − b‖₂`.
    ///
    /// # Errors
    /// [`LinAlgError::ShapeMismatch`] on a bad `b` length, or
    /// [`LinAlgError::Singular`] when `R` is rank-deficient.
    pub fn solve_least_squares(&self, b: &[f64]) -> Result<Vec<f64>> {
        let (m, n) = self.qr.shape();
        if b.len() != m {
            return Err(LinAlgError::ShapeMismatch {
                op: "qr_solve",
                lhs: (m, n),
                rhs: (b.len(), 1),
            });
        }
        // y = Qᵀ b, applying reflectors in order.
        let mut y = b.to_vec();
        for k in 0..n {
            if self.tau[k] == 0.0 {
                continue;
            }
            let mut s = y[k];
            for i in k + 1..m {
                s += self.qr[(i, k)] * y[i];
            }
            s *= self.tau[k];
            y[k] -= s;
            for i in k + 1..m {
                y[i] -= s * self.qr[(i, k)];
            }
        }
        // Back substitution on R x = y[..n].
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            for j in i + 1..n {
                s -= self.qr[(i, j)] * x[j];
            }
            let d = self.qr[(i, i)];
            if d.abs() < RANK_TOL {
                return Err(LinAlgError::Singular { pivot: i });
            }
            x[i] = s / d;
        }
        Ok(x)
    }
}

/// One-shot least squares `min ‖A x − b‖₂`.
///
/// # Errors
/// Propagates factorization and solve errors.
pub fn least_squares(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    Qr::factor(a)?.solve_least_squares(b)
}

/// Solves the *underdetermined* row system `xᵀ A = cᵀ` (i.e. `Aᵀ x = c`) in
/// the least-squares sense by factoring `Aᵀ`.
///
/// This is exactly the decoder's problem: find combination coefficients over
/// received worker messages (`x`, one per finished worker) whose combination
/// of coding rows reproduces the all-ones row `cᵀ`.
///
/// # Errors
/// Propagates factorization and solve errors.
pub fn solve_row_combination(a: &Matrix, c: &[f64]) -> Result<Vec<f64>> {
    least_squares(&a.transpose(), c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq_slice;

    fn mat(rows: usize, cols: usize, v: &[f64]) -> Matrix {
        Matrix::from_vec(rows, cols, v.to_vec()).unwrap()
    }

    #[test]
    fn square_solve_matches_lu() {
        let a = mat(2, 2, &[2.0, 1.0, 1.0, 3.0]);
        let x = least_squares(&a, &[5.0, 10.0]).unwrap();
        assert!(approx_eq_slice(&x, &[1.0, 3.0], 1e-10));
    }

    #[test]
    fn overdetermined_projects() {
        // Fit y = c over observations {1, 2, 3}: least-squares c = 2.
        let a = mat(3, 1, &[1.0, 1.0, 1.0]);
        let x = least_squares(&a, &[1.0, 2.0, 3.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn underdetermined_rejected() {
        let a = mat(1, 2, &[1.0, 1.0]);
        assert!(matches!(
            Qr::factor(&a),
            Err(LinAlgError::Underdetermined { .. })
        ));
    }

    #[test]
    fn rank_detects_deficiency() {
        let full = mat(3, 2, &[1.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
        assert_eq!(Qr::factor(&full).unwrap().rank(), 2);
        let deficient = mat(3, 2, &[1.0, 2.0, 2.0, 4.0, 3.0, 6.0]);
        assert_eq!(Qr::factor(&deficient).unwrap().rank(), 1);
    }

    #[test]
    fn rank_deficient_solve_errors() {
        let deficient = mat(3, 2, &[1.0, 2.0, 2.0, 4.0, 3.0, 6.0]);
        let qr = Qr::factor(&deficient).unwrap();
        assert!(matches!(
            qr.solve_least_squares(&[1.0, 1.0, 1.0]),
            Err(LinAlgError::Singular { .. })
        ));
    }

    #[test]
    fn row_combination_recovers_ones() {
        // Two rows [1, 1, 0] and [0, 1, 1]; no exact combination gives all
        // ones, but adding a third row [1, 0, 1] makes (0.5, 0.5, 0.5) exact.
        let a = mat(3, 3, &[1.0, 1.0, 0.0, 0.0, 1.0, 1.0, 1.0, 0.0, 1.0]);
        let x = solve_row_combination(&a, &[1.0, 1.0, 1.0]).unwrap();
        assert!(approx_eq_slice(&x, &[0.5, 0.5, 0.5], 1e-10));
    }

    #[test]
    fn residual_orthogonal_to_columns() {
        let a = mat(4, 2, &[1.0, 0.5, 0.0, 1.0, 1.0, 1.0, 2.0, -1.0]);
        let b = [1.0, 2.0, 3.0, 4.0];
        let x = least_squares(&a, &b).unwrap();
        let ax = a.gemv(&x).unwrap();
        let r: Vec<f64> = b.iter().zip(&ax).map(|(bi, axi)| bi - axi).collect();
        // Normal equations: Aᵀ r = 0.
        let atr = a.gemv_t(&r).unwrap();
        assert!(atr.iter().all(|v| v.abs() < 1e-10));
    }

    #[test]
    fn solve_shape_mismatch() {
        let a = Matrix::identity(3);
        let qr = Qr::factor(&a).unwrap();
        assert!(qr.solve_least_squares(&[1.0]).is_err());
    }

    #[test]
    fn zero_column_handled() {
        // A column that is already zero below the diagonal hits the τ=0 path.
        let a = mat(3, 2, &[1.0, 1.0, 0.0, 0.0, 0.0, 2.0]);
        let x = least_squares(&a, &[2.0, 0.0, 4.0]).unwrap();
        let ax = a.gemv(&x).unwrap();
        assert!(approx_eq_slice(&ax, &[2.0, 0.0, 4.0], 1e-10));
    }
}
