//! Power iteration for dominant eigenvalues of symmetric matrices.
//!
//! The optimizer uses this to estimate the logistic-loss Lipschitz constant
//! `L = λ_max(XᵀX)/(4m)` and derive a safe step size `1/L` automatically —
//! the paper fixes its learning rate by hand; the library exposes the
//! principled default.

use crate::error::LinAlgError;
use crate::matrix::Matrix;
use crate::vec_ops;
use crate::Result;

/// Result of a power-iteration run.
#[derive(Debug, Clone, PartialEq)]
pub struct DominantEigen {
    /// Estimated dominant eigenvalue (by magnitude).
    pub value: f64,
    /// Corresponding unit eigenvector.
    pub vector: Vec<f64>,
    /// Iterations used.
    pub iterations: usize,
}

/// Estimates the dominant eigenpair of a **symmetric** matrix by power
/// iteration with Rayleigh-quotient convergence checks.
///
/// # Errors
/// [`LinAlgError::NotSquare`] for rectangular input; [`LinAlgError::Singular`]
/// when the iterate collapses to zero (e.g. the zero matrix).
pub fn dominant_eigen(a: &Matrix, tol: f64, max_iter: usize) -> Result<DominantEigen> {
    if !a.is_square() {
        return Err(LinAlgError::NotSquare { shape: a.shape() });
    }
    let n = a.rows();
    // Deterministic start with energy in every coordinate.
    let mut v: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64 * 0.7).sin() * 0.3).collect();
    let norm = vec_ops::norm2(&v);
    vec_ops::scale(1.0 / norm, &mut v);

    let mut lambda = 0.0;
    for it in 1..=max_iter {
        let mut av = a.gemv(&v)?;
        let norm = vec_ops::norm2(&av);
        if norm < 1e-300 {
            return Err(LinAlgError::Singular { pivot: 0 });
        }
        vec_ops::scale(1.0 / norm, &mut av);
        // Rayleigh quotient on the fresh iterate (symmetric ⇒ optimal).
        let anew = a.gemv(&av)?;
        let next_lambda = vec_ops::dot(&av, &anew);
        let converged = (next_lambda - lambda).abs() <= tol * (1.0 + next_lambda.abs());
        lambda = next_lambda;
        v = av;
        if converged && it > 1 {
            return Ok(DominantEigen {
                value: lambda,
                vector: v,
                iterations: it,
            });
        }
    }
    Ok(DominantEigen {
        value: lambda,
        vector: v,
        iterations: max_iter,
    })
}

/// Largest eigenvalue of the Gram matrix `XᵀX` **without** materializing it:
/// power iteration applies `v ↦ Xᵀ(Xv)`. This is the quantity behind
/// logistic/least-squares Lipschitz constants.
///
/// # Errors
/// [`LinAlgError::Singular`] for an all-zero `x`.
pub fn gram_spectral_norm(x: &Matrix, tol: f64, max_iter: usize) -> Result<f64> {
    let p = x.cols();
    let mut v: Vec<f64> = (0..p).map(|i| 1.0 + (i as f64 * 0.7).cos() * 0.3).collect();
    let norm = vec_ops::norm2(&v);
    vec_ops::scale(1.0 / norm, &mut v);

    let mut lambda = 0.0;
    for it in 1..=max_iter {
        let xv = x.gemv(&v)?;
        let mut xtxv = x.gemv_t(&xv)?;
        let norm = vec_ops::norm2(&xtxv);
        if norm < 1e-300 {
            return Err(LinAlgError::Singular { pivot: 0 });
        }
        vec_ops::scale(1.0 / norm, &mut xtxv);
        let xv2 = x.gemv(&xtxv)?;
        let next_lambda = vec_ops::dot(&xv2, &xv2);
        let converged = (next_lambda - lambda).abs() <= tol * (1.0 + next_lambda.abs());
        lambda = next_lambda;
        v = xtxv;
        if converged && it > 1 {
            return Ok(lambda);
        }
    }
    Ok(lambda)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_dominant_eigenvalue() {
        let a = Matrix::from_fn(4, 4, |i, j| if i == j { (i + 1) as f64 } else { 0.0 });
        let e = dominant_eigen(&a, 1e-12, 500).unwrap();
        assert!((e.value - 4.0).abs() < 1e-8, "λ = {}", e.value);
        // Eigenvector concentrates on the last coordinate.
        assert!(e.vector[3].abs() > 0.999);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Matrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 2.0]).unwrap();
        let e = dominant_eigen(&a, 1e-12, 500).unwrap();
        assert!((e.value - 3.0).abs() < 1e-8);
    }

    #[test]
    fn gram_matches_explicit() {
        let x = Matrix::from_fn(6, 3, |i, j| ((i * 5 + j * 7) % 11) as f64 - 5.0);
        let explicit = x.transpose().matmul(&x).unwrap();
        let via_gram = gram_spectral_norm(&x, 1e-12, 1000).unwrap();
        let via_eig = dominant_eigen(&explicit, 1e-12, 1000).unwrap().value;
        assert!(
            (via_gram - via_eig).abs() < 1e-6 * via_eig,
            "{via_gram} vs {via_eig}"
        );
    }

    #[test]
    fn rejects_rectangular() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            dominant_eigen(&a, 1e-9, 10),
            Err(LinAlgError::NotSquare { .. })
        ));
    }

    #[test]
    fn zero_matrix_is_singular() {
        let a = Matrix::zeros(3, 3);
        assert!(matches!(
            dominant_eigen(&a, 1e-9, 10),
            Err(LinAlgError::Singular { .. })
        ));
    }

    #[test]
    fn eigenvector_satisfies_definition() {
        let a = Matrix::from_vec(3, 3, vec![4.0, 1.0, 0.0, 1.0, 3.0, 1.0, 0.0, 1.0, 2.0]).unwrap();
        let e = dominant_eigen(&a, 1e-13, 2000).unwrap();
        let av = a.gemv(&e.vector).unwrap();
        for (x, v) in av.iter().zip(&e.vector) {
            assert!((x - e.value * v).abs() < 1e-6, "A·v ≠ λ·v");
        }
    }
}
