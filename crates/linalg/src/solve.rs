//! LU factorization with partial pivoting and direct solves.
//!
//! Used by the gradient-coding decoders: the cyclic-repetition decoder solves
//! `B_Fᵀ a = 1` for the decoding coefficients `a` given the set `F` of
//! finished workers, and tests invert small coding matrices to check
//! decodability claims.

use crate::error::LinAlgError;
use crate::matrix::Matrix;
use crate::Result;

/// Numerical-singularity threshold on pivot magnitude.
const PIVOT_TOL: f64 = 1e-12;

/// LU factorization `P A = L U` with partial pivoting.
///
/// `L` has an implicit unit diagonal; both factors are packed into a single
/// matrix as is conventional.
#[derive(Debug, Clone)]
pub struct Lu {
    /// Packed `L\U` factors.
    lu: Matrix,
    /// Row permutation: `perm[i]` is the original row now at position `i`.
    perm: Vec<usize>,
    /// Sign of the permutation, for determinants.
    perm_sign: f64,
}

impl Lu {
    /// Factors a square matrix.
    ///
    /// # Errors
    /// [`LinAlgError::NotSquare`] for rectangular input,
    /// [`LinAlgError::Singular`] when a pivot falls below tolerance.
    pub fn factor(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinAlgError::NotSquare { shape: a.shape() });
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut perm_sign = 1.0;

        for k in 0..n {
            // Partial pivot: largest magnitude in column k at or below row k.
            let mut p = k;
            let mut pmax = lu[(k, k)].abs();
            for i in k + 1..n {
                let v = lu[(i, k)].abs();
                if v > pmax {
                    pmax = v;
                    p = i;
                }
            }
            if pmax < PIVOT_TOL {
                return Err(LinAlgError::Singular { pivot: k });
            }
            if p != k {
                perm.swap(p, k);
                perm_sign = -perm_sign;
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(p, j)];
                    lu[(p, j)] = tmp;
                }
            }
            let pivot = lu[(k, k)];
            for i in k + 1..n {
                let factor = lu[(i, k)] / pivot;
                lu[(i, k)] = factor;
                for j in k + 1..n {
                    let ukj = lu[(k, j)];
                    lu[(i, j)] -= factor * ukj;
                }
            }
        }
        Ok(Self {
            lu,
            perm,
            perm_sign,
        })
    }

    /// Order of the factored matrix.
    #[must_use]
    pub fn order(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A x = b` using the stored factors.
    ///
    /// # Errors
    /// [`LinAlgError::ShapeMismatch`] when `b.len()` differs from the order.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.order();
        if b.len() != n {
            return Err(LinAlgError::ShapeMismatch {
                op: "lu_solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // Apply permutation, then forward substitution on L (unit diagonal).
        let mut x: Vec<f64> = self.perm.iter().map(|&i| b[i]).collect();
        for i in 1..n {
            let mut s = x[i];
            for j in 0..i {
                s -= self.lu[(i, j)] * x[j];
            }
            x[i] = s;
        }
        // Back substitution on U.
        for i in (0..n).rev() {
            let mut s = x[i];
            for j in i + 1..n {
                s -= self.lu[(i, j)] * x[j];
            }
            x[i] = s / self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Determinant of the original matrix.
    #[must_use]
    pub fn det(&self) -> f64 {
        let mut d = self.perm_sign;
        for i in 0..self.order() {
            d *= self.lu[(i, i)];
        }
        d
    }
}

/// One-shot solve of `A x = b`.
///
/// # Errors
/// Propagates factorization and shape errors.
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    Lu::factor(a)?.solve(b)
}

/// Inverse of a square matrix (column-by-column solve).
///
/// # Errors
/// Propagates factorization errors.
pub fn inverse(a: &Matrix) -> Result<Matrix> {
    let n = a.rows();
    let lu = Lu::factor(a)?;
    let mut inv = Matrix::zeros(n, n);
    let mut e = vec![0.0; n];
    for j in 0..n {
        e[j] = 1.0;
        let col = lu.solve(&e)?;
        e[j] = 0.0;
        for i in 0..n {
            inv[(i, j)] = col[i];
        }
    }
    Ok(inv)
}

/// Determinant via LU; zero when the matrix is singular.
///
/// # Errors
/// [`LinAlgError::NotSquare`] for rectangular input.
pub fn det(a: &Matrix) -> Result<f64> {
    if !a.is_square() {
        return Err(LinAlgError::NotSquare { shape: a.shape() });
    }
    match Lu::factor(a) {
        Ok(lu) => Ok(lu.det()),
        Err(LinAlgError::Singular { .. }) => Ok(0.0),
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq_slice;

    fn mat(rows: usize, cols: usize, v: &[f64]) -> Matrix {
        Matrix::from_vec(rows, cols, v.to_vec()).unwrap()
    }

    #[test]
    fn solve_known_system() {
        // 2x + y = 5 ; x + 3y = 10 → x = 1, y = 3.
        let a = mat(2, 2, &[2.0, 1.0, 1.0, 3.0]);
        let x = solve(&a, &[5.0, 10.0]).unwrap();
        assert!(approx_eq_slice(&x, &[1.0, 3.0], 1e-10));
    }

    #[test]
    fn solve_requires_pivoting() {
        // Leading zero forces a row swap.
        let a = mat(2, 2, &[0.0, 1.0, 1.0, 0.0]);
        let x = solve(&a, &[2.0, 3.0]).unwrap();
        assert!(approx_eq_slice(&x, &[3.0, 2.0], 1e-12));
    }

    #[test]
    fn singular_detected() {
        let a = mat(2, 2, &[1.0, 2.0, 2.0, 4.0]);
        assert!(matches!(
            solve(&a, &[1.0, 2.0]),
            Err(LinAlgError::Singular { .. })
        ));
        assert_eq!(det(&a).unwrap(), 0.0);
    }

    #[test]
    fn rectangular_rejected() {
        let a = mat(2, 3, &[1.0; 6]);
        assert!(matches!(Lu::factor(&a), Err(LinAlgError::NotSquare { .. })));
    }

    #[test]
    fn det_with_permutation_sign() {
        let a = mat(2, 2, &[0.0, 1.0, 1.0, 0.0]);
        assert!((det(&a).unwrap() + 1.0).abs() < 1e-12);
        let b = mat(2, 2, &[3.0, 0.0, 0.0, 2.0]);
        assert!((det(&b).unwrap() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_roundtrip() {
        let a = mat(3, 3, &[4.0, 2.0, 0.5, 1.0, 3.0, 1.0, 0.0, 1.0, 2.5]);
        let inv = inverse(&a).unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!(prod.approx_eq(&Matrix::identity(3), 1e-9));
    }

    #[test]
    fn solve_shape_mismatch() {
        let a = Matrix::identity(3);
        let lu = Lu::factor(&a).unwrap();
        assert!(lu.solve(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn solve_residual_small_on_random_like_matrix() {
        // Deterministic pseudo-random fill; checks ‖Ax − b‖ stays tiny.
        let n = 12;
        let a = Matrix::from_fn(n, n, |i, j| {
            let v = ((i * 31 + j * 17 + 7) % 23) as f64 - 11.0;
            if i == j {
                v + 30.0 // diagonally dominant for a well-conditioned test
            } else {
                v
            }
        });
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let x = solve(&a, &b).unwrap();
        let r = a.gemv(&x).unwrap();
        assert!(approx_eq_slice(&r, &b, 1e-8));
    }
}
