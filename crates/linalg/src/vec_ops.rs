//! BLAS-1 style kernels over plain `f64` slices.
//!
//! Gradients in this codebase are `Vec<f64>`; these free functions implement
//! the handful of dense vector kernels the optimizer and the coding schemes
//! need, with debug-mode shape assertions and no hidden allocation.

/// Dot product `x · y`.
///
/// # Panics
/// Panics when the slices have different lengths (a programming error in the
/// caller, not a data-dependent condition).
#[must_use]
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    // Accumulate in eight independent lanes — two 4-wide vector chains —
    // so the loop vectorizes *and* the FMA dependency chain halves (one
    // chain is latency-bound). chunks_exact hoists the bounds checks that
    // would otherwise keep the loop scalar. The lane count and reduction
    // order are a cross-kernel contract: `Matrix::dot_rows4` replicates
    // them exactly so blocked and per-example gradients stay bit-identical.
    let mut acc = [0.0f64; 8];
    let (qxs, rx) = x.as_chunks::<8>();
    let (qys, ry) = y.as_chunks::<8>();
    for (qx, qy) in qxs.iter().zip(qys) {
        for l in 0..8 {
            acc[l] = qx[l].mul_add(qy[l], acc[l]);
        }
    }
    let mut tail = 0.0;
    for (a, b) in rx.iter().zip(ry) {
        tail = a.mul_add(*b, tail);
    }
    reduce8(&acc) + tail
}

/// The 8-lane reduction shared by [`dot`] and `Matrix::dot_rows4`: pairwise
/// within each 4-lane half, then across halves — part of the bit-equality
/// contract between the two.
#[inline]
#[must_use]
pub fn reduce8(acc: &[f64; 8]) -> f64 {
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]))
}

/// `y += alpha * x` (the classic axpy).
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi = xi.mul_add(alpha, *yi);
    }
}

/// `y = alpha * x + beta * y`.
#[inline]
pub fn axpby(alpha: f64, x: &[f64], beta: f64, y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpby: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi = alpha * xi + beta * *yi;
    }
}

/// In-place scaling `x *= alpha`.
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x {
        *xi *= alpha;
    }
}

/// Element-wise sum `out = a + b` into a fresh vector.
#[must_use]
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "add: length mismatch");
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

/// Element-wise difference `out = a - b` into a fresh vector.
#[must_use]
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "sub: length mismatch");
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// Accumulate `acc += x` element-wise.
#[inline]
pub fn add_assign(acc: &mut [f64], x: &[f64]) {
    assert_eq!(acc.len(), x.len(), "add_assign: length mismatch");
    for (a, b) in acc.iter_mut().zip(x) {
        *a += b;
    }
}

/// Euclidean norm `‖x‖₂`, computed with scaling to avoid overflow for the
/// large-magnitude sums produced by summed partial gradients.
#[must_use]
pub fn norm2(x: &[f64]) -> f64 {
    let max = x.iter().fold(0.0f64, |m, v| m.max(v.abs()));
    if max == 0.0 || !max.is_finite() {
        return if max.is_nan() { f64::NAN } else { max };
    }
    let sum: f64 = x.iter().map(|v| (v / max) * (v / max)).sum();
    max * sum.sqrt()
}

/// Infinity norm `‖x‖∞`.
#[must_use]
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0f64, |m, v| m.max(v.abs()))
}

/// Squared Euclidean distance `‖a − b‖₂²`.
#[must_use]
pub fn dist2_sq(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dist2_sq: length mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Returns a zero vector of length `n`.
#[must_use]
pub fn zeros(n: usize) -> Vec<f64> {
    vec![0.0; n]
}

/// Sum of a set of equal-length vectors into a fresh vector.
///
/// Returns `None` when `vs` is empty (the caller decides what an empty sum
/// means; the BCC master never reduces zero messages).
#[must_use]
pub fn sum_vectors<'a, I>(mut vs: I) -> Option<Vec<f64>>
where
    I: Iterator<Item = &'a [f64]>,
{
    let first = vs.next()?;
    let mut acc = first.to_vec();
    for v in vs {
        add_assign(&mut acc, v);
    }
    Some(acc)
}

/// Linear combination `Σ cᵢ·vᵢ` of equal-length vectors into a fresh vector.
///
/// Returns `None` when the iterators are empty.
#[must_use]
pub fn linear_combination<'a, I>(terms: I) -> Option<Vec<f64>>
where
    I: IntoIterator<Item = (f64, &'a [f64])>,
{
    let mut it = terms.into_iter();
    let (c0, v0) = it.next()?;
    let mut acc: Vec<f64> = v0.iter().map(|x| c0 * x).collect();
    for (c, v) in it {
        axpy(c, v, &mut acc);
    }
    Some(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn dot_matches_naive() {
        let x: Vec<f64> = (0..17).map(|i| i as f64).collect();
        let y: Vec<f64> = (0..17).map(|i| (i * 2) as f64).collect();
        let naive: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        assert!(approx_eq(dot(&x, &y), naive, 1e-12));
    }

    #[test]
    fn dot_empty_is_zero() {
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 2.0, 3.0];
        axpy(2.0, &[10.0, 20.0, 30.0], &mut y);
        assert_eq!(y, vec![21.0, 42.0, 63.0]);
    }

    #[test]
    fn axpby_combines() {
        let mut y = vec![1.0, 1.0];
        axpby(2.0, &[3.0, 4.0], -1.0, &mut y);
        assert_eq!(y, vec![5.0, 7.0]);
    }

    #[test]
    fn scale_in_place() {
        let mut x = vec![1.0, -2.0];
        scale(-3.0, &mut x);
        assert_eq!(x, vec![-3.0, 6.0]);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = vec![1.0, 2.0, 3.0];
        let b = vec![0.5, -0.5, 1.5];
        assert_eq!(sub(&add(&a, &b), &b), a);
    }

    #[test]
    fn norm2_scaled_against_overflow() {
        let x = vec![1e200, 1e200];
        let n = norm2(&x);
        assert!(n.is_finite());
        assert!(approx_eq(n, 1e200 * 2.0f64.sqrt(), 1e-9));
    }

    #[test]
    fn norm2_zero_and_inf_norm() {
        assert_eq!(norm2(&[]), 0.0);
        assert_eq!(norm2(&[0.0, 0.0]), 0.0);
        assert_eq!(norm_inf(&[-3.0, 2.0]), 3.0);
    }

    #[test]
    fn sum_vectors_none_on_empty() {
        let empty: Vec<&[f64]> = vec![];
        assert!(sum_vectors(empty.into_iter()).is_none());
    }

    #[test]
    fn sum_vectors_adds_all() {
        let a = [1.0, 2.0];
        let b = [3.0, 4.0];
        let c = [5.0, 6.0];
        let s = sum_vectors([a.as_slice(), b.as_slice(), c.as_slice()].into_iter()).unwrap();
        assert_eq!(s, vec![9.0, 12.0]);
    }

    #[test]
    fn linear_combination_basic() {
        let a = [1.0, 0.0];
        let b = [0.0, 1.0];
        let lc = linear_combination([(2.0, a.as_slice()), (-3.0, b.as_slice())]).unwrap();
        assert_eq!(lc, vec![2.0, -3.0]);
    }

    #[test]
    fn dist2_sq_basic() {
        assert_eq!(dist2_sq(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }
}
