//! Error type shared by all linear-algebra operations.

use std::fmt;

/// Errors produced by dense linear-algebra routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinAlgError {
    /// Operand shapes are incompatible (e.g. `gemv` with mismatched widths).
    ShapeMismatch {
        /// Human-readable description of the failing operation.
        op: &'static str,
        /// Shape of the left operand as `(rows, cols)`.
        lhs: (usize, usize),
        /// Shape of the right operand as `(rows, cols)`.
        rhs: (usize, usize),
    },
    /// The matrix is singular (or numerically singular) where a solve or
    /// inverse was requested.
    Singular {
        /// Pivot index at which elimination broke down.
        pivot: usize,
    },
    /// A routine that requires a square matrix received a rectangular one.
    NotSquare {
        /// Actual shape encountered.
        shape: (usize, usize),
    },
    /// A least-squares system was underdetermined beyond what the routine
    /// supports (fewer rows than columns).
    Underdetermined {
        /// Number of rows (equations).
        rows: usize,
        /// Number of columns (unknowns).
        cols: usize,
    },
    /// An index was out of bounds for the container.
    OutOfBounds {
        /// The offending index.
        index: usize,
        /// Container length along that axis.
        len: usize,
    },
}

impl fmt::Display for LinAlgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in {op}: lhs {}x{} vs rhs {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            Self::Singular { pivot } => {
                write!(f, "matrix is singular (breakdown at pivot {pivot})")
            }
            Self::NotSquare { shape } => {
                write!(f, "expected square matrix, got {}x{}", shape.0, shape.1)
            }
            Self::Underdetermined { rows, cols } => write!(
                f,
                "least-squares system is underdetermined: {rows} rows < {cols} cols"
            ),
            Self::OutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for length {len}")
            }
        }
    }
}

impl std::error::Error for LinAlgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = LinAlgError::ShapeMismatch {
            op: "gemv",
            lhs: (3, 4),
            rhs: (5, 1),
        };
        let s = e.to_string();
        assert!(s.contains("gemv"));
        assert!(s.contains("3x4"));

        assert!(LinAlgError::Singular { pivot: 2 }.to_string().contains('2'));
        assert!(LinAlgError::NotSquare { shape: (2, 3) }
            .to_string()
            .contains("2x3"));
        assert!(LinAlgError::Underdetermined { rows: 1, cols: 4 }
            .to_string()
            .contains("underdetermined"));
        assert!(LinAlgError::OutOfBounds { index: 9, len: 3 }
            .to_string()
            .contains('9'));
    }
}
