//! Cholesky factorization for symmetric positive-definite systems.
//!
//! Used for normal-equation solves (an alternative decoder path for the
//! coded schemes: `aᵀB_F = 1ᵀ` via `B_F B_Fᵀ`) and for the L2-regularized
//! least-squares tests in `bcc-optim`, where `XᵀX + λI` is SPD by
//! construction.

use crate::error::LinAlgError;
use crate::matrix::Matrix;
use crate::Result;

/// Lower-triangular Cholesky factor `L` with `A = L·Lᵀ`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factors a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read; symmetry of the upper part is
    /// the caller's contract (debug-asserted).
    ///
    /// # Errors
    /// [`LinAlgError::NotSquare`] for rectangular input;
    /// [`LinAlgError::Singular`] when a pivot is non-positive (the matrix is
    /// not positive definite).
    pub fn factor(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinAlgError::NotSquare { shape: a.shape() });
        }
        let n = a.rows();
        debug_assert!(
            (0..n)
                .all(|i| (0..i)
                    .all(|j| (a[(i, j)] - a[(j, i)]).abs() <= 1e-9 * (1.0 + a[(i, j)].abs()))),
            "Cholesky input must be symmetric"
        );
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut s = a[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if s <= 1e-14 {
                        return Err(LinAlgError::Singular { pivot: i });
                    }
                    l[(i, i)] = s.sqrt();
                } else {
                    l[(i, j)] = s / l[(j, j)];
                }
            }
        }
        Ok(Self { l })
    }

    /// The lower-triangular factor.
    #[must_use]
    pub fn factor_l(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A x = b` via forward/backward substitution.
    ///
    /// # Errors
    /// [`LinAlgError::ShapeMismatch`] on a bad `b` length.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.l.rows();
        if b.len() != n {
            return Err(LinAlgError::ShapeMismatch {
                op: "cholesky_solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // L y = b.
        let mut y = b.to_vec();
        for i in 0..n {
            let mut s = y[i];
            for j in 0..i {
                s -= self.l[(i, j)] * y[j];
            }
            y[i] = s / self.l[(i, i)];
        }
        // Lᵀ x = y.
        for i in (0..n).rev() {
            let mut s = y[i];
            for j in i + 1..n {
                s -= self.l[(j, i)] * y[j];
            }
            y[i] = s / self.l[(i, i)];
        }
        Ok(y)
    }

    /// `log det A = 2·Σ log L[i,i]` — numerically stable determinant.
    #[must_use]
    pub fn log_det(&self) -> f64 {
        (0..self.l.rows()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }
}

/// One-shot SPD solve.
///
/// # Errors
/// Propagates factorization and shape errors.
pub fn solve_spd(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    Cholesky::factor(a)?.solve(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq_slice;

    fn spd(n: usize) -> Matrix {
        // XᵀX + I over a deterministic X is SPD.
        let x = Matrix::from_fn(n + 2, n, |i, j| ((i * 7 + j * 3) % 5) as f64 - 2.0);
        let mut a = x.transpose().matmul(&x).unwrap();
        for i in 0..n {
            a[(i, i)] += 1.0;
        }
        a
    }

    #[test]
    fn reconstructs_input() {
        let a = spd(6);
        let ch = Cholesky::factor(&a).unwrap();
        let l = ch.factor_l();
        let back = l.matmul(&l.transpose()).unwrap();
        assert!(back.approx_eq(&a, 1e-8));
    }

    #[test]
    fn solve_matches_lu() {
        let a = spd(5);
        let b: Vec<f64> = (0..5).map(|i| (i as f64).cos()).collect();
        let x_ch = solve_spd(&a, &b).unwrap();
        let x_lu = crate::solve::solve(&a, &b).unwrap();
        assert!(approx_eq_slice(&x_ch, &x_lu, 1e-8));
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 1.0]).unwrap(); // eigenvalues 3, −1
        assert!(matches!(
            Cholesky::factor(&a),
            Err(LinAlgError::Singular { .. })
        ));
    }

    #[test]
    fn rejects_rectangular() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            Cholesky::factor(&a),
            Err(LinAlgError::NotSquare { .. })
        ));
    }

    #[test]
    fn log_det_matches_lu_det() {
        let a = spd(4);
        let ch = Cholesky::factor(&a).unwrap();
        let det = crate::solve::det(&a).unwrap();
        assert!((ch.log_det() - det.ln()).abs() < 1e-8);
    }

    #[test]
    fn solve_shape_mismatch() {
        let ch = Cholesky::factor(&spd(3)).unwrap();
        assert!(ch.solve(&[1.0]).is_err());
    }
}
