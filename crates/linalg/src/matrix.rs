//! Row-major dense matrix with the BLAS-2/3 kernels the reproduction needs.

use crate::error::LinAlgError;
use crate::vec_ops;
use crate::Result;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Index, IndexMut};

/// Row-major dense `f64` matrix.
///
/// Rows are contiguous, which matches how the dataset stores examples (one
/// example per row) and makes per-example gradient kernels cache-friendly.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// All-zeros matrix of the given shape.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix of order `n`.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Errors
    /// [`LinAlgError::ShapeMismatch`] when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinAlgError::ShapeMismatch {
                op: "from_vec",
                lhs: (rows, cols),
                rhs: (data.len(), 1),
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Builds a matrix from row slices; all rows must share a length.
    ///
    /// # Errors
    /// [`LinAlgError::ShapeMismatch`] on ragged input.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self> {
        if rows.is_empty() {
            return Ok(Self::zeros(0, 0));
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            if r.len() != cols {
                return Err(LinAlgError::ShapeMismatch {
                    op: "from_rows",
                    lhs: (rows.len(), cols),
                    rhs: (1, r.len()),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Self {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Builds a matrix by evaluating `f(i, j)` at every entry.
    #[must_use]
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Self::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[must_use]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// True when the matrix is square.
    #[must_use]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Immutable view of row `i`.
    ///
    /// # Panics
    /// Panics when `i >= rows` (caller bug).
    #[must_use]
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable view of row `i`.
    #[must_use]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a fresh vector.
    #[must_use]
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "col index {j} out of bounds ({})", self.cols);
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Flat row-major data.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Consumes the matrix returning its flat row-major buffer.
    #[must_use]
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Transpose into a fresh matrix.
    #[must_use]
    pub fn transpose(&self) -> Self {
        let mut t = Self::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix–vector product `y = A x`.
    ///
    /// # Errors
    /// [`LinAlgError::ShapeMismatch`] when `x.len() != cols`.
    pub fn gemv(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.cols {
            return Err(LinAlgError::ShapeMismatch {
                op: "gemv",
                lhs: (self.rows, self.cols),
                rhs: (x.len(), 1),
            });
        }
        Ok((0..self.rows)
            .map(|i| vec_ops::dot(self.row(i), x))
            .collect())
    }

    /// Matrix–vector product `out = A x` into a reused buffer, register-
    /// blocked four rows at a time.
    ///
    /// Each output element is **bit-identical** to `vec_ops::dot(row, x)` —
    /// the blocked loop keeps the exact 4-lane + tail accumulation structure
    /// of [`vec_ops::dot`] per row, it only shares the loads of `x` across
    /// rows. This is the margins kernel of the packed gradient path, where
    /// bit-equality with the per-example path is a contract.
    ///
    /// # Panics
    /// Panics when `x.len() != cols` (caller bug in the hot path; the
    /// fallible API is [`Matrix::gemv`]).
    pub fn gemv_into(&self, x: &[f64], out: &mut Vec<f64>) {
        self.gemv_rows_into(0..self.rows, x, out);
    }

    /// [`Matrix::gemv_into`] over a row range: `out[k] = row_{rows.start+k}·x`
    /// for each row of the range, same bit-equality contract.
    ///
    /// # Panics
    /// Panics when the range exceeds the matrix or `x.len() != cols`.
    pub fn gemv_rows_into(&self, rows: std::ops::Range<usize>, x: &[f64], out: &mut Vec<f64>) {
        assert!(rows.end <= self.rows, "gemv_rows_into: rows out of range");
        assert_eq!(x.len(), self.cols, "gemv_rows_into: dimension mismatch");
        out.clear();
        out.resize(rows.len(), 0.0);
        let mut i = 0;
        while i + 4 <= rows.len() {
            out[i..i + 4].copy_from_slice(&self.dot_rows4(rows.start + i, x));
            i += 4;
        }
        while i < rows.len() {
            out[i] = vec_ops::dot(self.row(rows.start + i), x);
            i += 1;
        }
    }

    /// Blocked 4-row dot: `[dot(row_{i}, x), …, dot(row_{i+3}, x)]`, each
    /// result bit-identical to [`vec_ops::dot`] (same 4-lane + tail
    /// structure), sharing the loads of `x` across the four rows.
    ///
    /// # Panics
    /// Panics when fewer than four rows start at `first_row` or
    /// `x.len() != cols`.
    #[must_use]
    #[inline]
    pub fn dot_rows4(&self, first_row: usize, x: &[f64]) -> [f64; 4] {
        assert!(first_row + 4 <= self.rows, "dot_rows4: rows out of range");
        assert_eq!(x.len(), self.cols, "dot_rows4: dimension mismatch");
        let cols = self.cols;
        let base = first_row * cols;
        let (r0, rest) = self.data[base..base + 4 * cols].split_at(cols);
        let (r1, rest) = rest.split_at(cols);
        let (r2, r3) = rest.split_at(cols);
        // Two explicit 4-lane halves per row (each maps onto one 256-bit
        // register) interleaved across four rows: eight independent FMA
        // chains, no cross-lane shuffles. The lane assignment and the
        // half-pairwise reduction match vec_ops::dot exactly (the
        // bit-equality contract).
        let mut lo = [[0.0f64; 4]; 4];
        let mut hi = [[0.0f64; 4]; 4];
        let (q0s, rem0) = r0.as_chunks::<8>();
        let (q1s, rem1) = r1.as_chunks::<8>();
        let (q2s, rem2) = r2.as_chunks::<8>();
        let (q3s, rem3) = r3.as_chunks::<8>();
        let (qxs, remx) = x.as_chunks::<8>();
        for ((((q0, q1), q2), q3), qx) in q0s.iter().zip(q1s).zip(q2s).zip(q3s).zip(qxs) {
            for l in 0..4 {
                lo[0][l] = q0[l].mul_add(qx[l], lo[0][l]);
                lo[1][l] = q1[l].mul_add(qx[l], lo[1][l]);
                lo[2][l] = q2[l].mul_add(qx[l], lo[2][l]);
                lo[3][l] = q3[l].mul_add(qx[l], lo[3][l]);
                hi[0][l] = q0[4 + l].mul_add(qx[4 + l], hi[0][l]);
                hi[1][l] = q1[4 + l].mul_add(qx[4 + l], hi[1][l]);
                hi[2][l] = q2[4 + l].mul_add(qx[4 + l], hi[2][l]);
                hi[3][l] = q3[4 + l].mul_add(qx[4 + l], hi[3][l]);
            }
        }
        let mut tails = [0.0f64; 4];
        for ((((v0, v1), v2), v3), vx) in rem0.iter().zip(rem1).zip(rem2).zip(rem3).zip(remx) {
            tails[0] = v0.mul_add(*vx, tails[0]);
            tails[1] = v1.mul_add(*vx, tails[1]);
            tails[2] = v2.mul_add(*vx, tails[2]);
            tails[3] = v3.mul_add(*vx, tails[3]);
        }
        let mut out = [0.0f64; 4];
        for r in 0..4 {
            out[r] = ((lo[r][0] + lo[r][1]) + (lo[r][2] + lo[r][3]))
                + ((hi[r][0] + hi[r][1]) + (hi[r][2] + hi[r][3]))
                + tails[r];
        }
        out
    }

    /// Rank-1 row reduction `acc[j] += Σᵢ coeffs[i]·A[first_row + i, j]`,
    /// accumulated in **row order per element** — bit-identical to calling
    /// `vec_ops::axpy(coeffs[i], row_i, acc)` for `i = 0, 1, …` — but
    /// column-tiled so the accumulator stays in registers instead of being
    /// loaded and stored once per row. This is the accumulation kernel of
    /// the packed gradient path; preserving the per-element summation order
    /// is what keeps packed and per-example gradients byte-identical.
    ///
    /// # Panics
    /// Panics when the rows exceed the matrix or `acc.len() != cols`.
    #[inline]
    pub fn accumulate_scaled_rows_from(&self, first_row: usize, coeffs: &[f64], acc: &mut [f64]) {
        assert!(
            first_row + coeffs.len() <= self.rows,
            "accumulate: rows out of range"
        );
        assert_eq!(acc.len(), self.cols, "accumulate: dimension mismatch");
        const TILE: usize = 8;
        let cols = self.cols;
        let base = first_row * cols;
        let mut j0 = 0;
        while j0 + TILE <= cols {
            let mut t = [0.0f64; TILE];
            t.copy_from_slice(&acc[j0..j0 + TILE]);
            for (i, &c) in coeffs.iter().enumerate() {
                let row = &self.data[base + i * cols + j0..base + i * cols + j0 + TILE];
                for l in 0..TILE {
                    // Same fused kernel as vec_ops::axpy, so the packed and
                    // per-example accumulations stay bit-identical.
                    t[l] = row[l].mul_add(c, t[l]);
                }
            }
            acc[j0..j0 + TILE].copy_from_slice(&t);
            j0 += TILE;
        }
        if j0 < cols {
            for (i, &c) in coeffs.iter().enumerate() {
                let row = &self.data[base + i * cols..base + (i + 1) * cols];
                for (a, x) in acc[j0..].iter_mut().zip(&row[j0..]) {
                    *a = x.mul_add(c, *a);
                }
            }
        }
    }

    /// [`Matrix::accumulate_scaled_rows_from`] over all rows.
    ///
    /// # Panics
    /// Panics when `coeffs.len() != rows` or `acc.len() != cols`.
    pub fn accumulate_scaled_rows(&self, coeffs: &[f64], acc: &mut [f64]) {
        assert_eq!(coeffs.len(), self.rows, "accumulate: row count mismatch");
        self.accumulate_scaled_rows_from(0, coeffs, acc);
    }

    /// Transposed matrix–vector product `y = Aᵀ x` without materializing `Aᵀ`.
    ///
    /// # Errors
    /// [`LinAlgError::ShapeMismatch`] when `x.len() != rows`.
    pub fn gemv_t(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.rows {
            return Err(LinAlgError::ShapeMismatch {
                op: "gemv_t",
                lhs: (self.cols, self.rows),
                rhs: (x.len(), 1),
            });
        }
        let mut y = vec![0.0; self.cols];
        for i in 0..self.rows {
            vec_ops::axpy(x[i], self.row(i), &mut y);
        }
        Ok(y)
    }

    /// Matrix–matrix product `C = A B` (naive triple loop with row reuse —
    /// sizes in this codebase are ≤ a few hundred, so no blocking is needed).
    ///
    /// # Errors
    /// [`LinAlgError::ShapeMismatch`] when `self.cols != rhs.rows`.
    pub fn matmul(&self, rhs: &Self) -> Result<Self> {
        if self.cols != rhs.rows {
            return Err(LinAlgError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut c = Self::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                let rrow = rhs.row(k);
                let crow = c.row_mut(i);
                vec_ops::axpy(aik, rrow, crow);
            }
        }
        Ok(c)
    }

    /// Selects the given rows into a fresh matrix (used by decoders that
    /// restrict the coding matrix `B` to the set of finished workers).
    ///
    /// # Errors
    /// [`LinAlgError::OutOfBounds`] when any index exceeds the row count.
    pub fn select_rows(&self, indices: &[usize]) -> Result<Self> {
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &i in indices {
            if i >= self.rows {
                return Err(LinAlgError::OutOfBounds {
                    index: i,
                    len: self.rows,
                });
            }
            data.extend_from_slice(self.row(i));
        }
        Ok(Self {
            rows: indices.len(),
            cols: self.cols,
            data,
        })
    }

    /// Frobenius norm.
    #[must_use]
    pub fn norm_fro(&self) -> f64 {
        vec_ops::norm2(&self.data)
    }

    /// Maximum absolute entry.
    #[must_use]
    pub fn norm_max(&self) -> f64 {
        vec_ops::norm_inf(&self.data)
    }

    /// Element-wise approximate equality.
    #[must_use]
    pub fn approx_eq(&self, other: &Self, tol: f64) -> bool {
        self.shape() == other.shape() && crate::approx_eq_slice(&self.data, &other.data, tol)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            write!(f, "  [")?;
            for j in 0..self.cols.min(8) {
                write!(f, "{:>10.4}", self[(i, j)])?;
                if j + 1 < self.cols.min(8) {
                    write!(f, ", ")?;
                }
            }
            if self.cols > 8 {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap()
    }

    #[test]
    fn shape_accessors() {
        let m = sample();
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert!(!m.is_square());
        assert!(Matrix::identity(3).is_square());
    }

    #[test]
    fn from_vec_rejects_bad_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0]).is_err());
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let r1 = [1.0, 2.0];
        let r2 = [3.0];
        assert!(Matrix::from_rows(&[&r1, &r2]).is_err());
    }

    #[test]
    fn from_rows_empty_is_0x0() {
        let m = Matrix::from_rows(&[]).unwrap();
        assert_eq!(m.shape(), (0, 0));
    }

    #[test]
    fn row_and_col_views() {
        let m = sample();
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.col(2), vec![3.0, 6.0]);
    }

    #[test]
    fn transpose_involution() {
        let m = sample();
        assert!(m.transpose().transpose().approx_eq(&m, 0.0));
        assert_eq!(m.transpose().shape(), (3, 2));
        assert_eq!(m.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn gemv_matches_manual() {
        let m = sample();
        let y = m.gemv(&[1.0, 0.0, -1.0]).unwrap();
        assert_eq!(y, vec![-2.0, -2.0]);
        assert!(m.gemv(&[1.0]).is_err());
    }

    #[test]
    fn gemv_into_bit_equals_per_row_dot() {
        // Ragged shapes exercise both the 4-row block and the scalar tail,
        // and both the 4-lane chunks and the in-row tail.
        for (rows, cols) in [(1, 1), (3, 5), (4, 4), (7, 32), (10, 33), (13, 6)] {
            let m = Matrix::from_fn(rows, cols, |i, j| {
                ((i * 31 + j * 7) as f64).sin() * 1.5 - 0.3
            });
            let x: Vec<f64> = (0..cols).map(|j| (j as f64 * 0.37).cos()).collect();
            let mut out = Vec::new();
            m.gemv_into(&x, &mut out);
            for i in 0..rows {
                let expect = vec_ops::dot(m.row(i), &x);
                assert_eq!(
                    out[i].to_bits(),
                    expect.to_bits(),
                    "row {i} of {rows}x{cols} must be bit-identical to dot"
                );
            }
        }
    }

    #[test]
    fn accumulate_scaled_rows_bit_equals_sequential_axpy() {
        for (rows, cols) in [(1, 1), (5, 3), (4, 8), (9, 32), (6, 35), (20, 17)] {
            let m = Matrix::from_fn(rows, cols, |i, j| ((i * 13 + j) as f64).cos() * 2.0);
            let coeffs: Vec<f64> = (0..rows).map(|i| (i as f64 * 0.11).sin() - 0.4).collect();
            let mut tiled: Vec<f64> = (0..cols).map(|j| j as f64 * 0.01).collect();
            let mut reference = tiled.clone();
            m.accumulate_scaled_rows(&coeffs, &mut tiled);
            for (i, &c) in coeffs.iter().enumerate() {
                vec_ops::axpy(c, m.row(i), &mut reference);
            }
            for (a, b) in tiled.iter().zip(&reference) {
                assert_eq!(a.to_bits(), b.to_bits(), "{rows}x{cols} accumulation");
            }
        }
    }

    #[test]
    fn gemv_t_matches_transpose_gemv() {
        let m = sample();
        let x = [2.0, -1.0];
        let direct = m.gemv_t(&x).unwrap();
        let via_t = m.transpose().gemv(&x).unwrap();
        assert_eq!(direct, via_t);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let m = sample();
        let i3 = Matrix::identity(3);
        assert!(m.matmul(&i3).unwrap().approx_eq(&m, 1e-12));
        let i2 = Matrix::identity(2);
        assert!(i2.matmul(&m).unwrap().approx_eq(&m, 1e-12));
    }

    #[test]
    fn matmul_shape_mismatch() {
        let m = sample();
        assert!(m.matmul(&Matrix::identity(2)).is_err());
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Matrix::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert!(c.approx_eq(
            &Matrix::from_vec(2, 2, vec![2.0, 1.0, 4.0, 3.0]).unwrap(),
            1e-12
        ));
    }

    #[test]
    fn select_rows_subsets() {
        let m = sample();
        let s = m.select_rows(&[1]).unwrap();
        assert_eq!(s.shape(), (1, 3));
        assert_eq!(s.row(0), &[4.0, 5.0, 6.0]);
        assert!(m.select_rows(&[5]).is_err());
    }

    #[test]
    fn from_fn_builds_expected() {
        let m = Matrix::from_fn(2, 2, |i, j| (i * 10 + j) as f64);
        assert_eq!(m[(1, 0)], 10.0);
    }

    #[test]
    fn norms() {
        let m = Matrix::from_vec(1, 2, vec![3.0, 4.0]).unwrap();
        assert!((m.norm_fro() - 5.0).abs() < 1e-12);
        assert_eq!(m.norm_max(), 4.0);
    }
}
