//! Discrete-event simulation (DES) kernel.
//!
//! The virtual cluster replays the master/worker protocol in *virtual time*:
//! worker-finish and message-arrival events are scheduled on a priority
//! queue, and handlers advance a deterministic clock. This gives exact,
//! replayable latency statistics for Monte-Carlo sweeps at a tiny fraction of
//! the wall-clock cost of the threaded runtime.
//!
//! The kernel is deliberately small: a [`VirtualTime`] newtype (ordered,
//! finite `f64`), an [`EventQueue`] with stable FIFO tie-breaking, and a
//! [`Simulation`] driver that pops events and hands them to a handler until
//! the queue drains or the handler stops it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod queue;
pub mod sim;
pub mod time;

pub use queue::EventQueue;
pub use sim::{Simulation, Verdict};
pub use time::VirtualTime;
