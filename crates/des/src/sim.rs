//! The simulation driver: pops events, advances the clock, calls a handler.

use crate::queue::EventQueue;
use crate::time::VirtualTime;

/// Handler's decision after each event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Keep processing events.
    Continue,
    /// Stop the simulation now (e.g. coverage achieved at the master).
    Stop,
}

/// A running simulation over events of type `E`.
///
/// State lives in the handler closure's environment; the kernel owns only
/// the clock and the queue. Handlers may schedule further events through the
/// [`Scheduler`] handle they receive.
pub struct Simulation<E> {
    queue: EventQueue<E>,
    now: VirtualTime,
    processed: u64,
}

/// Scheduling handle passed to event handlers.
pub struct Scheduler<'a, E> {
    queue: &'a mut EventQueue<E>,
    now: VirtualTime,
}

impl<E> Scheduler<'_, E> {
    /// Current virtual time.
    #[must_use]
    pub fn now(&self) -> VirtualTime {
        self.now
    }

    /// Schedules `event` after a non-negative delay from now.
    ///
    /// # Panics
    /// Panics on negative delays — events cannot fire in the past.
    pub fn schedule_in(&mut self, delay: f64, event: E) {
        assert!(
            delay >= 0.0,
            "cannot schedule into the past (delay {delay})"
        );
        self.queue.schedule(self.now + delay, event);
    }

    /// Schedules `event` at an absolute time `at ≥ now`.
    ///
    /// # Panics
    /// Panics when `at` precedes the current time.
    pub fn schedule_at(&mut self, at: VirtualTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past ({at} < {})",
            self.now
        );
        self.queue.schedule(at, event);
    }
}

impl<E> Default for Simulation<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Simulation<E> {
    /// Fresh simulation at time zero.
    #[must_use]
    pub fn new() -> Self {
        Self {
            queue: EventQueue::new(),
            now: VirtualTime::ZERO,
            processed: 0,
        }
    }

    /// Schedules an initial event at absolute time `at`.
    pub fn schedule_at(&mut self, at: VirtualTime, event: E) {
        self.queue.schedule(at, event);
    }

    /// Current virtual time (the timestamp of the last processed event).
    #[must_use]
    pub fn now(&self) -> VirtualTime {
        self.now
    }

    /// Number of events processed so far.
    #[must_use]
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of pending events.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Runs until the queue drains or the handler returns [`Verdict::Stop`];
    /// returns the final virtual time.
    ///
    /// The handler receives each event with a [`Scheduler`] for follow-ups.
    pub fn run(
        &mut self,
        mut handler: impl FnMut(&mut Scheduler<'_, E>, E) -> Verdict,
    ) -> VirtualTime {
        while let Some((t, event)) = self.queue.pop() {
            debug_assert!(t >= self.now, "event queue returned out-of-order event");
            self.now = t;
            self.processed += 1;
            let mut sched = Scheduler {
                queue: &mut self.queue,
                now: t,
            };
            if handler(&mut sched, event) == Verdict::Stop {
                break;
            }
        }
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    enum Ev {
        Ping(u32),
        Stop,
    }

    #[test]
    fn runs_to_drain() {
        let mut sim = Simulation::new();
        sim.schedule_at(VirtualTime::new(1.0), Ev::Ping(1));
        sim.schedule_at(VirtualTime::new(2.5), Ev::Ping(2));
        let mut seen = Vec::new();
        let end = sim.run(|_, e| {
            if let Ev::Ping(k) = e {
                seen.push(k);
            }
            Verdict::Continue
        });
        assert_eq!(seen, vec![1, 2]);
        assert_eq!(end.seconds(), 2.5);
        assert_eq!(sim.processed(), 2);
        assert_eq!(sim.pending(), 0);
    }

    #[test]
    fn stop_halts_early() {
        let mut sim = Simulation::new();
        sim.schedule_at(VirtualTime::new(1.0), Ev::Stop);
        sim.schedule_at(VirtualTime::new(2.0), Ev::Ping(9));
        let end = sim.run(|_, e| match e {
            Ev::Stop => Verdict::Stop,
            Ev::Ping(_) => panic!("must not run after stop"),
        });
        assert_eq!(end.seconds(), 1.0);
        assert_eq!(sim.pending(), 1);
    }

    #[test]
    fn handler_chains_events() {
        // A cascade: each event schedules the next until a counter runs out.
        let mut sim = Simulation::new();
        sim.schedule_at(VirtualTime::ZERO, 5u32);
        let mut fired = 0;
        let end = sim.run(|s, remaining| {
            fired += 1;
            if remaining > 0 {
                s.schedule_in(1.0, remaining - 1);
            }
            Verdict::Continue
        });
        assert_eq!(fired, 6);
        assert_eq!(end.seconds(), 5.0);
    }

    #[test]
    fn clock_is_monotone() {
        let mut sim = Simulation::new();
        for i in 0..50 {
            sim.schedule_at(VirtualTime::new((50 - i) as f64), i);
        }
        let mut last = -1.0;
        sim.run(|s, _| {
            assert!(s.now().seconds() > last);
            last = s.now().seconds();
            Verdict::Continue
        });
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_into_past_panics() {
        let mut sim = Simulation::new();
        sim.schedule_at(VirtualTime::new(1.0), 0u8);
        sim.run(|s, _| {
            s.schedule_at(VirtualTime::new(0.5), 1u8);
            Verdict::Continue
        });
    }
}
