//! Event queue with deterministic FIFO tie-breaking.

use crate::time::VirtualTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Entry in the queue: time, insertion sequence (for stable ties), payload.
struct Entry<E> {
    time: VirtualTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest time pops first,
        // then the lowest sequence number (FIFO among simultaneous events).
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Priority queue of timestamped events.
///
/// Events at equal times pop in insertion order, which makes simulations
/// deterministic independent of heap internals.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` at absolute time `time`.
    pub fn schedule(&mut self, time: VirtualTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Pops the earliest event, if any.
    pub fn pop(&mut self) -> Option<(VirtualTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// Time of the earliest scheduled event without removing it.
    #[must_use]
    pub fn peek_time(&self) -> Option<VirtualTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(VirtualTime::new(3.0), "c");
        q.schedule(VirtualTime::new(1.0), "a");
        q.schedule(VirtualTime::new(2.0), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_fifo() {
        let mut q = EventQueue::new();
        let t = VirtualTime::new(1.0);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(VirtualTime::new(5.0), ());
        assert_eq!(q.peek_time(), Some(VirtualTime::new(5.0)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn clear_empties() {
        let mut q = EventQueue::new();
        q.schedule(VirtualTime::ZERO, 1);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_schedule_pop() {
        let mut q = EventQueue::new();
        q.schedule(VirtualTime::new(2.0), "late");
        q.schedule(VirtualTime::new(1.0), "early");
        assert_eq!(q.pop().unwrap().1, "early");
        q.schedule(VirtualTime::new(0.5), "earlier-but-scheduled-later");
        // Time order still respected relative to remaining events.
        assert_eq!(q.pop().unwrap().1, "earlier-but-scheduled-later");
        assert_eq!(q.pop().unwrap().1, "late");
    }
}
