//! Virtual-time newtype: a finite, totally ordered `f64` in seconds.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, in (simulated) seconds.
///
/// Construction rejects NaN/infinite values so the event queue's ordering is
/// total; negative times are allowed (useful for relative offsets) but the
/// simulation itself starts at [`VirtualTime::ZERO`].
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct VirtualTime(f64);

impl VirtualTime {
    /// Time zero — the start of every simulation.
    pub const ZERO: Self = Self(0.0);

    /// Creates a virtual time.
    ///
    /// # Panics
    /// Panics on NaN or infinite input.
    #[must_use]
    pub fn new(seconds: f64) -> Self {
        assert!(
            seconds.is_finite(),
            "virtual time must be finite, got {seconds}"
        );
        Self(seconds)
    }

    /// Seconds since time zero.
    #[must_use]
    pub fn seconds(self) -> f64 {
        self.0
    }

    /// Saturating maximum of two times.
    #[must_use]
    pub fn max(self, other: Self) -> Self {
        if other.0 > self.0 {
            other
        } else {
            self
        }
    }
}

impl Eq for VirtualTime {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for VirtualTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Finite by construction, so partial_cmp is total here.
        self.0.partial_cmp(&other.0).expect("finite by invariant")
    }
}

impl Add<f64> for VirtualTime {
    type Output = Self;
    fn add(self, rhs: f64) -> Self {
        Self::new(self.0 + rhs)
    }
}

impl AddAssign<f64> for VirtualTime {
    fn add_assign(&mut self, rhs: f64) {
        *self = *self + rhs;
    }
}

impl Sub for VirtualTime {
    type Output = f64;
    fn sub(self, rhs: Self) -> f64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for VirtualTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_total() {
        let a = VirtualTime::new(1.0);
        let b = VirtualTime::new(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(b.max(a), b);
    }

    #[test]
    fn arithmetic() {
        let t = VirtualTime::new(1.5) + 0.5;
        assert_eq!(t.seconds(), 2.0);
        assert_eq!(t - VirtualTime::new(0.5), 1.5);
        let mut u = VirtualTime::ZERO;
        u += 3.0;
        assert_eq!(u.seconds(), 3.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_rejected() {
        let _ = VirtualTime::new(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn addition_overflow_to_inf_rejected() {
        let _ = VirtualTime::new(f64::MAX) + f64::MAX;
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(VirtualTime::new(0.25).to_string(), "0.250000s");
    }
}
