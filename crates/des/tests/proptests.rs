//! Property tests for the DES kernel: ordering, determinism, and clock
//! monotonicity under arbitrary schedules.

use bcc_des::{EventQueue, Simulation, Verdict, VirtualTime};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn queue_pops_sorted_by_time_then_fifo(
        times in prop::collection::vec(0.0..1e6f64, 1..200),
    ) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.schedule(VirtualTime::new(*t), i);
        }
        let mut last_time = f64::NEG_INFINITY;
        let mut seen_at_time: Vec<usize> = Vec::new();
        let mut last_exact = f64::NAN;
        while let Some((t, id)) = q.pop() {
            prop_assert!(t.seconds() >= last_time, "time went backwards");
            if t.seconds() == last_exact {
                // FIFO among equal timestamps: ids increase.
                prop_assert!(seen_at_time.last().is_none_or(|&prev| prev < id));
                seen_at_time.push(id);
            } else {
                seen_at_time.clear();
                seen_at_time.push(id);
                last_exact = t.seconds();
            }
            last_time = t.seconds();
        }
    }

    #[test]
    fn simulation_processes_every_event_exactly_once(
        times in prop::collection::vec(0.0..1e3f64, 1..100),
    ) {
        let mut sim = Simulation::new();
        for (i, t) in times.iter().enumerate() {
            sim.schedule_at(VirtualTime::new(*t), i);
        }
        let mut seen = vec![false; times.len()];
        sim.run(|_, id: usize| {
            assert!(!seen[id], "event {id} delivered twice");
            seen[id] = true;
            Verdict::Continue
        });
        prop_assert!(seen.iter().all(|s| *s), "some event was dropped");
        prop_assert_eq!(sim.processed(), times.len() as u64);
    }

    #[test]
    fn cascades_terminate_and_advance_clock(
        depth in 1usize..50,
        step in 0.001..10.0f64,
    ) {
        let mut sim = Simulation::new();
        sim.schedule_at(VirtualTime::ZERO, depth);
        let end = sim.run(|s, remaining: usize| {
            if remaining > 0 {
                s.schedule_in(step, remaining - 1);
            }
            Verdict::Continue
        });
        prop_assert!((end.seconds() - depth as f64 * step).abs() < 1e-6);
    }

    #[test]
    fn stop_verdict_preserves_pending(
        n_before in 1usize..20,
        n_after in 1usize..20,
    ) {
        let mut sim = Simulation::new();
        // `n_before` events at t < 100, then a stopper at 100, then more.
        for i in 0..n_before {
            sim.schedule_at(VirtualTime::new(i as f64), 0u8);
        }
        sim.schedule_at(VirtualTime::new(100.0), 1u8);
        for i in 0..n_after {
            sim.schedule_at(VirtualTime::new(200.0 + i as f64), 0u8);
        }
        sim.run(|_, kind| if kind == 1 { Verdict::Stop } else { Verdict::Continue });
        prop_assert_eq!(sim.pending(), n_after);
        prop_assert_eq!(sim.processed(), n_before as u64 + 1);
    }
}
