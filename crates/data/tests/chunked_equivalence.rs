//! Property pin: chunked row reads are bit-identical to the in-memory
//! dataset, for every chunk size, LRU bound, and read range — the
//! correctness contract that lets the scale grids swap the resident matrix
//! for a streamed one without touching any numerical result.

use bcc_data::synthetic::{generate, SyntheticConfig};
use bcc_data::ChunkedDataset;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn chunked_reads_match_in_memory_bit_for_bit(
        m in 1usize..80,
        dim in 1usize..12,
        seed in 0u64..1000,
        chunk_rows in 1usize..20,
        max_live in 1usize..4,
        lo_frac in 0.0f64..1.0,
        len_frac in 0.0f64..1.0,
    ) {
        let cfg = SyntheticConfig::small(m, dim, seed);
        let full = generate(&cfg).dataset;
        let d = ChunkedDataset::synthetic(cfg, chunk_rows, max_live);

        let lo = ((m as f64) * lo_frac) as usize;
        let hi = (lo + ((m - lo) as f64 * len_frac) as usize).min(m);
        let read = d.read(lo..hi);
        prop_assert_eq!(read.len(), hi - lo);
        for (i, j) in (lo..hi).enumerate() {
            prop_assert_eq!(read.x(i), full.x(j), "row {} differs", j);
            prop_assert_eq!(read.y(i).to_bits(), full.y(j).to_bits());
        }
        // Re-reading after arbitrary eviction churn stays identical.
        let again = d.read(lo..hi);
        prop_assert_eq!(read.features().as_slice(), again.features().as_slice());
    }

    #[test]
    fn materialize_all_round_trips(
        m in 1usize..60,
        chunk_rows in 1usize..25,
        max_live in 1usize..3,
        seed in 0u64..1000,
    ) {
        let cfg = SyntheticConfig::small(m, 5, seed);
        let d = ChunkedDataset::synthetic(cfg, chunk_rows, max_live);
        prop_assert_eq!(d.materialize_all(), generate(&cfg).dataset);
    }
}
