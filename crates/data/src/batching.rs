//! The BCC batch partition (§III-A, "Data Distribution").
//!
//! > "For a given computational load `r`, we first evenly partition the
//! > entire data set into `⌈m/r⌉` data batches … Each of the batches contains
//! > `r` examples (with the last batch possibly being zero-padded)."
//!
//! We represent a batch as its index set; instead of literally zero-padding
//! the last batch we let it be shorter — summing fewer partial gradients is
//! numerically identical to summing zero-padded ones, and the batch *count*
//! (what the coupon-collector analysis depends on) is unchanged.

use serde::{Deserialize, Serialize};

/// An even partition of example indices `0..m` into `⌈m/r⌉` batches of size
/// `r` (last batch possibly shorter).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Batching {
    m: usize,
    batch_size: usize,
    boundaries: Vec<usize>,
}

impl Batching {
    /// Partitions `m` examples into batches of size `r`.
    ///
    /// # Panics
    /// Panics when `m == 0` or `r == 0`.
    #[must_use]
    pub fn even(m: usize, r: usize) -> Self {
        assert!(m > 0, "cannot batch zero examples");
        assert!(r > 0, "batch size must be positive");
        let count = m.div_ceil(r);
        let mut boundaries = Vec::with_capacity(count + 1);
        for b in 0..=count {
            boundaries.push((b * r).min(m));
        }
        Self {
            m,
            batch_size: r,
            boundaries,
        }
    }

    /// Total number of examples `m`.
    #[must_use]
    pub fn num_examples(&self) -> usize {
        self.m
    }

    /// Nominal batch size `r` (the computational load).
    #[must_use]
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Number of batches `⌈m/r⌉` — the number of "coupon types".
    #[must_use]
    pub fn num_batches(&self) -> usize {
        self.boundaries.len() - 1
    }

    /// Index range of batch `b` as `start..end`.
    ///
    /// # Panics
    /// Panics when `b` is out of range.
    #[must_use]
    pub fn batch_range(&self, b: usize) -> std::ops::Range<usize> {
        assert!(b < self.num_batches(), "batch {b} out of range");
        self.boundaries[b]..self.boundaries[b + 1]
    }

    /// Example indices of batch `b` as a vector.
    #[must_use]
    pub fn batch_indices(&self, b: usize) -> Vec<usize> {
        self.batch_range(b).collect()
    }

    /// Which batch an example belongs to.
    ///
    /// # Panics
    /// Panics when the example index is out of range.
    #[must_use]
    pub fn batch_of(&self, example: usize) -> usize {
        assert!(example < self.m, "example {example} out of range");
        example / self.batch_size
    }

    /// Iterator over all batch ranges.
    pub fn iter(&self) -> impl Iterator<Item = std::ops::Range<usize>> + '_ {
        (0..self.num_batches()).map(|b| self.batch_range(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_division() {
        let b = Batching::even(100, 10);
        assert_eq!(b.num_batches(), 10);
        assert_eq!(b.batch_range(0), 0..10);
        assert_eq!(b.batch_range(9), 90..100);
        assert_eq!(b.batch_size(), 10);
        assert_eq!(b.num_examples(), 100);
    }

    #[test]
    fn ragged_last_batch() {
        let b = Batching::even(10, 4);
        assert_eq!(b.num_batches(), 3);
        assert_eq!(b.batch_range(0), 0..4);
        assert_eq!(b.batch_range(2), 8..10);
        assert_eq!(b.batch_indices(2), vec![8, 9]);
    }

    #[test]
    fn batches_partition_everything() {
        let b = Batching::even(37, 5);
        let mut seen = [false; 37];
        for range in b.iter() {
            for j in range {
                assert!(!seen[j], "example {j} in two batches");
                seen[j] = true;
            }
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn batch_of_inverts_ranges() {
        let b = Batching::even(23, 7);
        for batch in 0..b.num_batches() {
            for j in b.batch_range(batch) {
                assert_eq!(b.batch_of(j), batch);
            }
        }
    }

    #[test]
    fn r_equals_m_single_batch() {
        let b = Batching::even(12, 12);
        assert_eq!(b.num_batches(), 1);
        assert_eq!(b.batch_range(0), 0..12);
    }

    #[test]
    fn r_greater_than_m_single_batch() {
        let b = Batching::even(5, 100);
        assert_eq!(b.num_batches(), 1);
        assert_eq!(b.batch_range(0), 0..5);
    }

    #[test]
    fn r_one_gives_m_batches() {
        let b = Batching::even(6, 1);
        assert_eq!(b.num_batches(), 6);
        assert_eq!(b.batch_indices(3), vec![3]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_batch_size_panics() {
        let _ = Batching::even(5, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_batch_index_panics() {
        let b = Batching::even(5, 2);
        let _ = b.batch_range(3);
    }
}
