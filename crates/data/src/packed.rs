//! Packed per-worker data blocks.
//!
//! The round hot path used to gather examples row by row through
//! [`Dataset::x`] on every iteration. A [`PackedBlock`] materializes an
//! index set **once** into a contiguous row-major block, so round-time
//! access is a linear scan the blocked gradient kernels can stream:
//! "pack once, stream forever". `src_rows` remembers where each packed row
//! came from, so placements round-trip and debugging stays possible.

use crate::dataset::Dataset;
use bcc_linalg::Matrix;

/// A contiguous row-major copy of a set of dataset rows, in gather order.
#[derive(Debug, Clone, PartialEq)]
pub struct PackedBlock {
    /// Packed feature rows (one gathered example per row).
    x: Matrix,
    /// Labels aligned with the packed rows.
    y: Vec<f64>,
    /// For each packed row, the dataset row it was gathered from.
    src_rows: Vec<usize>,
}

impl PackedBlock {
    /// Gathers `rows` (in order) from `data` into one contiguous block.
    ///
    /// The packed row order **is** the gather order — summing gradients over
    /// the block in row order is bit-identical to summing over `rows` in
    /// their given order, which is what keeps packed kernels equal to the
    /// per-example path.
    ///
    /// # Panics
    /// Panics on out-of-range row indices.
    #[must_use]
    pub fn gather(data: &Dataset, rows: &[usize]) -> Self {
        let dim = data.dim();
        // Consecutive runs bulk-copy whole stretches of the row-major
        // feature buffer instead of row-by-row gathers — for the common
        // contiguous-unit layout the entire pack is a handful of memcpys.
        let mut flat = Vec::with_capacity(rows.len() * dim);
        let mut y = Vec::with_capacity(rows.len());
        let features = data.features().as_slice();
        let mut i = 0;
        while i < rows.len() {
            let start = rows[i];
            let mut end = i + 1;
            while end < rows.len() && rows[end] == rows[end - 1] + 1 {
                end += 1;
            }
            let run = end - i;
            flat.extend_from_slice(&features[start * dim..(start + run) * dim]);
            y.extend_from_slice(&data.labels()[start..start + run]);
            i = end;
        }
        let x = Matrix::from_vec(rows.len(), dim, flat).expect("gathered rows share dataset dim");
        Self {
            x,
            y,
            src_rows: rows.to_vec(),
        }
    }

    /// Assembles a block from already-materialized parts: a packed feature
    /// matrix, aligned labels, and the source row each packed row came from.
    /// The constructor for rows that never lived in a [`Dataset`] — e.g.
    /// chunk-streamed generation (see [`crate::chunked`]).
    ///
    /// # Panics
    /// Panics when `x.rows()`, `y.len()` and `src_rows.len()` disagree.
    #[must_use]
    pub fn from_parts(x: Matrix, y: Vec<f64>, src_rows: Vec<usize>) -> Self {
        assert_eq!(x.rows(), y.len(), "features/labels size mismatch");
        assert_eq!(x.rows(), src_rows.len(), "features/src_rows size mismatch");
        Self { x, y, src_rows }
    }

    /// Gathers a contiguous dataset range `start..end` (the common case:
    /// units are contiguous row ranges).
    ///
    /// # Panics
    /// Panics when the range exceeds the dataset.
    #[must_use]
    pub fn from_range(data: &Dataset, range: std::ops::Range<usize>) -> Self {
        let rows: Vec<usize> = range.collect();
        Self::gather(data, &rows)
    }

    /// Number of packed examples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// True when the block holds no examples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Feature dimension `p`.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.x.cols()
    }

    /// Packed feature row `i`.
    #[must_use]
    pub fn x(&self, i: usize) -> &[f64] {
        self.x.row(i)
    }

    /// Label of packed row `i`.
    #[must_use]
    pub fn y(&self, i: usize) -> f64 {
        self.y[i]
    }

    /// The packed feature matrix (row-major, contiguous).
    #[must_use]
    pub fn features(&self) -> &Matrix {
        &self.x
    }

    /// All labels, aligned with the packed rows.
    #[must_use]
    pub fn labels(&self) -> &[f64] {
        &self.y
    }

    /// The dataset row each packed row was gathered from, in pack order.
    #[must_use]
    pub fn src_rows(&self) -> &[usize] {
        &self.src_rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> Dataset {
        let x = Matrix::from_fn(6, 3, |i, j| (i * 10 + j) as f64);
        Dataset::new(x, vec![1.0, -1.0, 1.0, 1.0, -1.0, -1.0])
    }

    #[test]
    fn gather_copies_rows_in_order() {
        let d = data();
        let b = PackedBlock::gather(&d, &[4, 1, 5]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.dim(), 3);
        assert_eq!(b.x(0), d.x(4));
        assert_eq!(b.x(1), d.x(1));
        assert_eq!(b.x(2), d.x(5));
        assert_eq!(b.labels(), &[-1.0, -1.0, -1.0]);
        assert_eq!(b.src_rows(), &[4, 1, 5]);
    }

    #[test]
    fn from_range_matches_gather() {
        let d = data();
        let a = PackedBlock::from_range(&d, 2..5);
        let b = PackedBlock::gather(&d, &[2, 3, 4]);
        assert_eq!(a, b);
    }

    #[test]
    fn rows_are_contiguous_in_memory() {
        let d = data();
        let b = PackedBlock::gather(&d, &[5, 0]);
        assert_eq!(b.features().as_slice().len(), 2 * 3);
        assert_eq!(&b.features().as_slice()[0..3], d.x(5));
        assert_eq!(&b.features().as_slice()[3..6], d.x(0));
    }

    #[test]
    fn empty_gather() {
        let d = data();
        let b = PackedBlock::gather(&d, &[]);
        assert!(b.is_empty());
        assert_eq!(b.len(), 0);
        assert!(b.src_rows().is_empty());
    }
}
