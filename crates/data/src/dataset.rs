//! In-memory training set.

use bcc_linalg::Matrix;
use serde::{Deserialize, Serialize};

/// A supervised dataset: `m` examples of `p` features with labels in `{−1, +1}`
/// (logistic regression in the paper's convention).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    features: Matrix,
    labels: Vec<f64>,
}

impl Dataset {
    /// Builds a dataset from a feature matrix (one example per row) and a
    /// label vector.
    ///
    /// # Panics
    /// Panics when row count and label count disagree.
    #[must_use]
    pub fn new(features: Matrix, labels: Vec<f64>) -> Self {
        assert_eq!(
            features.rows(),
            labels.len(),
            "features/labels size mismatch"
        );
        Self { features, labels }
    }

    /// Number of examples `m`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when the dataset has no examples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Feature dimension `p`.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.features.cols()
    }

    /// Feature row of example `j`.
    #[must_use]
    pub fn x(&self, j: usize) -> &[f64] {
        self.features.row(j)
    }

    /// Label of example `j`.
    #[must_use]
    pub fn y(&self, j: usize) -> f64 {
        self.labels[j]
    }

    /// The full feature matrix.
    #[must_use]
    pub fn features(&self) -> &Matrix {
        &self.features
    }

    /// The full label vector.
    #[must_use]
    pub fn labels(&self) -> &[f64] {
        &self.labels
    }

    /// Extracts the sub-dataset with the given example indices (cloning rows;
    /// used to ship per-worker shards in the cluster runtime).
    ///
    /// # Panics
    /// Panics on out-of-range indices.
    #[must_use]
    pub fn subset(&self, indices: &[usize]) -> Self {
        let rows: Vec<&[f64]> = indices.iter().map(|&j| self.x(j)).collect();
        let features = Matrix::from_rows(&rows).expect("rows share dataset dim");
        let labels = indices.iter().map(|&j| self.y(j)).collect();
        Self { features, labels }
    }

    /// Fraction of examples whose sign(xᵀw) matches the label — a quick
    /// accuracy proxy used by examples and tests.
    #[must_use]
    pub fn sign_accuracy(&self, w: &[f64]) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let correct = (0..self.len())
            .filter(|&j| {
                let margin = bcc_linalg::vec_ops::dot(self.x(j), w);
                margin * self.y(j) > 0.0
            })
            .count();
        correct as f64 / self.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        let x = Matrix::from_vec(3, 2, vec![1.0, 0.0, 0.0, 1.0, -1.0, -1.0]).unwrap();
        Dataset::new(x, vec![1.0, -1.0, -1.0])
    }

    #[test]
    fn accessors() {
        let d = tiny();
        assert_eq!(d.len(), 3);
        assert_eq!(d.dim(), 2);
        assert!(!d.is_empty());
        assert_eq!(d.x(1), &[0.0, 1.0]);
        assert_eq!(d.y(2), -1.0);
        assert_eq!(d.labels(), &[1.0, -1.0, -1.0]);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn size_mismatch_panics() {
        let x = Matrix::zeros(2, 2);
        let _ = Dataset::new(x, vec![1.0]);
    }

    #[test]
    fn subset_extracts_rows() {
        let d = tiny();
        let s = d.subset(&[2, 0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.x(0), &[-1.0, -1.0]);
        assert_eq!(s.y(1), 1.0);
    }

    #[test]
    fn subset_empty() {
        let d = tiny();
        let s = d.subset(&[]);
        assert!(s.is_empty());
    }

    #[test]
    fn sign_accuracy_on_separable() {
        let d = tiny();
        // w = (1, -0.5): margins 1, -0.5, -0.5 → labels 1, -1, -1 all correct.
        assert_eq!(d.sign_accuracy(&[1.0, -0.5]), 1.0);
        // Flipped w misclassifies everything.
        assert_eq!(d.sign_accuracy(&[-1.0, 0.5]), 0.0);
    }
}
