//! The paper's synthetic logistic-regression data model (§III-C).
//!
//! > "We first generate the true weight vector `w*` whose coordinates are
//! > randomly chosen from `{−1, 1}`. Then, we generate each input vector
//! > according to `x ~ 0.5·N(μ₁, I) + 0.5·N(μ₂, I)` where `μ₁ = 1.5/p·w*`
//! > and `μ₂ = −1.5/p·w*`, and its corresponding output label according to
//! > `y ~ Ber(κ)`, with `κ = 1/(exp(xᵀw*) + 1)`."
//!
//! The paper uses `p = 8000` features; the default config keeps that but the
//! examples and benches scale `p` down (the latency model, not the feature
//! count, drives every reproduced effect — see DESIGN.md).

use crate::dataset::Dataset;
use bcc_linalg::{vec_ops, Matrix};
use bcc_stats::dist::{Bernoulli, Gaussian};
use bcc_stats::rng::derive_rng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration of the synthetic generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SyntheticConfig {
    /// Number of examples `m` (the paper calls the dataset size `d` in
    /// §III-C; we keep `m` for consistency with the analysis sections).
    pub num_examples: usize,
    /// Feature dimension `p` (paper: 8000).
    pub dim: usize,
    /// Mixture separation: means are `±separation/p · w*` (paper: 1.5).
    pub separation: f64,
    /// Master seed; all draws derive deterministically from it.
    pub seed: u64,
}

impl SyntheticConfig {
    /// The paper's experimental setting, scaled by the caller's `m`.
    #[must_use]
    pub fn paper(num_examples: usize, seed: u64) -> Self {
        Self {
            num_examples,
            dim: 8000,
            separation: 1.5,
            seed,
        }
    }

    /// A laptop-friendly setting for examples/tests: small `p`, same model.
    #[must_use]
    pub fn small(num_examples: usize, dim: usize, seed: u64) -> Self {
        Self {
            num_examples,
            dim,
            separation: 1.5,
            seed,
        }
    }
}

/// A generated dataset plus the ground-truth weights.
#[derive(Debug, Clone)]
pub struct SyntheticDataset {
    /// The training data.
    pub dataset: Dataset,
    /// The true weight vector `w* ∈ {±1}^p`.
    pub true_weights: Vec<f64>,
}

/// Generates a dataset exactly per the paper's model.
///
/// Deterministic in `config.seed`: weights, mixture choices, features and
/// labels each draw from derived streams.
///
/// # Panics
/// Panics when `num_examples == 0` or `dim == 0`.
#[must_use]
pub fn generate(config: &SyntheticConfig) -> SyntheticDataset {
    assert!(config.num_examples > 0, "need at least one example");
    let true_weights = generate_true_weights(config);
    let (features, labels) = generate_rows(config, &true_weights, 0..config.num_examples);
    SyntheticDataset {
        dataset: Dataset::new(features, labels),
        true_weights,
    }
}

/// The ground-truth weight draw `w* ∈ {±1}^p` (its own RNG stream, so it
/// does not depend on how many examples are ever materialized).
///
/// # Panics
/// Panics when `dim == 0`.
#[must_use]
pub fn generate_true_weights(config: &SyntheticConfig) -> Vec<f64> {
    assert!(config.dim > 0, "need at least one feature");
    let mut wrng = derive_rng(config.seed, WEIGHT_STREAM);
    (0..config.dim)
        .map(|_| if wrng.gen::<bool>() { 1.0 } else { -1.0 })
        .collect()
}

/// Generates the example rows `range` only, bit-identical to the same rows
/// of [`generate`]: each example draws from its own derived stream
/// (`1 + j`), so any sub-range can be materialized independently — the
/// primitive behind chunk-streamed datasets.
///
/// # Panics
/// Panics when `range` exceeds `config.num_examples` or
/// `true_weights.len() != config.dim`.
#[must_use]
pub fn generate_rows(
    config: &SyntheticConfig,
    true_weights: &[f64],
    range: std::ops::Range<usize>,
) -> (Matrix, Vec<f64>) {
    assert!(
        range.end <= config.num_examples,
        "row range {range:?} exceeds the {}-example config",
        config.num_examples
    );
    assert_eq!(
        true_weights.len(),
        config.dim,
        "true weights must match dim"
    );

    let p = config.dim;
    let scale = config.separation / p as f64;
    let gauss = Gaussian::standard();
    let mut features = Matrix::zeros(range.len(), p);
    let mut labels = vec![0.0; range.len()];

    for (i, j) in range.enumerate() {
        let mut xrng = derive_rng(config.seed, 1 + j as u64);
        // Mixture component: ±1 with equal probability.
        let sign = if xrng.gen::<bool>() { 1.0 } else { -1.0 };
        let row = features.row_mut(i);
        for (k, wk) in true_weights.iter().enumerate() {
            row[k] = sign * scale * wk + bcc_stats::dist::Sample::sample(&gauss, &mut xrng);
        }
        let margin = vec_ops::dot(row, true_weights);
        // κ = 1/(exp(xᵀw*) + 1) = σ(−margin), labels in {−1, +1}.
        let kappa = 1.0 / (margin.exp() + 1.0);
        labels[i] = if Bernoulli::new(kappa).sample_bool(&mut xrng) {
            1.0
        } else {
            -1.0
        };
    }

    (features, labels)
}

/// Stream label reserved for the `w*` draw; example streams are `1 + j`.
const WEIGHT_STREAM: u64 = u64::MAX;

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SyntheticConfig {
        SyntheticConfig::small(200, 32, 7)
    }

    #[test]
    fn deterministic_in_seed() {
        let a = generate(&cfg());
        let b = generate(&cfg());
        assert_eq!(a.true_weights, b.true_weights);
        assert_eq!(a.dataset, b.dataset);

        let mut other = cfg();
        other.seed = 8;
        let c = generate(&other);
        assert_ne!(a.dataset.labels(), c.dataset.labels());
    }

    #[test]
    fn generate_rows_matches_full_generation() {
        let c = cfg();
        let full = generate(&c);
        let w = generate_true_weights(&c);
        assert_eq!(w, full.true_weights);
        for range in [0..200, 0..1, 37..118, 199..200, 50..50] {
            let (x, y) = generate_rows(&c, &w, range.clone());
            assert_eq!(x.rows(), range.len());
            for (i, j) in range.clone().enumerate() {
                assert_eq!(x.row(i), full.dataset.x(j), "row {j} must be bit-identical");
                assert_eq!(y[i], full.dataset.y(j));
            }
        }
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn generate_rows_out_of_range_panics() {
        let c = cfg();
        let w = generate_true_weights(&c);
        let _ = generate_rows(&c, &w, 150..201);
    }

    #[test]
    fn shapes_match_config() {
        let g = generate(&cfg());
        assert_eq!(g.dataset.len(), 200);
        assert_eq!(g.dataset.dim(), 32);
        assert_eq!(g.true_weights.len(), 32);
    }

    #[test]
    fn weights_are_plus_minus_one() {
        let g = generate(&cfg());
        assert!(g.true_weights.iter().all(|w| *w == 1.0 || *w == -1.0));
        // Both signs occur with overwhelming probability at p = 32.
        assert!(g.true_weights.contains(&1.0));
        assert!(g.true_weights.iter().any(|w| *w == -1.0));
    }

    #[test]
    fn labels_are_plus_minus_one() {
        let g = generate(&cfg());
        assert!(g.dataset.labels().iter().all(|y| *y == 1.0 || *y == -1.0));
    }

    #[test]
    fn label_frequency_matches_kappa_model() {
        // κ = σ(−xᵀw*); with the small separation the margin is near zero on
        // average, so P(y = 1) should hover near 0.5 but be measurably below
        // it for positive-margin examples. Check the aggregate frequency
        // against the model's own expectation computed from the features.
        let g = generate(&SyntheticConfig::small(5000, 16, 11));
        let mut expected = 0.0;
        for j in 0..g.dataset.len() {
            let margin = bcc_linalg::vec_ops::dot(g.dataset.x(j), &g.true_weights);
            expected += 1.0 / (margin.exp() + 1.0);
        }
        expected /= g.dataset.len() as f64;
        let observed = g.dataset.labels().iter().filter(|y| **y == 1.0).count() as f64
            / g.dataset.len() as f64;
        assert!(
            (observed - expected).abs() < 0.03,
            "observed {observed} vs model expectation {expected}"
        );
    }

    #[test]
    fn paper_config_dimensions() {
        let c = SyntheticConfig::paper(100, 1);
        assert_eq!(c.dim, 8000);
        assert_eq!(c.separation, 1.5);
    }

    #[test]
    #[should_panic(expected = "at least one example")]
    fn zero_examples_panics() {
        let _ = generate(&SyntheticConfig::small(0, 4, 1));
    }
}
