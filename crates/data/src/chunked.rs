//! Chunk-streamed datasets: bounded-memory access to arbitrarily large
//! training sets.
//!
//! The scale grids (`repro scale`) run `n × dim` combinations whose full
//! feature matrix would dwarf the working set actually touched per round —
//! especially on minibatch rounds, where each round reads only a sampled
//! unit subset. A [`ChunkedDataset`] never holds the full matrix: it splits
//! the example index space into fixed-size row chunks and materializes each
//! chunk **on demand** from a [`RowSource`] (a seeded generator or a
//! resident [`Dataset`]), keeping at most `max_live_chunks` alive under LRU
//! eviction. Peak memory is `max_live_chunks · chunk_rows · dim` doubles
//! regardless of the dataset's nominal size.
//!
//! Reads come back as [`BlockRead`]s: when the requested range tiles a
//! chunk exactly, the read is a zero-copy `Arc` clone of the live chunk
//! (pin: [`BlockRead::is_shared`]); otherwise the rows are assembled across
//! chunk boundaries into a fresh [`PackedBlock`]. Either way the bytes are
//! bit-identical to the equivalent in-memory [`Dataset`] rows — the
//! synthetic generator draws every example from its own derived RNG stream
//! (see [`crate::synthetic::generate_rows`]), so chunking can never change
//! the data (pinned by `tests/chunked_equivalence.rs`).

use crate::dataset::Dataset;
use crate::packed::PackedBlock;
use crate::synthetic::{self, SyntheticConfig};
use bcc_linalg::Matrix;
use std::collections::VecDeque;
use std::ops::{Deref, Range};
use std::sync::{Arc, Mutex};

/// Something that can materialize any contiguous row range of a fixed-size
/// dataset. Implementations must be pure: the same range always yields the
/// same bytes, independent of materialization order (that is what makes
/// chunked reads bit-identical to in-memory reads).
pub trait RowSource: Send + Sync {
    /// Total number of examples `m`.
    fn num_examples(&self) -> usize;

    /// Feature dimension `p`.
    fn dim(&self) -> usize;

    /// Materializes rows `range` as a packed block whose `src_rows` are the
    /// dataset row ids.
    fn materialize(&self, range: Range<usize>) -> PackedBlock;
}

/// The paper's synthetic model as a [`RowSource`]: rows are regenerated on
/// demand from the config seed, bit-identical to
/// [`crate::synthetic::generate`] because each example draws from its own
/// derived stream.
#[derive(Debug, Clone)]
pub struct SyntheticSource {
    config: SyntheticConfig,
    true_weights: Vec<f64>,
}

impl SyntheticSource {
    /// Source for `config`; draws `w*` once up front (its own RNG stream).
    ///
    /// # Panics
    /// Panics when `config.dim == 0`.
    #[must_use]
    pub fn new(config: SyntheticConfig) -> Self {
        let true_weights = synthetic::generate_true_weights(&config);
        Self {
            config,
            true_weights,
        }
    }

    /// The ground-truth weight vector `w*`.
    #[must_use]
    pub fn true_weights(&self) -> &[f64] {
        &self.true_weights
    }

    /// The generating config.
    #[must_use]
    pub fn config(&self) -> &SyntheticConfig {
        &self.config
    }
}

impl RowSource for SyntheticSource {
    fn num_examples(&self) -> usize {
        self.config.num_examples
    }

    fn dim(&self) -> usize {
        self.config.dim
    }

    fn materialize(&self, range: Range<usize>) -> PackedBlock {
        let src_rows: Vec<usize> = range.clone().collect();
        let (x, y) = synthetic::generate_rows(&self.config, &self.true_weights, range);
        PackedBlock::from_parts(x, y, src_rows)
    }
}

/// A resident [`Dataset`] as a [`RowSource`] — lets every chunked-path test
/// and tool run against in-memory data, and makes `ChunkedDataset` a strict
/// superset of the old access pattern.
#[derive(Debug, Clone)]
pub struct InMemorySource {
    data: Dataset,
}

impl InMemorySource {
    /// Wraps `data`.
    #[must_use]
    pub fn new(data: Dataset) -> Self {
        Self { data }
    }
}

impl RowSource for InMemorySource {
    fn num_examples(&self) -> usize {
        self.data.len()
    }

    fn dim(&self) -> usize {
        self.data.dim()
    }

    fn materialize(&self, range: Range<usize>) -> PackedBlock {
        PackedBlock::from_range(&self.data, range)
    }
}

/// The result of a chunked read: a zero-copy handle to a live chunk when
/// the range tiled one exactly, or freshly assembled rows otherwise.
/// Derefs to [`PackedBlock`] either way.
#[derive(Debug, Clone)]
pub enum BlockRead {
    /// The range was exactly one chunk: shares the cached block, no copy.
    Shared(Arc<PackedBlock>),
    /// The range crossed chunk boundaries (or was a strict sub-range):
    /// rows were copied out of the live chunks.
    Owned(PackedBlock),
}

impl BlockRead {
    /// `true` for the zero-copy fast path (pins the tiling optimization).
    #[must_use]
    pub fn is_shared(&self) -> bool {
        matches!(self, Self::Shared(_))
    }
}

impl Deref for BlockRead {
    type Target = PackedBlock;

    fn deref(&self) -> &PackedBlock {
        match self {
            Self::Shared(arc) => arc,
            Self::Owned(block) => block,
        }
    }
}

/// LRU bookkeeping for the live chunks. `order` holds chunk ids from
/// least- to most-recently used; `slots[c]` is `Some` iff `c ∈ order`.
#[derive(Debug, Default)]
struct ChunkCache {
    slots: Vec<Option<Arc<PackedBlock>>>,
    order: VecDeque<usize>,
    misses: u64,
}

/// Fixed-size row chunks over a [`RowSource`], materialized on demand with
/// an LRU bound on live chunks. See the module docs for the memory model.
///
/// All reads take `&self` (the cache sits behind a mutex), so one
/// `ChunkedDataset` can back concurrent worker loops.
pub struct ChunkedDataset {
    source: Box<dyn RowSource>,
    chunk_rows: usize,
    max_live: usize,
    cache: Mutex<ChunkCache>,
}

impl std::fmt::Debug for ChunkedDataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChunkedDataset")
            .field("num_examples", &self.num_examples())
            .field("dim", &self.dim())
            .field("chunk_rows", &self.chunk_rows)
            .field("max_live", &self.max_live)
            .finish_non_exhaustive()
    }
}

impl ChunkedDataset {
    /// Chunks `source` into `chunk_rows`-row chunks, keeping at most
    /// `max_live_chunks` materialized at once.
    ///
    /// # Panics
    /// Panics when `chunk_rows == 0`, `max_live_chunks == 0`, or the source
    /// is empty.
    #[must_use]
    pub fn new(source: Box<dyn RowSource>, chunk_rows: usize, max_live_chunks: usize) -> Self {
        assert!(chunk_rows > 0, "chunks need at least one row");
        assert!(max_live_chunks > 0, "need at least one live chunk");
        assert!(source.num_examples() > 0, "need at least one example");
        let num_chunks = source.num_examples().div_ceil(chunk_rows);
        Self {
            source,
            chunk_rows,
            max_live: max_live_chunks,
            cache: Mutex::new(ChunkCache {
                slots: vec![None; num_chunks],
                ..ChunkCache::default()
            }),
        }
    }

    /// Chunked view of the synthetic model (the scale grids' data path).
    #[must_use]
    pub fn synthetic(config: SyntheticConfig, chunk_rows: usize, max_live_chunks: usize) -> Self {
        Self::new(
            Box::new(SyntheticSource::new(config)),
            chunk_rows,
            max_live_chunks,
        )
    }

    /// Total number of examples `m`.
    #[must_use]
    pub fn num_examples(&self) -> usize {
        self.source.num_examples()
    }

    /// Feature dimension `p`.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.source.dim()
    }

    /// Rows per chunk (the last chunk may be shorter).
    #[must_use]
    pub fn chunk_rows(&self) -> usize {
        self.chunk_rows
    }

    /// Number of chunks `⌈m / chunk_rows⌉`.
    #[must_use]
    pub fn num_chunks(&self) -> usize {
        self.num_examples().div_ceil(self.chunk_rows)
    }

    /// The dataset row span of chunk `c`.
    ///
    /// # Panics
    /// Panics when `c` is out of range.
    #[must_use]
    pub fn chunk_span(&self, c: usize) -> Range<usize> {
        assert!(c < self.num_chunks(), "chunk {c} out of range");
        let start = c * self.chunk_rows;
        start..((start + self.chunk_rows).min(self.num_examples()))
    }

    /// Number of chunks currently materialized (≤ `max_live_chunks`).
    #[must_use]
    pub fn live_chunks(&self) -> usize {
        self.cache.lock().expect("chunk cache poisoned").order.len()
    }

    /// How many chunk materializations have run so far (cache misses —
    /// repeat reads of a live chunk do not re-generate).
    #[must_use]
    pub fn materializations(&self) -> u64 {
        self.cache.lock().expect("chunk cache poisoned").misses
    }

    /// Chunk `c`, materializing it on a miss and marking it most recently
    /// used. Handles returned earlier stay valid after eviction (they share
    /// ownership); eviction only drops the cache's own reference.
    ///
    /// # Panics
    /// Panics when `c` is out of range.
    #[must_use]
    pub fn chunk(&self, c: usize) -> Arc<PackedBlock> {
        let span = self.chunk_span(c);
        let mut cache = self.cache.lock().expect("chunk cache poisoned");
        if let Some(block) = &cache.slots[c] {
            let block = Arc::clone(block);
            // Refresh recency.
            if let Some(pos) = cache.order.iter().position(|&id| id == c) {
                cache.order.remove(pos);
            }
            cache.order.push_back(c);
            return block;
        }
        let block = Arc::new(self.source.materialize(span));
        cache.misses += 1;
        cache.slots[c] = Some(Arc::clone(&block));
        cache.order.push_back(c);
        while cache.order.len() > self.max_live {
            let evict = cache.order.pop_front().expect("order non-empty");
            cache.slots[evict] = None;
        }
        block
    }

    /// Rows `range`, bit-identical to the same rows of the backing source.
    /// Zero-copy when `range` is exactly one chunk's span; assembled across
    /// the overlapped chunks otherwise.
    ///
    /// # Panics
    /// Panics when the range exceeds the dataset.
    #[must_use]
    pub fn read(&self, range: Range<usize>) -> BlockRead {
        assert!(
            range.end <= self.num_examples(),
            "row range {range:?} exceeds the {}-example dataset",
            self.num_examples()
        );
        if !range.is_empty()
            && range.start.is_multiple_of(self.chunk_rows)
            && range == self.chunk_span(range.start / self.chunk_rows)
        {
            return BlockRead::Shared(self.chunk(range.start / self.chunk_rows));
        }

        let dim = self.dim();
        let mut flat = Vec::with_capacity(range.len() * dim);
        let mut y = Vec::with_capacity(range.len());
        let mut row = range.start;
        while row < range.end {
            let c = row / self.chunk_rows;
            let span = self.chunk_span(c);
            let chunk = self.chunk(c);
            let lo = row - span.start;
            let hi = range.end.min(span.end) - span.start;
            flat.extend_from_slice(&chunk.features().as_slice()[lo * dim..hi * dim]);
            y.extend_from_slice(&chunk.labels()[lo..hi]);
            row = span.start + hi;
        }
        let x = Matrix::from_vec(range.len(), dim, flat).expect("assembled rows share dim");
        BlockRead::Owned(PackedBlock::from_parts(x, y, range.collect()))
    }

    /// Materializes the whole dataset as a resident [`Dataset`] — the
    /// compatibility bridge for code paths that still need the full matrix
    /// (and the oracle the equivalence tests compare against).
    #[must_use]
    pub fn materialize_all(&self) -> Dataset {
        let dim = self.dim();
        let m = self.num_examples();
        let mut flat = Vec::with_capacity(m * dim);
        let mut labels = Vec::with_capacity(m);
        for c in 0..self.num_chunks() {
            let chunk = self.chunk(c);
            flat.extend_from_slice(chunk.features().as_slice());
            labels.extend_from_slice(chunk.labels());
        }
        let features = Matrix::from_vec(m, dim, flat).expect("chunks share dim");
        Dataset::new(features, labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::generate;

    fn cfg() -> SyntheticConfig {
        SyntheticConfig::small(23, 4, 17)
    }

    fn chunked(chunk_rows: usize, max_live: usize) -> ChunkedDataset {
        ChunkedDataset::synthetic(cfg(), chunk_rows, max_live)
    }

    #[test]
    fn chunk_spans_tile_the_dataset() {
        let d = chunked(5, 2);
        assert_eq!(d.num_chunks(), 5);
        assert_eq!(d.chunk_span(0), 0..5);
        assert_eq!(d.chunk_span(4), 20..23, "last chunk is the remainder");
    }

    #[test]
    fn chunks_match_full_generation() {
        let d = chunked(5, 2);
        let full = generate(&cfg());
        for c in 0..d.num_chunks() {
            let block = d.chunk(c);
            for (i, j) in d.chunk_span(c).enumerate() {
                assert_eq!(block.x(i), full.dataset.x(j), "row {j}");
                assert_eq!(block.y(i), full.dataset.y(j));
                assert_eq!(block.src_rows()[i], j);
            }
        }
    }

    #[test]
    fn lru_bounds_live_chunks_and_rereads_are_hits() {
        let d = chunked(5, 2);
        let _ = d.chunk(0);
        let _ = d.chunk(1);
        assert_eq!(d.live_chunks(), 2);
        assert_eq!(d.materializations(), 2);
        let _ = d.chunk(0); // hit: no new materialization
        assert_eq!(d.materializations(), 2);
        let _ = d.chunk(2); // evicts chunk 1 (0 was refreshed)
        assert_eq!(d.live_chunks(), 2);
        let _ = d.chunk(0); // still live → hit
        assert_eq!(d.materializations(), 3);
        let _ = d.chunk(1); // was evicted → miss
        assert_eq!(d.materializations(), 4);
    }

    #[test]
    fn evicted_chunks_rematerialize_identically() {
        let d = chunked(5, 1);
        let first = d.chunk(3);
        let _ = d.chunk(0); // evicts 3 (max_live = 1)
        let again = d.chunk(3);
        assert!(!Arc::ptr_eq(&first, &again), "chunk was re-materialized");
        assert_eq!(*first, *again, "regeneration is bit-identical");
    }

    #[test]
    fn tiling_read_is_zero_copy() {
        let d = chunked(5, 2);
        let read = d.read(5..10);
        assert!(read.is_shared(), "exact chunk span must share the cache");
        match read {
            BlockRead::Shared(arc) => assert!(Arc::ptr_eq(&arc, &d.chunk(1))),
            BlockRead::Owned(_) => unreachable!(),
        }
        // The remainder chunk tiles too, at its shorter length.
        assert!(d.read(20..23).is_shared());
    }

    #[test]
    fn straddling_reads_assemble_bit_identically() {
        let d = chunked(5, 2);
        let full = generate(&cfg());
        for range in [0..23, 3..8, 4..21, 7..9, 0..5, 22..23, 11..11] {
            let read = d.read(range.clone());
            assert_eq!(read.len(), range.len());
            for (i, j) in range.enumerate() {
                assert_eq!(read.x(i), full.dataset.x(j), "row {j}");
                assert_eq!(read.y(i), full.dataset.y(j));
            }
        }
        assert!(!d.read(3..8).is_shared(), "sub-range reads are copies");
    }

    #[test]
    fn materialize_all_equals_in_memory_generation() {
        let d = chunked(4, 3);
        assert_eq!(d.materialize_all(), generate(&cfg()).dataset);
    }

    #[test]
    fn in_memory_source_round_trips() {
        let data = generate(&cfg()).dataset;
        let d = ChunkedDataset::new(Box::new(InMemorySource::new(data.clone())), 7, 2);
        assert_eq!(d.materialize_all(), data);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn out_of_range_read_panics() {
        let _ = chunked(5, 2).read(20..24);
    }
}
