//! Data-placement bipartite graph (§II).
//!
//! A placement records, for each worker `i`, the index set `Gᵢ` of examples
//! it stores and processes. The paper requires coverage
//! (`∪ N(kᵢ) = {d₁,…,d_m}`) and defines the computational load
//! `r = maxᵢ |Gᵢ|` (Definition 1). Builders for every placement the paper
//! compares live here; the coding schemes pick the builder matching their
//! data-distribution step.

use crate::batching::Batching;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Assignment of example index sets to workers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    num_examples: usize,
    assignments: Vec<Vec<usize>>,
}

impl Placement {
    /// Builds a placement from explicit per-worker index sets.
    ///
    /// # Panics
    /// Panics when any index is out of range or a worker's set contains
    /// duplicates.
    #[must_use]
    pub fn new(num_examples: usize, assignments: Vec<Vec<usize>>) -> Self {
        for (i, g) in assignments.iter().enumerate() {
            let mut seen = vec![false; num_examples];
            for &j in g {
                assert!(j < num_examples, "worker {i}: example {j} out of range");
                assert!(!seen[j], "worker {i}: duplicate example {j}");
                seen[j] = true;
            }
        }
        Self {
            num_examples,
            assignments,
        }
    }

    /// Number of workers `n`.
    #[must_use]
    pub fn num_workers(&self) -> usize {
        self.assignments.len()
    }

    /// Number of examples `m`.
    #[must_use]
    pub fn num_examples(&self) -> usize {
        self.num_examples
    }

    /// Index set `Gᵢ` of worker `i`.
    #[must_use]
    pub fn worker_examples(&self, i: usize) -> &[usize] {
        &self.assignments[i]
    }

    /// Per-worker load `rᵢ = |Gᵢ|`.
    #[must_use]
    pub fn load_of(&self, i: usize) -> usize {
        self.assignments[i].len()
    }

    /// Computational load `r = maxᵢ rᵢ` (Definition 1).
    #[must_use]
    pub fn computational_load(&self) -> usize {
        self.assignments.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Total stored examples `Σ rᵢ` (storage footprint of the cluster).
    #[must_use]
    pub fn total_load(&self) -> usize {
        self.assignments.iter().map(Vec::len).sum()
    }

    /// Average replication factor `Σ rᵢ / m`.
    #[must_use]
    pub fn replication_factor(&self) -> f64 {
        if self.num_examples == 0 {
            return 0.0;
        }
        self.total_load() as f64 / self.num_examples as f64
    }

    /// True when every example is stored by at least one worker — the
    /// coverage requirement `N(k₁) ∪ … ∪ N(kₙ) = {d₁,…,d_m}`.
    #[must_use]
    pub fn covers_all(&self) -> bool {
        let mut seen = vec![false; self.num_examples];
        for g in &self.assignments {
            for &j in g {
                seen[j] = true;
            }
        }
        seen.iter().all(|s| *s)
    }

    /// For each example, how many workers store it.
    #[must_use]
    pub fn replication_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_examples];
        for g in &self.assignments {
            for &j in g {
                counts[j] += 1;
            }
        }
        counts
    }

    // ---------------------------------------------------------------
    // Builders for the placements the paper compares.
    // ---------------------------------------------------------------

    /// **Uncoded** placement: examples are split into `n` disjoint contiguous
    /// shards, one per worker ("no repetition in data among the workers").
    ///
    /// # Panics
    /// Panics when `n == 0` or `m == 0`.
    #[must_use]
    pub fn disjoint_shards(m: usize, n: usize) -> Self {
        assert!(n > 0 && m > 0, "need workers and examples");
        let mut assignments = Vec::with_capacity(n);
        // Spread the remainder so loads differ by at most one.
        let base = m / n;
        let extra = m % n;
        let mut start = 0;
        for i in 0..n {
            let len = base + usize::from(i < extra);
            assignments.push((start..start + len).collect());
            start += len;
        }
        Self::new(m, assignments)
    }

    /// **BCC** placement: partition into `⌈m/r⌉` batches; each worker
    /// independently and uniformly at random picks one batch (§III-A).
    /// Returns the placement plus each worker's chosen batch id.
    pub fn bcc_batched<R: Rng + ?Sized>(
        batching: &Batching,
        n: usize,
        rng: &mut R,
    ) -> (Self, Vec<usize>) {
        assert!(n > 0, "need at least one worker");
        let nb = batching.num_batches();
        let choices: Vec<usize> = (0..n).map(|_| rng.gen_range(0..nb)).collect();
        let assignments = choices.iter().map(|&b| batching.batch_indices(b)).collect();
        (Self::new(batching.num_examples(), assignments), choices)
    }

    /// **Simple randomized** placement: each worker selects `r` of the `m`
    /// examples uniformly at random without replacement (Prior Art §I).
    pub fn random_subsets<R: Rng + ?Sized>(m: usize, n: usize, r: usize, rng: &mut R) -> Self {
        assert!(r > 0 && r <= m, "need 0 < r ≤ m");
        assert!(n > 0, "need at least one worker");
        let mut assignments = Vec::with_capacity(n);
        let mut pool: Vec<usize> = (0..m).collect();
        for _ in 0..n {
            for k in 0..r {
                let j = rng.gen_range(k..m);
                pool.swap(k, j);
            }
            let mut subset = pool[..r].to_vec();
            subset.sort_unstable();
            assignments.push(subset);
        }
        Self::new(m, assignments)
    }

    /// **Cyclic** placement used by the CR/RS/CM coded schemes: worker `i`
    /// stores the window `{i, i+1, …, i+r−1} mod m` (assumes `m = n` as the
    /// paper does for the coded schemes; callers with `m > n` group examples
    /// into "super examples" first).
    ///
    /// # Panics
    /// Panics when `r > n` or `n == 0`.
    #[must_use]
    pub fn cyclic(n: usize, r: usize) -> Self {
        assert!(n > 0, "need at least one worker");
        assert!(r > 0 && r <= n, "cyclic placement needs 0 < r ≤ n");
        let assignments = (0..n)
            .map(|i| {
                let mut w: Vec<usize> = (0..r).map(|k| (i + k) % n).collect();
                w.sort_unstable();
                w
            })
            .collect();
        Self::new(n, assignments)
    }

    /// **Fractional repetition** placement (Tandon et al.): requires
    /// `r | n`; workers are split into `r` groups of `n/r`, and group `g`
    /// replicates the `g`-th disjoint shard of size `r`... more precisely,
    /// the `n/r` workers of each group each store one distinct shard of `r`
    /// examples, and the groups are identical copies. Assumes `m = n`.
    ///
    /// # Panics
    /// Panics unless `r` divides `n`.
    #[must_use]
    pub fn fractional_repetition(n: usize, r: usize) -> Self {
        assert!(
            r > 0 && n.is_multiple_of(r),
            "fractional repetition needs r | n"
        );
        let shards = n / r; // number of disjoint shards of size r
        let assignments = (0..n)
            .map(|i| {
                let shard = i % shards;
                (shard * r..(shard + 1) * r).collect()
            })
            .collect();
        Self::new(n, assignments)
    }

    /// **Heterogeneous random** placement (generalized BCC, §IV): worker `i`
    /// selects `loads[i]` examples uniformly at random without replacement.
    pub fn heterogeneous_random<R: Rng + ?Sized>(m: usize, loads: &[usize], rng: &mut R) -> Self {
        let mut assignments = Vec::with_capacity(loads.len());
        let mut pool: Vec<usize> = (0..m).collect();
        for &ri in loads {
            assert!(ri <= m, "load {ri} exceeds dataset size {m}");
            for k in 0..ri {
                let j = rng.gen_range(k..m);
                pool.swap(k, j);
            }
            let mut subset = pool[..ri].to_vec();
            subset.sort_unstable();
            assignments.push(subset);
        }
        Self::new(m, assignments)
    }

    /// **Load-balancing (LB)** placement (§IV-C baseline): the `m` examples
    /// are distributed without repetition, proportionally to worker speeds
    /// `μᵢ` ("`rᵢ = μᵢ/Σμ · m`"), with remainders to the fastest workers.
    ///
    /// # Panics
    /// Panics when `speeds` is empty or has non-positive entries.
    #[must_use]
    pub fn load_balanced(m: usize, speeds: &[f64]) -> Self {
        assert!(!speeds.is_empty(), "need at least one worker");
        assert!(
            speeds.iter().all(|s| *s > 0.0 && s.is_finite()),
            "speeds must be positive"
        );
        let total: f64 = speeds.iter().sum();
        // Largest-remainder apportionment of m examples.
        let quotas: Vec<f64> = speeds.iter().map(|s| s / total * m as f64).collect();
        let mut loads: Vec<usize> = quotas.iter().map(|q| q.floor() as usize).collect();
        let mut assigned: usize = loads.iter().sum();
        let mut order: Vec<usize> = (0..speeds.len()).collect();
        order.sort_by(|&a, &b| {
            let ra = quotas[a] - quotas[a].floor();
            let rb = quotas[b] - quotas[b].floor();
            rb.partial_cmp(&ra).expect("finite remainders")
        });
        let mut k = 0;
        let n_workers = loads.len();
        while assigned < m {
            loads[order[k % n_workers]] += 1;
            assigned += 1;
            k += 1;
        }
        let mut assignments = Vec::with_capacity(speeds.len());
        let mut start = 0;
        for &len in &loads {
            assignments.push((start..start + len).collect());
            start += len;
        }
        Self::new(m, assignments)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_stats::rng::derive_rng;

    #[test]
    fn disjoint_shards_cover_without_overlap() {
        let p = Placement::disjoint_shards(103, 10);
        assert!(p.covers_all());
        assert_eq!(p.total_load(), 103);
        assert_eq!(p.computational_load(), 11); // ⌈103/10⌉
        assert!(p.replication_counts().iter().all(|c| *c == 1));
    }

    #[test]
    fn disjoint_shards_more_workers_than_examples() {
        let p = Placement::disjoint_shards(3, 5);
        assert!(p.covers_all());
        assert_eq!(p.num_workers(), 5);
        // Two workers hold nothing.
        assert_eq!(
            p.replication_factor(),
            1.0,
            "no repetition in uncoded placement"
        );
    }

    #[test]
    fn bcc_batched_workers_hold_whole_batches() {
        let batching = Batching::even(100, 10);
        let mut rng = derive_rng(1, 0);
        let (p, choices) = Placement::bcc_batched(&batching, 50, &mut rng);
        assert_eq!(p.num_workers(), 50);
        assert_eq!(choices.len(), 50);
        for (i, &b) in choices.iter().enumerate() {
            assert_eq!(p.worker_examples(i), batching.batch_indices(b).as_slice());
        }
        assert_eq!(p.computational_load(), 10);
    }

    #[test]
    fn random_subsets_have_exact_load() {
        let mut rng = derive_rng(2, 0);
        let p = Placement::random_subsets(50, 20, 7, &mut rng);
        for i in 0..20 {
            assert_eq!(p.load_of(i), 7);
            // Sorted and unique by construction.
            let g = p.worker_examples(i);
            assert!(g.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn cyclic_window_wraps() {
        let p = Placement::cyclic(5, 3);
        assert_eq!(p.worker_examples(0), &[0, 1, 2]);
        assert_eq!(p.worker_examples(3), &[0, 3, 4]); // {3,4,0} sorted
        assert!(p.covers_all());
        assert_eq!(p.computational_load(), 3);
        // Every example replicated exactly r times.
        assert!(p.replication_counts().iter().all(|c| *c == 3));
    }

    #[test]
    fn fractional_repetition_structure() {
        let p = Placement::fractional_repetition(6, 2);
        // 3 shards of size 2, each stored by 2 workers.
        assert!(p.covers_all());
        assert_eq!(p.replication_counts(), vec![2; 6]);
        assert_eq!(p.worker_examples(0), p.worker_examples(3));
    }

    #[test]
    #[should_panic(expected = "r | n")]
    fn fractional_repetition_requires_divisibility() {
        let _ = Placement::fractional_repetition(5, 2);
    }

    #[test]
    fn heterogeneous_random_respects_loads() {
        let mut rng = derive_rng(3, 0);
        let loads = vec![1, 5, 0, 3];
        let p = Placement::heterogeneous_random(10, &loads, &mut rng);
        for (i, &l) in loads.iter().enumerate() {
            assert_eq!(p.load_of(i), l);
        }
    }

    #[test]
    fn load_balanced_apportions_exactly_m() {
        let speeds = vec![1.0, 1.0, 1.0, 1.0, 20.0];
        let p = Placement::load_balanced(500, &speeds);
        assert!(p.covers_all());
        assert_eq!(p.total_load(), 500);
        // The fast worker gets the lion's share.
        assert!(p.load_of(4) > p.load_of(0) * 10);
        assert!(p.replication_counts().iter().all(|c| *c == 1));
    }

    #[test]
    fn load_balanced_uniform_speeds_even_split() {
        let p = Placement::load_balanced(10, &[1.0, 1.0, 1.0]);
        let loads: Vec<usize> = (0..3).map(|i| p.load_of(i)).collect();
        assert_eq!(loads.iter().sum::<usize>(), 10);
        assert!(loads.iter().all(|&l| l == 3 || l == 4));
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_examples_rejected() {
        let _ = Placement::new(5, vec![vec![1, 1]]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rejected() {
        let _ = Placement::new(3, vec![vec![3]]);
    }

    #[test]
    fn replication_factor_counts_duplicates() {
        let p = Placement::new(4, vec![vec![0, 1], vec![1, 2], vec![2, 3]]);
        assert!((p.replication_factor() - 1.5).abs() < 1e-12);
        assert!(p.covers_all());
        assert_eq!(p.replication_counts(), vec![1, 2, 2, 1]);
    }
}
