//! Dataset substrate for the BCC reproduction.
//!
//! * [`dataset`] — the in-memory training set (`m` examples × `p` features
//!   plus ±1 labels), stored row-major so per-example gradient kernels stream
//!   contiguously.
//! * [`synthetic`] — the paper's exact data model (§III-C): true weights
//!   `w* ∈ {±1}^p`, features from the Gaussian mixture
//!   `0.5·N(1.5w*/p, I) + 0.5·N(−1.5w*/p, I)`, labels
//!   `y ~ Ber(κ)` with `κ = 1/(exp(xᵀw*) + 1)`.
//! * [`batching`] — the BCC partition of examples into `⌈m/r⌉` batches.
//! * [`placement`] — data-placement bipartite graph (§II): which worker
//!   stores which examples, with coverage/load/replication accounting, and
//!   builders for every placement the paper compares.
//! * [`packed`] — contiguous per-worker row blocks: each worker's assigned
//!   index set gathered once at setup so the round-time gradient kernels
//!   stream linearly instead of gathering by index every iteration.
//! * [`chunked`] — bounded-memory datasets: fixed-size row chunks
//!   materialized on demand from a seeded source with LRU eviction, so the
//!   scale grids never hold the full feature matrix resident.

#![forbid(unsafe_code)]
// Index loops are kept where they mirror the papers' matrix/recurrence
// notation; iterator rewrites would obscure the correspondence.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

pub mod batching;
pub mod chunked;
pub mod dataset;
pub mod packed;
pub mod placement;
pub mod synthetic;

pub use batching::Batching;
pub use chunked::{BlockRead, ChunkedDataset, InMemorySource, RowSource, SyntheticSource};
pub use dataset::Dataset;
pub use packed::PackedBlock;
pub use placement::Placement;
pub use synthetic::SyntheticConfig;
