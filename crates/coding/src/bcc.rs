//! The **Batched Coupon's Collector** scheme (§III) — the paper's
//! contribution.
//!
//! Data distribution: partition the `m` examples into `⌈m/r⌉` batches of
//! size `r`; each worker independently and uniformly at random selects one
//! batch (decentralized, coordination-free). Communication: each worker
//! sends the *sum* of its batch's partial gradients (eq. (12)) — one
//! communication unit. Aggregation: the master keeps the first message per
//! batch, discards repeats, and finishes when all batches are covered; the
//! final gradient sum is the sum of the kept messages.
//!
//! Theorem 1: the expected number of workers the master hears from is
//! `⌈m/r⌉·H_{⌈m/r⌉}` — within a `log` factor of the `m/r` lower bound — and
//! the communication load equals the recovery threshold.

use crate::error::CodingError;
use crate::payload::Payload;
use crate::scheme::{Coverage, Decoder, GradientCodingScheme, ReceiveLog};
use bcc_data::{Batching, Placement};
use bcc_linalg::vec_ops;
use bcc_stats::harmonic::harmonic;
use rand::Rng;

/// The Batched Coupon's Collector scheme.
#[derive(Debug, Clone)]
pub struct BccScheme {
    batching: Batching,
    placement: Placement,
    /// `choices[i]` = batch selected by worker `i`.
    choices: Vec<usize>,
}

impl BccScheme {
    /// Runs the decentralized data-distribution step: every one of the `n`
    /// workers picks one of the `⌈m/r⌉` batches uniformly at random.
    ///
    /// `rng` drives the batch choices; pass a derived per-round RNG for
    /// reproducibility.
    #[must_use]
    pub fn new<R: Rng + ?Sized>(m: usize, n: usize, r: usize, rng: &mut R) -> Self {
        let batching = Batching::even(m, r);
        let (placement, choices) = Placement::bcc_batched(&batching, n, rng);
        Self {
            batching,
            placement,
            choices,
        }
    }

    /// Builds a scheme from explicit batch choices (used by tests and by the
    /// DES backend to replay a specific realization).
    ///
    /// # Panics
    /// Panics when any choice is out of range.
    #[must_use]
    pub fn from_choices(m: usize, r: usize, choices: Vec<usize>) -> Self {
        let batching = Batching::even(m, r);
        let nb = batching.num_batches();
        assert!(
            choices.iter().all(|&b| b < nb),
            "batch choice out of range (have {nb} batches)"
        );
        let assignments = choices.iter().map(|&b| batching.batch_indices(b)).collect();
        let placement = Placement::new(m, assignments);
        Self {
            batching,
            placement,
            choices,
        }
    }

    /// The batch partition.
    #[must_use]
    pub fn batching(&self) -> &Batching {
        &self.batching
    }

    /// Batch chosen by each worker.
    #[must_use]
    pub fn choices(&self) -> &[usize] {
        &self.choices
    }

    /// Whether this realization can complete at all: with finitely many
    /// workers, random selection may leave a batch unchosen (probability
    /// vanishes as `n` grows — Theorem 1's "sufficiently large n").
    #[must_use]
    pub fn covers_all_batches(&self) -> bool {
        let mut seen = vec![false; self.batching.num_batches()];
        for &b in &self.choices {
            seen[b] = true;
        }
        seen.iter().all(|s| *s)
    }

    /// `K_BCC(r) = ⌈m/r⌉ · H_{⌈m/r⌉}` (eq. (2) / Theorem 1).
    #[must_use]
    pub fn theoretical_recovery_threshold(m: usize, r: usize) -> f64 {
        let nb = m.div_ceil(r);
        nb as f64 * harmonic(nb)
    }
}

impl GradientCodingScheme for BccScheme {
    fn name(&self) -> &'static str {
        "bcc"
    }

    fn placement(&self) -> &Placement {
        &self.placement
    }

    fn encode(&self, worker: usize, partials: &[Vec<f64>]) -> Result<Payload, CodingError> {
        if worker >= self.num_workers() {
            return Err(CodingError::UnknownWorker {
                worker,
                num_workers: self.num_workers(),
            });
        }
        let expected = self.placement.load_of(worker);
        if partials.len() != expected {
            return Err(CodingError::MalformedPayload {
                reason: format!(
                    "worker {worker} expected {expected} partial gradients, got {}",
                    partials.len()
                ),
            });
        }
        // eq. (12): z_i = Σ_{j ∈ B_{σ_i}} g_j — maximal in-worker compression.
        let vector = vec_ops::sum_vectors(partials.iter().map(Vec::as_slice)).ok_or(
            CodingError::MalformedPayload {
                reason: "BCC worker holds a non-empty batch by construction".into(),
            },
        )?;
        Ok(Payload::Sum {
            unit: self.choices[worker],
            vector,
        })
    }

    fn decoder(&self) -> Box<dyn Decoder + '_> {
        Box::new(BccDecoder {
            scheme: self,
            log: ReceiveLog::new(self.num_workers()),
            batch_sums: vec![None; self.batching.num_batches()],
            covered: 0,
            covered_units: 0,
        })
    }

    fn analytic_recovery_threshold(&self) -> Option<f64> {
        Some(Self::theoretical_recovery_threshold(
            self.num_examples(),
            self.batching.batch_size(),
        ))
    }
}

/// Master-side BCC aggregation: keep first message per batch, discard
/// repeats, complete on coverage.
struct BccDecoder<'a> {
    scheme: &'a BccScheme,
    log: ReceiveLog,
    batch_sums: Vec<Option<Vec<f64>>>,
    covered: usize,
    /// Units inside the covered batches (the last batch may be ragged).
    covered_units: usize,
}

impl Decoder for BccDecoder<'_> {
    fn receive(&mut self, worker: usize, payload: Payload) -> Result<bool, CodingError> {
        let Payload::Sum { unit, vector } = payload else {
            return Err(CodingError::MalformedPayload {
                reason: "BCC expects Sum payloads".into(),
            });
        };
        if worker < self.scheme.choices.len() && unit != self.scheme.choices[worker] {
            return Err(CodingError::MalformedPayload {
                reason: format!(
                    "worker {worker} claims batch {unit} but selected {}",
                    self.scheme.choices[worker]
                ),
            });
        }
        if unit >= self.batch_sums.len() {
            return Err(CodingError::MalformedPayload {
                reason: format!("batch id {unit} out of range"),
            });
        }
        self.log.record(worker, 1)?;
        // "it discards the message if the master has received the result
        //  from processing the same batch before, and keeps it otherwise."
        if self.batch_sums[unit].is_none() {
            self.covered_units += self.scheme.batching.batch_indices(unit).len();
            self.batch_sums[unit] = Some(vector);
            self.covered += 1;
        }
        Ok(self.is_complete())
    }

    fn is_complete(&self) -> bool {
        self.covered == self.batch_sums.len()
    }

    fn decode(&self) -> Result<Vec<f64>, CodingError> {
        if !self.is_complete() {
            return Err(CodingError::NotComplete {
                received: self.log.messages(),
            });
        }
        vec_ops::sum_vectors(self.batch_sums.iter().flatten().map(Vec::as_slice)).ok_or_else(|| {
            CodingError::DecodingFailed {
                reason: "no batches collected".into(),
            }
        })
    }

    fn messages_received(&self) -> usize {
        self.log.messages()
    }

    fn communication_units(&self) -> usize {
        self.log.units()
    }

    fn coverage(&self) -> Coverage {
        Coverage::new(self.covered_units, self.scheme.num_examples())
    }

    fn decode_partial(&self) -> Result<Vec<f64>, CodingError> {
        vec_ops::sum_vectors(self.batch_sums.iter().flatten().map(Vec::as_slice)).ok_or(
            CodingError::NotComplete {
                received: self.log.messages(),
            },
        )
    }

    fn partial_sum_terms(&self) -> Option<Vec<(f64, &[f64])>> {
        let terms: Vec<_> = self
            .batch_sums
            .iter()
            .flatten()
            .map(|v| (1.0, v.as_slice()))
            .collect();
        (!terms.is_empty()).then_some(terms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::test_support::{random_gradients, total_sum, worker_partials};
    use bcc_stats::rng::derive_rng;

    fn run_all_workers(scheme: &BccScheme, grads: &[Vec<f64>], order: &[usize]) -> Vec<f64> {
        let mut dec = scheme.decoder();
        for &i in order {
            let partials = worker_partials(scheme.placement(), i, grads);
            let payload = scheme.encode(i, &partials).unwrap();
            if dec.receive(i, payload).unwrap() {
                break;
            }
        }
        dec.decode().unwrap()
    }

    #[test]
    fn decode_recovers_exact_sum() {
        let (m, n, r, p) = (20, 40, 5, 3);
        let mut rng = derive_rng(7, 0);
        // Retry the random distribution until it covers (n ≫ batches ⇒ rare).
        let scheme = loop {
            let s = BccScheme::new(m, n, r, &mut rng);
            if s.covers_all_batches() {
                break s;
            }
        };
        let grads = random_gradients(m, p, 11);
        let order: Vec<usize> = (0..n).collect();
        let sum = run_all_workers(&scheme, &grads, &order);
        assert!(bcc_linalg::approx_eq_slice(&sum, &total_sum(&grads), 1e-9));
    }

    #[test]
    fn arrival_order_does_not_change_result() {
        let m = 12;
        let r = 4;
        // 3 batches; 6 workers with fixed choices covering all batches twice.
        let scheme = BccScheme::from_choices(m, r, vec![0, 1, 2, 0, 1, 2]);
        let grads = random_gradients(m, 2, 5);
        let forward = run_all_workers(&scheme, &grads, &[0, 1, 2, 3, 4, 5]);
        let backward = run_all_workers(&scheme, &grads, &[5, 4, 3, 2, 1, 0]);
        let interleaved = run_all_workers(&scheme, &grads, &[3, 1, 5, 0, 2, 4]);
        assert!(bcc_linalg::approx_eq_slice(&forward, &backward, 1e-9));
        assert!(bcc_linalg::approx_eq_slice(&forward, &interleaved, 1e-9));
        assert!(bcc_linalg::approx_eq_slice(
            &forward,
            &total_sum(&grads),
            1e-9
        ));
    }

    #[test]
    fn completes_early_with_duplicates_discarded() {
        // Workers 0..3 all pick batch 0; worker 4 picks batch 1.
        let scheme = BccScheme::from_choices(8, 4, vec![0, 0, 0, 0, 1]);
        let grads = random_gradients(8, 2, 9);
        let mut dec = scheme.decoder();
        for i in 0..4 {
            let partials = worker_partials(scheme.placement(), i, &grads);
            let done = dec
                .receive(i, scheme.encode(i, &partials).unwrap())
                .unwrap();
            assert!(!done, "batch 1 still missing");
        }
        let partials = worker_partials(scheme.placement(), 4, &grads);
        assert!(dec
            .receive(4, scheme.encode(4, &partials).unwrap())
            .unwrap());
        // 5 messages received, 5 communication units, 2 kept.
        assert_eq!(dec.messages_received(), 5);
        assert_eq!(dec.communication_units(), 5);
        assert!(bcc_linalg::approx_eq_slice(
            &dec.decode().unwrap(),
            &total_sum(&grads),
            1e-9
        ));
    }

    #[test]
    fn ragged_last_batch_exact() {
        // m = 10, r = 4 → batches {0..4},{4..8},{8..10}; last is short.
        let scheme = BccScheme::from_choices(10, 4, vec![0, 1, 2]);
        let grads = random_gradients(10, 3, 13);
        let sum = run_all_workers(&scheme, &grads, &[0, 1, 2]);
        assert!(bcc_linalg::approx_eq_slice(&sum, &total_sum(&grads), 1e-9));
    }

    #[test]
    fn theoretical_threshold_matches_formula() {
        // m/r = 10 batches: K = 10·H_10 ≈ 29.29.
        let k = BccScheme::theoretical_recovery_threshold(100, 10);
        assert!((k - 10.0 * bcc_stats::harmonic::harmonic(10)).abs() < 1e-12);
        assert!((k - 29.289_682_539_682_54).abs() < 1e-9);
        // r = m → one batch → K = 1.
        assert_eq!(BccScheme::theoretical_recovery_threshold(50, 50), 1.0);
    }

    #[test]
    fn empirical_threshold_matches_coupon_collector() {
        // Feed workers in random arrival order; count messages until
        // coverage. Average should approach ⌈m/r⌉·H_{⌈m/r⌉} for n → ∞.
        let (m, r) = (40, 8); // 5 batches → K = 5·H_5 ≈ 11.416
        let expect = BccScheme::theoretical_recovery_threshold(m, r);
        let grads = random_gradients(m, 1, 3);
        let mut rng = derive_rng(21, 0);
        let trials = 400;
        let mut total = 0usize;
        for _ in 0..trials {
            // Effectively infinite workers: draw batch choices on demand.
            let mut dec_choices = Vec::new();
            loop {
                use rand::Rng;
                dec_choices.push(rng.gen_range(0..m.div_ceil(r)));
                let scheme = BccScheme::from_choices(m, r, dec_choices.clone());
                if scheme.covers_all_batches() {
                    let mut dec = scheme.decoder();
                    for i in 0..dec_choices.len() {
                        let partials = worker_partials(scheme.placement(), i, &grads);
                        dec.receive(i, scheme.encode(i, &partials).unwrap())
                            .unwrap();
                    }
                    total += dec.messages_received();
                    break;
                }
            }
        }
        let avg = total as f64 / trials as f64;
        assert!(
            (avg - expect).abs() < 1.0,
            "empirical {avg} vs theoretical {expect}"
        );
    }

    #[test]
    fn mismatched_batch_claim_rejected() {
        let scheme = BccScheme::from_choices(8, 4, vec![0, 1]);
        let mut dec = scheme.decoder();
        assert!(matches!(
            dec.receive(
                0,
                Payload::Sum {
                    unit: 1,
                    vector: vec![0.0; 2]
                }
            ),
            Err(CodingError::MalformedPayload { .. })
        ));
    }

    #[test]
    fn decode_before_complete_errors() {
        let scheme = BccScheme::from_choices(8, 4, vec![0, 1]);
        let dec = scheme.decoder();
        assert!(matches!(
            dec.decode(),
            Err(CodingError::NotComplete { received: 0 })
        ));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_choices_validates() {
        let _ = BccScheme::from_choices(8, 4, vec![5]);
    }
}
