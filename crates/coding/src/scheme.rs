//! The common scheme trait and decoder interface.

use crate::error::CodingError;
use crate::payload::Payload;
use bcc_data::Placement;

/// A gradient-coding scheme: data distribution + worker encoding + master
/// decoding, per §II's `(φᵢ, ψ)` formulation.
///
/// Encoders receive the worker's partial gradients **in the order of
/// [`Placement::worker_examples`]** for that worker; decoders recover the
/// exact sum `Σ_{j=1}^{m} g_j` over all examples.
pub trait GradientCodingScheme: std::fmt::Debug + Send + Sync {
    /// Human-readable scheme name (used in reports and benches).
    fn name(&self) -> &'static str;

    /// The data placement this scheme prescribed.
    fn placement(&self) -> &Placement;

    /// Number of workers `n`.
    fn num_workers(&self) -> usize {
        self.placement().num_workers()
    }

    /// Number of examples `m` (or coded units when `m = n` grouping is in
    /// effect).
    fn num_examples(&self) -> usize {
        self.placement().num_examples()
    }

    /// Worker `i`'s encoding function `φᵢ` (eq. (9)): turns the partial
    /// gradients of `Gᵢ` (in placement order) into a message payload.
    ///
    /// # Errors
    /// [`CodingError::UnknownWorker`] or [`CodingError::MalformedPayload`]
    /// when `partials` does not match the worker's assignment.
    fn encode(&self, worker: usize, partials: &[Vec<f64>]) -> Result<Payload, CodingError>;

    /// Fresh decoder state `ψ` for one iteration (eq. (10)).
    fn decoder(&self) -> Box<dyn Decoder + '_>;

    /// The scheme's *analytic* recovery threshold, when known in closed form:
    /// expected number of workers the master waits for.
    fn analytic_recovery_threshold(&self) -> Option<f64> {
        None
    }

    /// Communication units of worker `i`'s message (Definition 3), without
    /// materializing the payload — used by the cluster backends to charge
    /// transfer time. Default: one combined vector per message; per-example
    /// schemes override with the worker's load.
    fn message_units(&self, worker: usize) -> usize {
        let _ = worker;
        1
    }
}

/// How much of the gradient sum a decoder has recovered so far, counted in
/// coding units (Definition 1's `m`).
///
/// Exact decoders report all-or-nothing coverage; sum/coverage-structured
/// decoders (uncoded shards, BCC batches, fractional-repetition groups,
/// per-example schemes) report the exact number of units whose partial sums
/// are already in hand. Aggregation policies use these counts to rescale
/// partial gradients into unbiased estimates (see
/// `bcc_cluster::policy::FastestK`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Coverage {
    /// Units whose partial-gradient information is recovered.
    pub covered_units: usize,
    /// Units the scheme codes over (`m`).
    pub total_units: usize,
}

impl Coverage {
    /// Coverage of `covered` out of `total` units.
    #[must_use]
    pub fn new(covered: usize, total: usize) -> Self {
        Self {
            covered_units: covered,
            total_units: total,
        }
    }

    /// All-or-nothing coverage: everything when `complete`, else nothing —
    /// the shape exact linear decoders (CR, cyclic-MDS) report.
    #[must_use]
    pub fn all_or_nothing(complete: bool, total: usize) -> Self {
        Self::new(if complete { total } else { 0 }, total)
    }

    /// Covered fraction in `[0, 1]` (`1.0` for the degenerate zero-unit
    /// problem).
    #[must_use]
    pub fn fraction(&self) -> f64 {
        if self.total_units == 0 {
            1.0
        } else {
            self.covered_units as f64 / self.total_units as f64
        }
    }

    /// Whether every unit is covered.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.covered_units == self.total_units
    }
}

/// Incremental master-side decoder for one iteration.
pub trait Decoder {
    /// Feeds one worker message. Returns `true` when the master can now
    /// recover the gradient (the completion condition holds).
    ///
    /// # Errors
    /// Unknown/duplicate workers and malformed payloads are rejected.
    fn receive(&mut self, worker: usize, payload: Payload) -> Result<bool, CodingError>;

    /// True when enough messages have been received to decode.
    fn is_complete(&self) -> bool;

    /// Recovers the exact gradient **sum** `Σ_{j=1}^{m} g_j`.
    ///
    /// # Errors
    /// [`CodingError::NotComplete`] before completion;
    /// [`CodingError::DecodingFailed`] when the linear solve breaks (never
    /// expected for valid constructions).
    fn decode(&self) -> Result<Vec<f64>, CodingError>;

    /// Number of worker messages received so far (the empirical `|W|`).
    fn messages_received(&self) -> usize;

    /// Total communication units received so far (Definition 3 accounting).
    fn communication_units(&self) -> usize;

    /// How many coding units the messages received so far cover.
    ///
    /// Must be monotone in received messages and reach
    /// [`Coverage::is_full`] no later than [`Decoder::is_complete`].
    fn coverage(&self) -> Coverage;

    /// Recovers the **partial** gradient sum over the covered units only —
    /// what approximate aggregation policies consume before the completion
    /// condition holds.
    ///
    /// The default routes through [`Decoder::decode`]: exact decoders whose
    /// intermediate state is not a per-unit sum (the linear-combination
    /// codes) support no partial readout, so before completion they report
    /// [`CodingError::NotComplete`]. Sum-structured decoders override this
    /// with the running sum of their covered units.
    ///
    /// # Errors
    /// [`CodingError::NotComplete`] when nothing recoverable has arrived
    /// (or, for the default, before completion), plus any decode failure.
    fn decode_partial(&self) -> Result<Vec<f64>, CodingError> {
        self.decode()
    }

    /// The decoder's current result expressed as a weighted sum
    /// `Σ cᵢ·vᵢ` over borrowed state vectors, **in the exact term order the
    /// serial decode folds them** — the hook parallel aggregation uses.
    ///
    /// `Some(terms)` promises that folding the terms left-to-right with
    /// `out[k] = c₀·v₀[k]; out[k] = vᵢ[k].mul_add(cᵢ, out[k])` reproduces
    /// [`Decoder::decode`] (when [`Decoder::is_complete`]) or
    /// [`Decoder::decode_partial`] (otherwise) bit-for-bit. Decoders whose
    /// recovery is not a linear combination of stored vectors in a fixed
    /// order (e.g. linear solves) return `None`, and callers must fall back
    /// to the serial entry points. The default is `None`.
    fn partial_sum_terms(&self) -> Option<Vec<(f64, &[f64])>> {
        None
    }
}

/// Shared bookkeeping for decoders: tracks seen workers and unit counts.
#[derive(Debug, Clone, Default)]
pub(crate) struct ReceiveLog {
    seen: Vec<bool>,
    messages: usize,
    units: usize,
}

impl ReceiveLog {
    pub(crate) fn new(num_workers: usize) -> Self {
        Self {
            seen: vec![false; num_workers],
            messages: 0,
            units: 0,
        }
    }

    /// Validates and records an arrival; returns an error for unknown or
    /// duplicate workers.
    pub(crate) fn record(&mut self, worker: usize, units: usize) -> Result<(), CodingError> {
        if worker >= self.seen.len() {
            return Err(CodingError::UnknownWorker {
                worker,
                num_workers: self.seen.len(),
            });
        }
        if self.seen[worker] {
            return Err(CodingError::DuplicateWorker { worker });
        }
        self.seen[worker] = true;
        self.messages += 1;
        self.units += units;
        Ok(())
    }

    pub(crate) fn messages(&self) -> usize {
        self.messages
    }

    pub(crate) fn units(&self) -> usize {
        self.units
    }
}

/// Test helpers shared by scheme unit tests and integration tests.
///
/// Not part of the public API contract; exposed (doc-hidden) so the
/// workspace's integration tests and property tests can drive schemes with
/// synthetic partial gradients without a full dataset.
#[doc(hidden)]
pub mod test_support {
    use bcc_data::Placement;
    use bcc_stats::rng::derive_rng;
    use rand::Rng;

    /// `m` synthetic partial gradients of dimension `p`, deterministic in
    /// `seed`.
    #[must_use]
    pub fn random_gradients(m: usize, p: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = derive_rng(seed, 0x9e37);
        (0..m)
            .map(|_| (0..p).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect()
    }

    /// The partial gradients worker `i` would compute, in placement order.
    #[must_use]
    pub fn worker_partials(
        placement: &Placement,
        worker: usize,
        grads: &[Vec<f64>],
    ) -> Vec<Vec<f64>> {
        placement
            .worker_examples(worker)
            .iter()
            .map(|&j| grads[j].clone())
            .collect()
    }

    /// Exact sum `Σ_j g_j` of all partial gradients.
    #[must_use]
    pub fn total_sum(grads: &[Vec<f64>]) -> Vec<f64> {
        bcc_linalg::vec_ops::sum_vectors(grads.iter().map(Vec::as_slice))
            .expect("non-empty gradient set")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn receive_log_counts() {
        let mut log = ReceiveLog::new(3);
        log.record(0, 1).unwrap();
        log.record(2, 5).unwrap();
        assert_eq!(log.messages(), 2);
        assert_eq!(log.units(), 6);
    }

    #[test]
    fn receive_log_rejects_duplicates() {
        let mut log = ReceiveLog::new(2);
        log.record(1, 1).unwrap();
        assert!(matches!(
            log.record(1, 1),
            Err(CodingError::DuplicateWorker { worker: 1 })
        ));
    }

    #[test]
    fn receive_log_rejects_unknown() {
        let mut log = ReceiveLog::new(2);
        assert!(matches!(
            log.record(5, 1),
            Err(CodingError::UnknownWorker { worker: 5, .. })
        ));
    }
}
