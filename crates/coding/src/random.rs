//! The *simple randomized* prior-art scheme (§I "Prior Art", eqs. (5)–(6)).
//!
//! Each worker selects `r` of the `m` examples uniformly at random and
//! communicates **each computed partial gradient individually** — no
//! in-worker compression. Coverage of examples (not batches) completes the
//! round. Recovery threshold is near-optimal (`≈ (m/r)·log m`) but the
//! communication load blows up to `≈ m·log m` because every message carries
//! `r` gradient-sized units.

use crate::error::CodingError;
use crate::payload::Payload;
use crate::scheme::{Coverage, Decoder, GradientCodingScheme, ReceiveLog};
use bcc_data::Placement;
use bcc_linalg::vec_ops;
use rand::Rng;

/// Simple randomized scheme: uniform `r`-subsets, per-example messages.
#[derive(Debug, Clone)]
pub struct RandomSubsetScheme {
    placement: Placement,
    m: usize,
    r: usize,
}

impl RandomSubsetScheme {
    /// Draws each worker's `r`-subset uniformly at random.
    #[must_use]
    pub fn new<R: Rng + ?Sized>(m: usize, n: usize, r: usize, rng: &mut R) -> Self {
        let placement = Placement::random_subsets(m, n, r, rng);
        Self { placement, m, r }
    }

    /// Builds from an explicit placement (tests / replay).
    ///
    /// # Panics
    /// Panics when the placement is not `r`-uniform.
    #[must_use]
    pub fn from_placement(placement: Placement, r: usize) -> Self {
        for i in 0..placement.num_workers() {
            assert_eq!(placement.load_of(i), r, "worker {i} load must be r = {r}");
        }
        let m = placement.num_examples();
        Self { placement, m, r }
    }

    /// The paper's approximation of the recovery threshold, eq. (5):
    /// `K_random ≈ (m/r)·log m`.
    #[must_use]
    pub fn approx_recovery_threshold(m: usize, r: usize) -> f64 {
        bcc_stats::coupon::random_scheme_approx(m, r)
    }

    /// The paper's approximation of the communication load, eq. (6):
    /// `L_random ≈ m·log m`.
    #[must_use]
    pub fn approx_communication_load(m: usize) -> f64 {
        m as f64 * (m as f64).ln()
    }
}

impl GradientCodingScheme for RandomSubsetScheme {
    fn name(&self) -> &'static str {
        "random"
    }

    fn placement(&self) -> &Placement {
        &self.placement
    }

    fn encode(&self, worker: usize, partials: &[Vec<f64>]) -> Result<Payload, CodingError> {
        if worker >= self.num_workers() {
            return Err(CodingError::UnknownWorker {
                worker,
                num_workers: self.num_workers(),
            });
        }
        let examples = self.placement.worker_examples(worker);
        if partials.len() != examples.len() {
            return Err(CodingError::MalformedPayload {
                reason: format!(
                    "worker {worker} expected {} partial gradients, got {}",
                    examples.len(),
                    partials.len()
                ),
            });
        }
        Ok(Payload::PerExample {
            entries: examples
                .iter()
                .copied()
                .zip(partials.iter().cloned())
                .collect(),
        })
    }

    fn decoder(&self) -> Box<dyn Decoder + '_> {
        Box::new(RandomDecoder {
            log: ReceiveLog::new(self.num_workers()),
            grads: vec![None; self.m],
            covered: 0,
            m: self.m,
            r: self.r,
        })
    }

    fn analytic_recovery_threshold(&self) -> Option<f64> {
        Some(Self::approx_recovery_threshold(self.m, self.r))
    }

    fn message_units(&self, worker: usize) -> usize {
        self.placement.load_of(worker)
    }
}

struct RandomDecoder {
    log: ReceiveLog,
    grads: Vec<Option<Vec<f64>>>,
    covered: usize,
    m: usize,
    r: usize,
}

impl Decoder for RandomDecoder {
    fn receive(&mut self, worker: usize, payload: Payload) -> Result<bool, CodingError> {
        let Payload::PerExample { entries } = payload else {
            return Err(CodingError::MalformedPayload {
                reason: "randomized scheme expects PerExample payloads".into(),
            });
        };
        if entries.len() != self.r {
            return Err(CodingError::MalformedPayload {
                reason: format!("expected {} entries, got {}", self.r, entries.len()),
            });
        }
        // Communication cost: r units regardless of usefulness (eq. (6)).
        self.log.record(worker, entries.len())?;
        for (j, g) in entries {
            if j >= self.m {
                return Err(CodingError::MalformedPayload {
                    reason: format!("example id {j} out of range"),
                });
            }
            if self.grads[j].is_none() {
                self.grads[j] = Some(g);
                self.covered += 1;
            }
        }
        Ok(self.is_complete())
    }

    fn is_complete(&self) -> bool {
        self.covered == self.m
    }

    fn decode(&self) -> Result<Vec<f64>, CodingError> {
        if !self.is_complete() {
            return Err(CodingError::NotComplete {
                received: self.log.messages(),
            });
        }
        vec_ops::sum_vectors(self.grads.iter().flatten().map(Vec::as_slice)).ok_or_else(|| {
            CodingError::DecodingFailed {
                reason: "no gradients collected".into(),
            }
        })
    }

    fn messages_received(&self) -> usize {
        self.log.messages()
    }

    fn communication_units(&self) -> usize {
        self.log.units()
    }

    fn coverage(&self) -> Coverage {
        Coverage::new(self.covered, self.grads.len())
    }

    fn decode_partial(&self) -> Result<Vec<f64>, CodingError> {
        vec_ops::sum_vectors(self.grads.iter().flatten().map(Vec::as_slice)).ok_or(
            CodingError::NotComplete {
                received: self.log.messages(),
            },
        )
    }

    fn partial_sum_terms(&self) -> Option<Vec<(f64, &[f64])>> {
        let terms: Vec<_> = self
            .grads
            .iter()
            .flatten()
            .map(|v| (1.0, v.as_slice()))
            .collect();
        (!terms.is_empty()).then_some(terms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::test_support::{random_gradients, total_sum, worker_partials};
    use bcc_stats::rng::derive_rng;

    fn covering_scheme(m: usize, n: usize, r: usize, seed: u64) -> RandomSubsetScheme {
        let mut rng = derive_rng(seed, 0);
        loop {
            let s = RandomSubsetScheme::new(m, n, r, &mut rng);
            if s.placement().covers_all() {
                return s;
            }
        }
    }

    #[test]
    fn decode_recovers_exact_sum() {
        let (m, n, r, p) = (15, 30, 4, 3);
        let scheme = covering_scheme(m, n, r, 1);
        let grads = random_gradients(m, p, 2);
        let mut dec = scheme.decoder();
        for i in 0..n {
            let partials = worker_partials(scheme.placement(), i, &grads);
            if dec
                .receive(i, scheme.encode(i, &partials).unwrap())
                .unwrap()
            {
                break;
            }
        }
        assert!(dec.is_complete());
        assert!(bcc_linalg::approx_eq_slice(
            &dec.decode().unwrap(),
            &total_sum(&grads),
            1e-9
        ));
    }

    #[test]
    fn communication_units_are_r_per_message() {
        let (m, n, r) = (12, 24, 3);
        let scheme = covering_scheme(m, n, r, 3);
        let grads = random_gradients(m, 2, 4);
        let mut dec = scheme.decoder();
        let mut fed = 0;
        for i in 0..n {
            let partials = worker_partials(scheme.placement(), i, &grads);
            fed += 1;
            if dec
                .receive(i, scheme.encode(i, &partials).unwrap())
                .unwrap()
            {
                break;
            }
        }
        assert_eq!(dec.messages_received(), fed);
        assert_eq!(dec.communication_units(), fed * r);
        // The communication load is r× the message count — the blow-up the
        // paper's eq. (6) describes.
        assert!(dec.communication_units() >= dec.messages_received() * r);
    }

    #[test]
    fn duplicate_examples_kept_once() {
        // Two workers share example 0; the kept copy must not double-count.
        let placement = bcc_data::Placement::new(3, vec![vec![0, 1], vec![0, 2], vec![1, 2]]);
        let scheme = RandomSubsetScheme::from_placement(placement, 2);
        let grads = random_gradients(3, 2, 5);
        let mut dec = scheme.decoder();
        for i in 0..3 {
            let partials = worker_partials(scheme.placement(), i, &grads);
            if dec
                .receive(i, scheme.encode(i, &partials).unwrap())
                .unwrap()
            {
                break;
            }
        }
        assert!(bcc_linalg::approx_eq_slice(
            &dec.decode().unwrap(),
            &total_sum(&grads),
            1e-9
        ));
    }

    #[test]
    fn wrong_entry_count_rejected() {
        let scheme = covering_scheme(6, 12, 2, 7);
        let mut dec = scheme.decoder();
        assert!(matches!(
            dec.receive(
                0,
                Payload::PerExample {
                    entries: vec![(0, vec![1.0])]
                }
            ),
            Err(CodingError::MalformedPayload { .. })
        ));
    }

    #[test]
    fn approximations_match_paper_formulas() {
        let (m, r) = (100usize, 10usize);
        let k = RandomSubsetScheme::approx_recovery_threshold(m, r);
        assert!((k - 10.0 * (100.0f64).ln()).abs() < 1e-12);
        let l = RandomSubsetScheme::approx_communication_load(m);
        assert!((l - 100.0 * (100.0f64).ln()).abs() < 1e-12);
        // L ≈ r·K: each counted worker ships r units.
        assert!((l - r as f64 * k).abs() < 1e-9);
    }
}
