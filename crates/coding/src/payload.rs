//! Worker → master message payloads.
//!
//! The *communication load* (Definition 3) counts message size normalized by
//! the size of one partial gradient, so each payload variant knows its size
//! in those units.

use bcc_linalg::Complex;
use serde::{Deserialize, Serialize};

/// The body of one worker's message for one GD iteration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Payload {
    /// Sum of the partial gradients of one *unit* (a BCC batch or an uncoded
    /// shard), tagged with the unit id so the master can deduplicate.
    Sum {
        /// Batch/shard identifier.
        unit: usize,
        /// `Σ_{j∈unit} g_j`.
        vector: Vec<f64>,
    },
    /// A real linear combination of partial gradients (CR scheme); the
    /// combination coefficients are implied by the scheme's coding matrix
    /// row for the sending worker.
    Linear {
        /// `Σ_j B[i,j]·g_j`.
        vector: Vec<f64>,
    },
    /// A complex linear combination (cyclic-MDS scheme over ℂ).
    LinearComplex {
        /// `Σ_j B[i,j]·g_j` with `B ∈ ℂ^{n×n}`.
        vector: Vec<Complex>,
    },
    /// Individual per-example partial gradients (simple randomized scheme),
    /// tagged with example indices.
    PerExample {
        /// `(example index, g_j)` pairs.
        entries: Vec<(usize, Vec<f64>)>,
    },
}

impl Payload {
    /// Size of this payload in units of one partial gradient
    /// (Definition 3's normalization).
    ///
    /// Following the convention of \[7\]–\[9\] and the paper, a single coded
    /// combination counts as one unit even for the complex-valued cyclic-MDS
    /// scheme (its real representation is twice the bytes; the *unit*
    /// accounting matches the papers so loads are comparable).
    #[must_use]
    pub fn units(&self) -> usize {
        match self {
            Self::Sum { .. } | Self::Linear { .. } | Self::LinearComplex { .. } => 1,
            Self::PerExample { entries } => entries.len(),
        }
    }

    /// Model dimension `p` carried by this payload (0 for empty
    /// `PerExample`).
    #[must_use]
    pub fn dim(&self) -> usize {
        match self {
            Self::Sum { vector, .. } | Self::Linear { vector } => vector.len(),
            Self::LinearComplex { vector } => vector.len(),
            Self::PerExample { entries } => entries.first().map_or(0, |(_, g)| g.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn units_per_variant() {
        assert_eq!(
            Payload::Sum {
                unit: 0,
                vector: vec![0.0; 5]
            }
            .units(),
            1
        );
        assert_eq!(Payload::Linear { vector: vec![1.0] }.units(), 1);
        assert_eq!(
            Payload::LinearComplex {
                vector: vec![Complex::ONE; 3]
            }
            .units(),
            1
        );
        assert_eq!(
            Payload::PerExample {
                entries: vec![(0, vec![1.0]), (3, vec![2.0])]
            }
            .units(),
            2
        );
    }

    #[test]
    fn dim_per_variant() {
        assert_eq!(
            Payload::Sum {
                unit: 1,
                vector: vec![0.0; 7]
            }
            .dim(),
            7
        );
        assert_eq!(
            Payload::PerExample {
                entries: vec![(2, vec![0.0; 4])]
            }
            .dim(),
            4
        );
        assert_eq!(Payload::PerExample { entries: vec![] }.dim(), 0);
    }

    #[test]
    fn serde_roundtrip() {
        let p = Payload::LinearComplex {
            vector: vec![Complex::new(1.5, -2.5)],
        };
        let json = serde_json::to_string(&p).unwrap();
        let back: Payload = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
