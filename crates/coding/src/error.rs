//! Error type for encode/decode operations.

use std::fmt;

/// Errors surfaced by gradient-coding schemes.
#[derive(Debug, Clone, PartialEq)]
pub enum CodingError {
    /// A scheme's structural requirements do not hold for the requested
    /// `(m, n, r)` (e.g. cyclic codes need `m = n`, fractional repetition
    /// needs `r | n`). Returned by the fallible `try_new` constructors.
    InvalidConfig {
        /// Explanation of the violated constraint.
        reason: String,
    },
    /// Decode was requested before the scheme's completion condition held.
    NotComplete {
        /// Messages received so far.
        received: usize,
    },
    /// A worker index outside `0..n` appeared.
    UnknownWorker {
        /// The offending worker id.
        worker: usize,
        /// Number of workers in the scheme.
        num_workers: usize,
    },
    /// The same worker delivered two messages in one round.
    DuplicateWorker {
        /// The offending worker id.
        worker: usize,
    },
    /// A payload had the wrong variant or dimension for this scheme.
    MalformedPayload {
        /// Explanation for logs/tests.
        reason: String,
    },
    /// The decoding linear system could not be solved (should not happen for
    /// valid constructions; surfaced rather than panicking).
    DecodingFailed {
        /// Explanation for logs/tests.
        reason: String,
    },
}

impl fmt::Display for CodingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidConfig { reason } => write!(f, "invalid scheme config: {reason}"),
            Self::NotComplete { received } => {
                write!(f, "decode before completion ({received} messages received)")
            }
            Self::UnknownWorker {
                worker,
                num_workers,
            } => {
                write!(f, "unknown worker {worker} (cluster has {num_workers})")
            }
            Self::DuplicateWorker { worker } => {
                write!(f, "duplicate message from worker {worker}")
            }
            Self::MalformedPayload { reason } => write!(f, "malformed payload: {reason}"),
            Self::DecodingFailed { reason } => write!(f, "decoding failed: {reason}"),
        }
    }
}

impl std::error::Error for CodingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_details() {
        assert!(CodingError::InvalidConfig {
            reason: "needs r | n".into()
        }
        .to_string()
        .contains("r | n"));
        assert!(CodingError::NotComplete { received: 3 }
            .to_string()
            .contains('3'));
        assert!(CodingError::UnknownWorker {
            worker: 9,
            num_workers: 4
        }
        .to_string()
        .contains('9'));
        assert!(CodingError::DuplicateWorker { worker: 2 }
            .to_string()
            .contains('2'));
        assert!(CodingError::MalformedPayload {
            reason: "bad".into()
        }
        .to_string()
        .contains("bad"));
        assert!(CodingError::DecodingFailed {
            reason: "rank".into()
        }
        .to_string()
        .contains("rank"));
    }
}
