//! Ablation scheme: BCC *without* in-worker summation.
//!
//! Remark 3 of the paper credits part of BCC's win to each worker
//! compressing its batch into a single summed message. This ablation keeps
//! BCC's batched random placement and coverage-based completion but ships
//! the batch's partial gradients **individually** — the recovery threshold
//! is unchanged while the communication load multiplies by `r`, isolating
//! the contribution of the summation step.

use crate::error::CodingError;
use crate::payload::Payload;
use crate::scheme::{Coverage, Decoder, GradientCodingScheme, ReceiveLog};
use bcc_data::{Batching, Placement};
use bcc_linalg::vec_ops;
use rand::Rng;

/// BCC placement with per-example (uncompressed) messages.
#[derive(Debug, Clone)]
pub struct UncompressedBccScheme {
    batching: Batching,
    placement: Placement,
    choices: Vec<usize>,
}

impl UncompressedBccScheme {
    /// Same decentralized data distribution as [`crate::BccScheme`].
    #[must_use]
    pub fn new<R: Rng + ?Sized>(m: usize, n: usize, r: usize, rng: &mut R) -> Self {
        let batching = Batching::even(m, r);
        let (placement, choices) = Placement::bcc_batched(&batching, n, rng);
        Self {
            batching,
            placement,
            choices,
        }
    }

    /// Builds from explicit batch choices (tests / replay).
    #[must_use]
    pub fn from_choices(m: usize, r: usize, choices: Vec<usize>) -> Self {
        let batching = Batching::even(m, r);
        let nb = batching.num_batches();
        assert!(
            choices.iter().all(|&b| b < nb),
            "batch choice out of range (have {nb} batches)"
        );
        let assignments = choices.iter().map(|&b| batching.batch_indices(b)).collect();
        let placement = Placement::new(m, assignments);
        Self {
            batching,
            placement,
            choices,
        }
    }

    /// True when every batch was selected by some worker.
    #[must_use]
    pub fn covers_all_batches(&self) -> bool {
        let mut seen = vec![false; self.batching.num_batches()];
        for &b in &self.choices {
            seen[b] = true;
        }
        seen.iter().all(|s| *s)
    }
}

impl GradientCodingScheme for UncompressedBccScheme {
    fn name(&self) -> &'static str {
        "bcc-uncompressed"
    }

    fn placement(&self) -> &Placement {
        &self.placement
    }

    fn encode(&self, worker: usize, partials: &[Vec<f64>]) -> Result<Payload, CodingError> {
        if worker >= self.num_workers() {
            return Err(CodingError::UnknownWorker {
                worker,
                num_workers: self.num_workers(),
            });
        }
        let examples = self.placement.worker_examples(worker);
        if partials.len() != examples.len() {
            return Err(CodingError::MalformedPayload {
                reason: format!(
                    "worker {worker} expected {} partial gradients, got {}",
                    examples.len(),
                    partials.len()
                ),
            });
        }
        Ok(Payload::PerExample {
            entries: examples
                .iter()
                .copied()
                .zip(partials.iter().cloned())
                .collect(),
        })
    }

    fn decoder(&self) -> Box<dyn Decoder + '_> {
        Box::new(UncompressedDecoder {
            log: ReceiveLog::new(self.num_workers()),
            grads: vec![None; self.num_examples()],
            covered: 0,
        })
    }

    fn analytic_recovery_threshold(&self) -> Option<f64> {
        // Same coverage process as BCC — identical K, r× the load.
        Some(crate::BccScheme::theoretical_recovery_threshold(
            self.num_examples(),
            self.batching.batch_size(),
        ))
    }

    fn message_units(&self, worker: usize) -> usize {
        self.placement.load_of(worker)
    }
}

struct UncompressedDecoder {
    log: ReceiveLog,
    grads: Vec<Option<Vec<f64>>>,
    covered: usize,
}

impl Decoder for UncompressedDecoder {
    fn receive(&mut self, worker: usize, payload: Payload) -> Result<bool, CodingError> {
        let Payload::PerExample { entries } = payload else {
            return Err(CodingError::MalformedPayload {
                reason: "uncompressed BCC expects PerExample payloads".into(),
            });
        };
        self.log.record(worker, entries.len())?;
        for (j, g) in entries {
            if j >= self.grads.len() {
                return Err(CodingError::MalformedPayload {
                    reason: format!("example id {j} out of range"),
                });
            }
            if self.grads[j].is_none() {
                self.grads[j] = Some(g);
                self.covered += 1;
            }
        }
        Ok(self.is_complete())
    }

    fn is_complete(&self) -> bool {
        self.covered == self.grads.len()
    }

    fn decode(&self) -> Result<Vec<f64>, CodingError> {
        if !self.is_complete() {
            return Err(CodingError::NotComplete {
                received: self.log.messages(),
            });
        }
        vec_ops::sum_vectors(self.grads.iter().flatten().map(Vec::as_slice)).ok_or_else(|| {
            CodingError::DecodingFailed {
                reason: "no gradients collected".into(),
            }
        })
    }

    fn messages_received(&self) -> usize {
        self.log.messages()
    }

    fn communication_units(&self) -> usize {
        self.log.units()
    }

    fn coverage(&self) -> Coverage {
        Coverage::new(self.covered, self.grads.len())
    }

    fn decode_partial(&self) -> Result<Vec<f64>, CodingError> {
        vec_ops::sum_vectors(self.grads.iter().flatten().map(Vec::as_slice)).ok_or(
            CodingError::NotComplete {
                received: self.log.messages(),
            },
        )
    }

    fn partial_sum_terms(&self) -> Option<Vec<(f64, &[f64])>> {
        let terms: Vec<_> = self
            .grads
            .iter()
            .flatten()
            .map(|v| (1.0, v.as_slice()))
            .collect();
        (!terms.is_empty()).then_some(terms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::test_support::{random_gradients, total_sum, worker_partials};

    #[test]
    fn same_threshold_r_times_the_load() {
        // 3 batches of r = 4 over 12 units; 6 workers, two per batch.
        let choices = vec![0, 1, 2, 0, 1, 2];
        let compressed = crate::BccScheme::from_choices(12, 4, choices.clone());
        let uncompressed = UncompressedBccScheme::from_choices(12, 4, choices);
        let grads = random_gradients(12, 2, 1);

        let run = |scheme: &dyn GradientCodingScheme| {
            let mut dec = scheme.decoder();
            for i in 0..6 {
                let p = worker_partials(scheme.placement(), i, &grads);
                if dec.receive(i, scheme.encode(i, &p).unwrap()).unwrap() {
                    break;
                }
            }
            (
                dec.decode().unwrap(),
                dec.messages_received(),
                dec.communication_units(),
            )
        };
        let (sum_c, k_c, l_c) = run(&compressed);
        let (sum_u, k_u, l_u) = run(&uncompressed);
        assert!(bcc_linalg::approx_eq_slice(&sum_c, &sum_u, 1e-9));
        assert!(bcc_linalg::approx_eq_slice(
            &sum_c,
            &total_sum(&grads),
            1e-9
        ));
        // Identical coverage behaviour, r× the communication.
        assert_eq!(k_c, k_u);
        assert_eq!(l_c, k_c);
        assert_eq!(l_u, k_u * 4);
    }

    #[test]
    fn message_units_equal_load() {
        let s = UncompressedBccScheme::from_choices(8, 4, vec![0, 1]);
        assert_eq!(s.message_units(0), 4);
        assert!(s.covers_all_batches());
    }

    #[test]
    fn analytic_threshold_matches_bcc() {
        let s = UncompressedBccScheme::from_choices(20, 5, vec![0, 1, 2, 3]);
        assert_eq!(
            s.analytic_recovery_threshold(),
            Some(crate::BccScheme::theoretical_recovery_threshold(20, 5))
        );
    }
}
