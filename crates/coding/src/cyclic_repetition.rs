//! Cyclic-repetition (CR) gradient coding — Tandon, Lei, Dimakis,
//! Karampatziakis, *"Gradient Coding"* \[7\]; the paper's main coded baseline.
//!
//! With `m = n` data units and computational load `r`, the scheme tolerates
//! any `s = r − 1` stragglers: worker `i` stores the cyclic window
//! `{i, …, i+s} mod n` and sends one linear combination
//! `z_i = Σ_u B[i,u]·g_u`. The coding matrix `B` comes from Algorithm 1
//! of \[7\]:
//!
//! 1. draw `H ∈ ℝ^{s×n}` with i.i.d. Gaussian entries, then force its
//!    columns to sum to zero (so `H·1 = 0`);
//! 2. row `i` of `B` has support `{i,…,i+s}`, `B[i,i] = 1`, and the other
//!    `s` entries solve `H[:, S_i∖{i}]·x = −H[:, i]`, giving `H·Bᵀ = 0`.
//!
//! Every row of `B` then lies in `null(H)` — an `(n−s)`-dimensional space
//! containing the all-ones vector — and (w.p. 1 over the Gaussian draw) any
//! `n−s` rows span it, so the master can decode from *any* `n−s` workers by
//! solving `aᵀB_F = 1ᵀ`. Recovery threshold: `K_CR = m − r + 1` (eq. (7)).

use crate::error::CodingError;
use crate::payload::Payload;
use crate::scheme::{Coverage, Decoder, GradientCodingScheme, ReceiveLog};
use bcc_data::Placement;
use bcc_linalg::{qr, solve, vec_ops, Matrix};
use bcc_stats::dist::Gaussian;
use rand::Rng;

/// Residual tolerance for accepting a decoding vector.
const DECODE_TOL: f64 = 1e-6;

/// The CR gradient-coding scheme over `n` workers / `n` data units.
#[derive(Debug, Clone)]
pub struct CyclicRepetitionScheme {
    placement: Placement,
    /// Dense `n×n` coding matrix (zero off the cyclic supports).
    b: Matrix,
    n: usize,
    r: usize,
}

impl CyclicRepetitionScheme {
    /// Constructs the scheme via Algorithm 1 of \[7\].
    ///
    /// # Panics
    /// Panics when `r == 0` or `r > n`; [`Self::try_new`] is the fallible
    /// form.
    #[must_use]
    pub fn new<R: Rng + ?Sized>(n: usize, r: usize, rng: &mut R) -> Self {
        Self::try_new(n, r, rng).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible constructor: returns [`CodingError::InvalidConfig`] instead
    /// of panicking when the load is outside `0 < r ≤ n`.
    ///
    /// # Errors
    /// [`CodingError::InvalidConfig`] when `r == 0` or `r > n`.
    pub fn try_new<R: Rng + ?Sized>(n: usize, r: usize, rng: &mut R) -> Result<Self, CodingError> {
        if r == 0 || r > n {
            return Err(CodingError::InvalidConfig {
                reason: format!("cyclic repetition needs 0 < r ≤ n (n={n}, r={r})"),
            });
        }
        let s = r - 1;
        let b = Self::build_coding_matrix(n, s, rng);
        let placement = Placement::cyclic(n, r);
        Ok(Self { placement, b, n, r })
    }

    /// Algorithm 1: random `H` with zero column sums, then per-row solves.
    fn build_coding_matrix<R: Rng + ?Sized>(n: usize, s: usize, rng: &mut R) -> Matrix {
        if s == 0 {
            return Matrix::identity(n);
        }
        let gauss = Gaussian::standard();
        // H ∈ ℝ^{s×n}: first n−1 columns Gaussian, last = −(sum of others).
        let mut h = Matrix::zeros(s, n);
        for t in 0..s {
            let mut rowsum = 0.0;
            for u in 0..n - 1 {
                let v = bcc_stats::dist::Sample::sample(&gauss, rng);
                h[(t, u)] = v;
                rowsum += v;
            }
            h[(t, n - 1)] = -rowsum;
        }

        let mut b = Matrix::zeros(n, n);
        for i in 0..n {
            b[(i, i)] = 1.0;
            // Remaining support columns: {i+1, …, i+s} mod n.
            let cols: Vec<usize> = (1..=s).map(|k| (i + k) % n).collect();
            // Solve H[:, cols]·x = −H[:, i].
            let hsub = Matrix::from_fn(s, s, |t, k| h[(t, cols[k])]);
            let rhs: Vec<f64> = (0..s).map(|t| -h[(t, i)]).collect();
            let x = solve::solve(&hsub, &rhs)
                .expect("Gaussian submatrix is invertible with probability 1");
            for (k, &c) in cols.iter().enumerate() {
                b[(i, c)] = x[k];
            }
        }
        b
    }

    /// The coding matrix `B` (rows = workers, columns = data units).
    #[must_use]
    pub fn coding_matrix(&self) -> &Matrix {
        &self.b
    }

    /// Number of stragglers tolerated in the worst case: `s = r − 1`.
    #[must_use]
    pub fn stragglers_tolerated(&self) -> usize {
        self.r - 1
    }

    /// Worst-case recovery threshold `K_CR = n − r + 1` (eq. (7)).
    #[must_use]
    pub fn recovery_threshold(&self) -> usize {
        self.n - self.r + 1
    }

    /// Tries to compute decoding coefficients for the received worker set
    /// `F`: `a` with `aᵀB_F = 1ᵀ`. Returns `None` when `F` cannot decode.
    #[must_use]
    pub fn decoding_coefficients(&self, received: &[usize]) -> Option<Vec<f64>> {
        if received.len() < self.recovery_threshold() {
            return None;
        }
        let bf = self
            .b
            .select_rows(received)
            .expect("received ids validated by decoder");
        let ones = vec![1.0; self.n];
        let a = qr::solve_row_combination(&bf, &ones).ok()?;
        // Verify: residual ‖aᵀB_F − 1ᵀ‖∞ below tolerance.
        let recon = bf.gemv_t(&a).expect("shape ok");
        let ok = recon
            .iter()
            .zip(&ones)
            .all(|(x, y)| (x - y).abs() < DECODE_TOL);
        ok.then_some(a)
    }
}

impl GradientCodingScheme for CyclicRepetitionScheme {
    fn name(&self) -> &'static str {
        "cyclic-repetition"
    }

    fn placement(&self) -> &Placement {
        &self.placement
    }

    fn encode(&self, worker: usize, partials: &[Vec<f64>]) -> Result<Payload, CodingError> {
        if worker >= self.n {
            return Err(CodingError::UnknownWorker {
                worker,
                num_workers: self.n,
            });
        }
        let units = self.placement.worker_examples(worker);
        if partials.len() != units.len() {
            return Err(CodingError::MalformedPayload {
                reason: format!(
                    "worker {worker} expected {} partial gradients, got {}",
                    units.len(),
                    partials.len()
                ),
            });
        }
        // z_i = Σ_{u ∈ S_i} B[i,u]·g_u.
        let terms = units
            .iter()
            .zip(partials)
            .map(|(&u, g)| (self.b[(worker, u)], g.as_slice()));
        let vector = vec_ops::linear_combination(terms).ok_or(CodingError::MalformedPayload {
            reason: "CR worker stores a non-empty window".into(),
        })?;
        Ok(Payload::Linear { vector })
    }

    fn decoder(&self) -> Box<dyn Decoder + '_> {
        Box::new(CrDecoder {
            scheme: self,
            log: ReceiveLog::new(self.n),
            received: Vec::new(),
            messages: Vec::new(),
            coefficients: None,
        })
    }

    fn analytic_recovery_threshold(&self) -> Option<f64> {
        Some(self.recovery_threshold() as f64)
    }
}

struct CrDecoder<'a> {
    scheme: &'a CyclicRepetitionScheme,
    log: ReceiveLog,
    received: Vec<usize>,
    messages: Vec<Vec<f64>>,
    coefficients: Option<Vec<f64>>,
}

impl Decoder for CrDecoder<'_> {
    fn receive(&mut self, worker: usize, payload: Payload) -> Result<bool, CodingError> {
        let Payload::Linear { vector } = payload else {
            return Err(CodingError::MalformedPayload {
                reason: "CR expects Linear payloads".into(),
            });
        };
        self.log.record(worker, 1)?;
        self.received.push(worker);
        self.messages.push(vector);
        if self.coefficients.is_none() {
            self.coefficients = self.scheme.decoding_coefficients(&self.received);
        }
        Ok(self.is_complete())
    }

    fn is_complete(&self) -> bool {
        self.coefficients.is_some()
    }

    fn decode(&self) -> Result<Vec<f64>, CodingError> {
        let Some(a) = &self.coefficients else {
            return Err(CodingError::NotComplete {
                received: self.log.messages(),
            });
        };
        vec_ops::linear_combination(
            a.iter()
                .copied()
                .zip(self.messages.iter().map(Vec::as_slice)),
        )
        .ok_or_else(|| CodingError::DecodingFailed {
            reason: "no messages to combine".into(),
        })
    }

    fn messages_received(&self) -> usize {
        self.log.messages()
    }

    fn communication_units(&self) -> usize {
        self.log.units()
    }

    fn coverage(&self) -> Coverage {
        // A linear-combination code recovers nothing until the received
        // rows span the decoding space, then everything at once.
        Coverage::all_or_nothing(self.is_complete(), self.scheme.num_examples())
    }

    fn partial_sum_terms(&self) -> Option<Vec<(f64, &[f64])>> {
        // Only meaningful once the decoding coefficients exist; before
        // completion the serial path must surface `NotComplete`.
        let a = self.coefficients.as_ref()?;
        let terms: Vec<_> = a
            .iter()
            .copied()
            .zip(self.messages.iter().map(Vec::as_slice))
            .collect();
        (!terms.is_empty()).then_some(terms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::test_support::{random_gradients, total_sum, worker_partials};
    use bcc_stats::rng::derive_rng;

    fn scheme(n: usize, r: usize, seed: u64) -> CyclicRepetitionScheme {
        let mut rng = derive_rng(seed, 0);
        CyclicRepetitionScheme::new(n, r, &mut rng)
    }

    #[test]
    fn coding_matrix_annihilated_by_construction() {
        // Every row of B sums to ... rows lie in null(H) which contains 1;
        // verify the decodability consequence directly: the all-ones vector
        // is reproducible from ANY n−s rows.
        let s = scheme(8, 3, 1);
        let b = s.coding_matrix();
        assert_eq!(b.shape(), (8, 8));
        // Support structure: row i nonzero only on {i, i+1, i+2} mod 8.
        for i in 0..8 {
            for u in 0..8 {
                let in_window = (0..3).any(|k| (i + k) % 8 == u);
                if !in_window {
                    assert_eq!(b[(i, u)], 0.0, "B[{i},{u}] outside window");
                }
            }
            assert_eq!(b[(i, i)], 1.0);
        }
    }

    #[test]
    fn decodes_from_any_fastest_subset() {
        let (n, r) = (7, 3);
        let s = scheme(n, r, 2);
        let grads = random_gradients(n, 4, 3);
        let expect = total_sum(&grads);
        let k = s.recovery_threshold(); // n - r + 1 = 5

        // Try every (n choose k) subset of finished workers.
        let subsets = all_subsets(n, k);
        assert!(!subsets.is_empty());
        for subset in subsets {
            let mut dec = s.decoder();
            let mut done = false;
            for &i in &subset {
                let partials = worker_partials(s.placement(), i, &grads);
                done = dec.receive(i, s.encode(i, &partials).unwrap()).unwrap();
            }
            assert!(done, "subset {subset:?} must decode at threshold");
            let sum = dec.decode().unwrap();
            assert!(
                bcc_linalg::approx_eq_slice(&sum, &expect, 1e-5),
                "subset {subset:?} decoded wrong sum"
            );
            assert_eq!(dec.messages_received(), k);
            assert_eq!(dec.communication_units(), k);
        }
    }

    fn all_subsets(n: usize, k: usize) -> Vec<Vec<usize>> {
        let mut out = Vec::new();
        let mut cur = Vec::new();
        fn rec(start: usize, n: usize, k: usize, cur: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
            if cur.len() == k {
                out.push(cur.clone());
                return;
            }
            for i in start..n {
                cur.push(i);
                rec(i + 1, n, k, cur, out);
                cur.pop();
            }
        }
        rec(0, n, k, &mut cur, &mut out);
        out
    }

    #[test]
    fn not_complete_below_threshold() {
        let s = scheme(6, 3, 4);
        let grads = random_gradients(6, 2, 5);
        let mut dec = s.decoder();
        // Feed threshold−1 = 3 workers.
        for i in 0..3 {
            let partials = worker_partials(s.placement(), i, &grads);
            let done = dec.receive(i, s.encode(i, &partials).unwrap()).unwrap();
            assert!(!done);
        }
        assert!(matches!(
            dec.decode(),
            Err(CodingError::NotComplete { received: 3 })
        ));
    }

    #[test]
    fn r_equals_one_is_identity_code() {
        let s = scheme(5, 1, 6);
        assert_eq!(s.recovery_threshold(), 5);
        assert!(s.coding_matrix().approx_eq(&Matrix::identity(5), 0.0));
        let grads = random_gradients(5, 2, 7);
        let mut dec = s.decoder();
        for i in 0..5 {
            let partials = worker_partials(s.placement(), i, &grads);
            dec.receive(i, s.encode(i, &partials).unwrap()).unwrap();
        }
        assert!(dec.is_complete());
        assert!(bcc_linalg::approx_eq_slice(
            &dec.decode().unwrap(),
            &total_sum(&grads),
            1e-9
        ));
    }

    #[test]
    fn r_equals_n_single_worker_suffices() {
        let s = scheme(4, 4, 8);
        assert_eq!(s.recovery_threshold(), 1);
        let grads = random_gradients(4, 3, 9);
        let mut dec = s.decoder();
        let partials = worker_partials(s.placement(), 2, &grads);
        assert!(dec.receive(2, s.encode(2, &partials).unwrap()).unwrap());
        assert!(bcc_linalg::approx_eq_slice(
            &dec.decode().unwrap(),
            &total_sum(&grads),
            1e-6
        ));
    }

    #[test]
    fn extra_messages_beyond_threshold_still_exact() {
        let (n, r) = (9, 4);
        let s = scheme(n, r, 10);
        let grads = random_gradients(n, 2, 11);
        let mut dec = s.decoder();
        for i in 0..n {
            let partials = worker_partials(s.placement(), i, &grads);
            dec.receive(i, s.encode(i, &partials).unwrap()).unwrap();
        }
        assert!(bcc_linalg::approx_eq_slice(
            &dec.decode().unwrap(),
            &total_sum(&grads),
            1e-5
        ));
    }

    #[test]
    fn stragglers_tolerated_is_r_minus_one() {
        assert_eq!(scheme(10, 4, 12).stragglers_tolerated(), 3);
    }

    #[test]
    #[should_panic(expected = "0 < r")]
    fn zero_r_panics() {
        let _ = scheme(5, 0, 13);
    }
}
