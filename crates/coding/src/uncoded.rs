//! The uncoded baseline: disjoint shards, wait for everyone.
//!
//! §III-C: "there is no repetition in data among the workers and the master
//! has to wait for all the workers to finish their computations."

use crate::error::CodingError;
use crate::payload::Payload;
use crate::scheme::{Coverage, Decoder, GradientCodingScheme, ReceiveLog};
use bcc_data::Placement;
use bcc_linalg::vec_ops;

/// Uncoded scheme: worker `i` owns shard `i` (disjoint), sends the shard's
/// gradient sum; the master waits for every non-empty shard.
#[derive(Debug, Clone)]
pub struct UncodedScheme {
    placement: Placement,
    non_empty: usize,
}

impl UncodedScheme {
    /// Splits `m` examples evenly across `n` workers.
    #[must_use]
    pub fn new(m: usize, n: usize) -> Self {
        let placement = Placement::disjoint_shards(m, n);
        let non_empty = (0..n).filter(|&i| placement.load_of(i) > 0).count();
        Self {
            placement,
            non_empty,
        }
    }

    /// Number of workers holding at least one example (all must report).
    #[must_use]
    pub fn required_workers(&self) -> usize {
        self.non_empty
    }
}

impl GradientCodingScheme for UncodedScheme {
    fn name(&self) -> &'static str {
        "uncoded"
    }

    fn placement(&self) -> &Placement {
        &self.placement
    }

    fn encode(&self, worker: usize, partials: &[Vec<f64>]) -> Result<Payload, CodingError> {
        if worker >= self.num_workers() {
            return Err(CodingError::UnknownWorker {
                worker,
                num_workers: self.num_workers(),
            });
        }
        let expected = self.placement.load_of(worker);
        if partials.len() != expected {
            return Err(CodingError::MalformedPayload {
                reason: format!(
                    "worker {worker} expected {expected} partial gradients, got {}",
                    partials.len()
                ),
            });
        }
        let dim = partials.first().map_or(0, Vec::len);
        let vector = vec_ops::sum_vectors(partials.iter().map(Vec::as_slice))
            .unwrap_or_else(|| vec![0.0; dim]);
        Ok(Payload::Sum {
            unit: worker,
            vector,
        })
    }

    fn decoder(&self) -> Box<dyn Decoder + '_> {
        Box::new(UncodedDecoder {
            scheme: self,
            log: ReceiveLog::new(self.num_workers()),
            sums: vec![None; self.num_workers()],
            have: 0,
            covered_units: 0,
        })
    }

    fn analytic_recovery_threshold(&self) -> Option<f64> {
        Some(self.non_empty as f64)
    }
}

struct UncodedDecoder<'a> {
    scheme: &'a UncodedScheme,
    log: ReceiveLog,
    sums: Vec<Option<Vec<f64>>>,
    have: usize,
    /// Units (examples) covered by the shard sums kept so far.
    covered_units: usize,
}

impl Decoder for UncodedDecoder<'_> {
    fn receive(&mut self, worker: usize, payload: Payload) -> Result<bool, CodingError> {
        let Payload::Sum { unit, vector } = payload else {
            return Err(CodingError::MalformedPayload {
                reason: "uncoded expects Sum payloads".into(),
            });
        };
        if unit != worker {
            return Err(CodingError::MalformedPayload {
                reason: format!("uncoded shard id {unit} must equal worker id {worker}"),
            });
        }
        self.log.record(worker, 1)?;
        if self.scheme.placement.load_of(worker) > 0 && self.sums[worker].is_none() {
            self.covered_units += self.scheme.placement.load_of(worker);
            self.sums[worker] = Some(vector);
            self.have += 1;
        }
        Ok(self.is_complete())
    }

    fn is_complete(&self) -> bool {
        self.have == self.scheme.non_empty
    }

    fn decode(&self) -> Result<Vec<f64>, CodingError> {
        if !self.is_complete() {
            return Err(CodingError::NotComplete {
                received: self.log.messages(),
            });
        }
        vec_ops::sum_vectors(self.sums.iter().flatten().map(Vec::as_slice)).ok_or_else(|| {
            CodingError::DecodingFailed {
                reason: "no shard sums collected".into(),
            }
        })
    }

    fn messages_received(&self) -> usize {
        self.log.messages()
    }

    fn communication_units(&self) -> usize {
        self.log.units()
    }

    fn coverage(&self) -> Coverage {
        Coverage::new(self.covered_units, self.scheme.num_examples())
    }

    fn decode_partial(&self) -> Result<Vec<f64>, CodingError> {
        vec_ops::sum_vectors(self.sums.iter().flatten().map(Vec::as_slice)).ok_or(
            CodingError::NotComplete {
                received: self.log.messages(),
            },
        )
    }

    fn partial_sum_terms(&self) -> Option<Vec<(f64, &[f64])>> {
        let terms: Vec<_> = self
            .sums
            .iter()
            .flatten()
            .map(|v| (1.0, v.as_slice()))
            .collect();
        (!terms.is_empty()).then_some(terms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::test_support::{random_gradients, worker_partials};

    #[test]
    fn decode_recovers_exact_sum() {
        let (m, n, p) = (23, 5, 4);
        let scheme = UncodedScheme::new(m, n);
        let grads = random_gradients(m, p, 42);
        let mut dec = scheme.decoder();
        for i in 0..n {
            let partials = worker_partials(scheme.placement(), i, &grads);
            let payload = scheme.encode(i, &partials).unwrap();
            dec.receive(i, payload).unwrap();
        }
        assert!(dec.is_complete());
        let sum = dec.decode().unwrap();
        let expect = bcc_linalg::vec_ops::sum_vectors(grads.iter().map(Vec::as_slice)).unwrap();
        assert!(bcc_linalg::approx_eq_slice(&sum, &expect, 1e-9));
        assert_eq!(dec.messages_received(), n);
        assert_eq!(dec.communication_units(), n);
    }

    #[test]
    fn incomplete_until_all_nonempty_report() {
        let scheme = UncodedScheme::new(10, 4);
        let grads = random_gradients(10, 3, 1);
        let mut dec = scheme.decoder();
        for i in 0..3 {
            let partials = worker_partials(scheme.placement(), i, &grads);
            let done = dec
                .receive(i, scheme.encode(i, &partials).unwrap())
                .unwrap();
            assert!(!done, "must wait for all workers");
        }
        assert!(matches!(
            dec.decode(),
            Err(CodingError::NotComplete { received: 3 })
        ));
        let partials = worker_partials(scheme.placement(), 3, &grads);
        assert!(dec
            .receive(3, scheme.encode(3, &partials).unwrap())
            .unwrap());
    }

    #[test]
    fn more_workers_than_examples() {
        // Workers with empty shards are not required.
        let scheme = UncodedScheme::new(3, 5);
        assert_eq!(scheme.required_workers(), 3);
        assert_eq!(scheme.analytic_recovery_threshold(), Some(3.0));
        let grads = random_gradients(3, 2, 2);
        let mut dec = scheme.decoder();
        for i in 0..3 {
            let partials = worker_partials(scheme.placement(), i, &grads);
            dec.receive(i, scheme.encode(i, &partials).unwrap())
                .unwrap();
        }
        assert!(dec.is_complete());
    }

    #[test]
    fn encode_validates_partial_count() {
        let scheme = UncodedScheme::new(10, 2);
        assert!(matches!(
            scheme.encode(0, &[]),
            Err(CodingError::MalformedPayload { .. })
        ));
        assert!(matches!(
            scheme.encode(7, &[]),
            Err(CodingError::UnknownWorker { .. })
        ));
    }

    #[test]
    fn rejects_wrong_payload_variant() {
        let scheme = UncodedScheme::new(4, 2);
        let mut dec = scheme.decoder();
        assert!(matches!(
            dec.receive(0, Payload::Linear { vector: vec![] }),
            Err(CodingError::MalformedPayload { .. })
        ));
    }

    #[test]
    fn duplicate_worker_rejected() {
        let scheme = UncodedScheme::new(4, 2);
        let grads = random_gradients(4, 2, 3);
        let mut dec = scheme.decoder();
        let partials = worker_partials(scheme.placement(), 0, &grads);
        let p = scheme.encode(0, &partials).unwrap();
        dec.receive(0, p.clone()).unwrap();
        assert!(matches!(
            dec.receive(0, p),
            Err(CodingError::DuplicateWorker { worker: 0 })
        ));
    }
}
