//! Cyclic-MDS gradient coding over ℂ — Raviv, Tamo, Tandon, Dimakis,
//! *"Gradient Coding from Cyclic MDS Codes and Expander Graphs"* \[9\].
//!
//! Same cyclic support and `(r, K)` point as CR (eq. (7)/(8)), but the
//! coding matrix is **deterministic**, built from the complex roots of
//! unity. We realize it with the parity-check construction:
//!
//! * `H ∈ ℂ^{s×n}` with `H[t,u] = ω^{u(t+1)}`, `ω = e^{2πi/n}` — rows are
//!   the DFT characters at frequencies `1..s`, so `H·1 = 0` (the all-ones
//!   vector is "frequency 0") and every `s×s` column submatrix is a scaled
//!   Vandermonde in distinct nodes, hence invertible.
//! * row `i` of `B` has support `{i,…,i+s} mod n`, `B[i,i] = 1`, remaining
//!   entries solve `H[:,S_i∖{i}]·x = −H[:,i]` exactly as in CR — but now the
//!   construction is deterministic and decodability from any `n−s` workers
//!   holds structurally (cyclic Reed–Solomon), not just almost surely.
//!
//! Workers send complex combinations; the decoded combination collapses to
//! the real gradient sum (imaginary parts cancel to numerical noise, which
//! the decoder checks and strips).

use crate::error::CodingError;
use crate::payload::Payload;
use crate::scheme::{Coverage, Decoder, GradientCodingScheme, ReceiveLog};
use bcc_data::Placement;
use bcc_linalg::{CMatrix, Complex};

/// Residual tolerance for accepting a decoding vector.
const DECODE_TOL: f64 = 1e-6;

/// Tolerance on leftover imaginary components after decoding.
const IMAG_TOL: f64 = 1e-6;

/// Deterministic cyclic-MDS gradient coding over ℂ.
#[derive(Debug, Clone)]
pub struct CyclicMdsScheme {
    placement: Placement,
    b: CMatrix,
    n: usize,
    r: usize,
}

impl CyclicMdsScheme {
    /// Builds the deterministic code for `n` workers/units and load `r`.
    ///
    /// # Panics
    /// Panics when `r == 0` or `r > n`; [`Self::try_new`] is the fallible
    /// form.
    #[must_use]
    pub fn new(n: usize, r: usize) -> Self {
        Self::try_new(n, r).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible constructor: returns [`CodingError::InvalidConfig`] instead
    /// of panicking when the load is outside `0 < r ≤ n`.
    ///
    /// # Errors
    /// [`CodingError::InvalidConfig`] when `r == 0` or `r > n`.
    pub fn try_new(n: usize, r: usize) -> Result<Self, CodingError> {
        if r == 0 || r > n {
            return Err(CodingError::InvalidConfig {
                reason: format!("cyclic MDS needs 0 < r ≤ n (n={n}, r={r})"),
            });
        }
        let s = r - 1;
        let b = Self::build_coding_matrix(n, s);
        let placement = Placement::cyclic(n, r);
        Ok(Self { placement, b, n, r })
    }

    fn build_coding_matrix(n: usize, s: usize) -> CMatrix {
        let mut b = CMatrix::zeros(n, n);
        if s == 0 {
            for i in 0..n {
                b.set(i, i, Complex::ONE);
            }
            return b;
        }
        // H[t,u] = ω^{u(t+1)} for t in 0..s.
        let h = CMatrix::from_fn(s, n, |t, u| Complex::root_of_unity(n, u * (t + 1)));
        for i in 0..n {
            b.set(i, i, Complex::ONE);
            let cols: Vec<usize> = (1..=s).map(|k| (i + k) % n).collect();
            let hsub = CMatrix::from_fn(s, s, |t, k| h.get(t, cols[k]));
            let rhs: Vec<Complex> = (0..s).map(|t| -h.get(t, i)).collect();
            let x = hsub
                .solve(&rhs)
                .expect("Vandermonde submatrix in distinct roots is invertible");
            for (k, &c) in cols.iter().enumerate() {
                b.set(i, c, x[k]);
            }
        }
        b
    }

    /// The complex coding matrix `B`.
    #[must_use]
    pub fn coding_matrix(&self) -> &CMatrix {
        &self.b
    }

    /// Worst-case recovery threshold `K_CM = n − r + 1` (eq. (7)).
    #[must_use]
    pub fn recovery_threshold(&self) -> usize {
        self.n - self.r + 1
    }

    /// Decoding coefficients for the received set, if it can decode:
    /// solves `aᵀB_F = 1ᵀ` by complex normal equations and verifies the
    /// residual.
    #[must_use]
    pub fn decoding_coefficients(&self, received: &[usize]) -> Option<Vec<Complex>> {
        let f = received.len();
        if f < self.recovery_threshold() {
            return None;
        }
        let bf = self
            .b
            .select_rows(received)
            .expect("received ids validated by decoder");
        // Least squares for A·a = 1 with A = B_Fᵀ (n×f): (AᴴA)a = Aᴴ1.
        let a_mat = CMatrix::from_fn(self.n, f, |u, k| bf.get(k, u));
        let ah = a_mat.hermitian_transpose();
        let mut normal = CMatrix::zeros(f, f);
        for i in 0..f {
            for j in 0..f {
                let mut sum = Complex::ZERO;
                for u in 0..self.n {
                    sum += ah.get(i, u) * a_mat.get(u, j);
                }
                normal.set(i, j, sum);
            }
        }
        let ones = vec![Complex::ONE; self.n];
        let rhs = ah.gemv(&ones).ok()?;
        let a = normal.solve(&rhs).ok()?;
        // Residual check: aᵀB_F ≈ 1ᵀ.
        for u in 0..self.n {
            let mut s = Complex::ZERO;
            for k in 0..f {
                s += a[k] * bf.get(k, u);
            }
            if (s - Complex::ONE).abs() > DECODE_TOL {
                return None;
            }
        }
        Some(a)
    }
}

impl GradientCodingScheme for CyclicMdsScheme {
    fn name(&self) -> &'static str {
        "cyclic-mds"
    }

    fn placement(&self) -> &Placement {
        &self.placement
    }

    fn encode(&self, worker: usize, partials: &[Vec<f64>]) -> Result<Payload, CodingError> {
        if worker >= self.n {
            return Err(CodingError::UnknownWorker {
                worker,
                num_workers: self.n,
            });
        }
        let units = self.placement.worker_examples(worker);
        if partials.len() != units.len() {
            return Err(CodingError::MalformedPayload {
                reason: format!(
                    "worker {worker} expected {} partial gradients, got {}",
                    units.len(),
                    partials.len()
                ),
            });
        }
        let dim = partials.first().map_or(0, Vec::len);
        let mut vector = vec![Complex::ZERO; dim];
        for (&u, g) in units.iter().zip(partials) {
            let coeff = self.b.get(worker, u);
            for (acc, &gk) in vector.iter_mut().zip(g) {
                *acc += coeff * gk;
            }
        }
        Ok(Payload::LinearComplex { vector })
    }

    fn decoder(&self) -> Box<dyn Decoder + '_> {
        Box::new(CmDecoder {
            scheme: self,
            log: ReceiveLog::new(self.n),
            received: Vec::new(),
            messages: Vec::new(),
            coefficients: None,
        })
    }

    fn analytic_recovery_threshold(&self) -> Option<f64> {
        Some(self.recovery_threshold() as f64)
    }
}

struct CmDecoder<'a> {
    scheme: &'a CyclicMdsScheme,
    log: ReceiveLog,
    received: Vec<usize>,
    messages: Vec<Vec<Complex>>,
    coefficients: Option<Vec<Complex>>,
}

impl Decoder for CmDecoder<'_> {
    fn receive(&mut self, worker: usize, payload: Payload) -> Result<bool, CodingError> {
        let Payload::LinearComplex { vector } = payload else {
            return Err(CodingError::MalformedPayload {
                reason: "cyclic-MDS expects LinearComplex payloads".into(),
            });
        };
        self.log.record(worker, 1)?;
        self.received.push(worker);
        self.messages.push(vector);
        if self.coefficients.is_none() {
            self.coefficients = self.scheme.decoding_coefficients(&self.received);
        }
        Ok(self.is_complete())
    }

    fn is_complete(&self) -> bool {
        self.coefficients.is_some()
    }

    fn decode(&self) -> Result<Vec<f64>, CodingError> {
        let Some(a) = &self.coefficients else {
            return Err(CodingError::NotComplete {
                received: self.log.messages(),
            });
        };
        let dim = self.messages.first().map_or(0, Vec::len);
        let mut acc = vec![Complex::ZERO; dim];
        for (coeff, msg) in a.iter().zip(&self.messages) {
            for (s, &z) in acc.iter_mut().zip(msg) {
                *s += *coeff * z;
            }
        }
        // Imaginary parts must cancel; surface a decoding failure otherwise.
        let max_imag = acc.iter().fold(0.0f64, |m, z| m.max(z.im.abs()));
        let scale = acc.iter().fold(1.0f64, |m, z| m.max(z.re.abs()));
        if max_imag > IMAG_TOL * scale {
            return Err(CodingError::DecodingFailed {
                reason: format!("imaginary residue {max_imag} exceeds tolerance"),
            });
        }
        Ok(acc.into_iter().map(|z| z.re).collect())
    }

    fn messages_received(&self) -> usize {
        self.log.messages()
    }

    fn communication_units(&self) -> usize {
        self.log.units()
    }

    fn coverage(&self) -> Coverage {
        // A linear-combination code recovers nothing until the received
        // rows span the decoding space, then everything at once.
        Coverage::all_or_nothing(self.is_complete(), self.scheme.num_examples())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::test_support::{random_gradients, total_sum, worker_partials};

    #[test]
    fn deterministic_construction() {
        let a = CyclicMdsScheme::new(8, 3);
        let b = CyclicMdsScheme::new(8, 3);
        for i in 0..8 {
            for j in 0..8 {
                assert_eq!(a.b.get(i, j), b.b.get(i, j));
            }
        }
    }

    #[test]
    fn support_is_cyclic_window() {
        let s = CyclicMdsScheme::new(7, 3);
        for i in 0..7 {
            for u in 0..7 {
                let in_window = (0..3).any(|k| (i + k) % 7 == u);
                if !in_window {
                    assert!(
                        s.b.get(i, u).abs() < 1e-14,
                        "B[{i},{u}] should be zero outside the window"
                    );
                }
            }
            assert!((s.b.get(i, i) - Complex::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn decodes_from_every_threshold_subset() {
        let (n, r) = (6, 3);
        let s = CyclicMdsScheme::new(n, r);
        let grads = random_gradients(n, 3, 1);
        let expect = total_sum(&grads);
        let k = s.recovery_threshold(); // 4
        for subset in all_subsets(n, k) {
            let mut dec = s.decoder();
            let mut done = false;
            for &i in &subset {
                let partials = worker_partials(s.placement(), i, &grads);
                done = dec.receive(i, s.encode(i, &partials).unwrap()).unwrap();
            }
            assert!(done, "subset {subset:?} must decode (MDS property)");
            let sum = dec.decode().unwrap();
            assert!(
                bcc_linalg::approx_eq_slice(&sum, &expect, 1e-5),
                "subset {subset:?} wrong: {sum:?} vs {expect:?}"
            );
        }
    }

    fn all_subsets(n: usize, k: usize) -> Vec<Vec<usize>> {
        let mut out = Vec::new();
        let mut cur = Vec::new();
        fn rec(start: usize, n: usize, k: usize, cur: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
            if cur.len() == k {
                out.push(cur.clone());
                return;
            }
            for i in start..n {
                cur.push(i);
                rec(i + 1, n, k, cur, out);
                cur.pop();
            }
        }
        rec(0, n, k, &mut cur, &mut out);
        out
    }

    #[test]
    fn below_threshold_incomplete() {
        let s = CyclicMdsScheme::new(6, 3);
        let grads = random_gradients(6, 2, 2);
        let mut dec = s.decoder();
        for i in 0..3 {
            let partials = worker_partials(s.placement(), i, &grads);
            assert!(!dec.receive(i, s.encode(i, &partials).unwrap()).unwrap());
        }
        assert!(!dec.is_complete());
    }

    #[test]
    fn identity_when_r_is_one() {
        let s = CyclicMdsScheme::new(4, 1);
        assert_eq!(s.recovery_threshold(), 4);
        let grads = random_gradients(4, 2, 3);
        let mut dec = s.decoder();
        for i in 0..4 {
            let partials = worker_partials(s.placement(), i, &grads);
            dec.receive(i, s.encode(i, &partials).unwrap()).unwrap();
        }
        assert!(bcc_linalg::approx_eq_slice(
            &dec.decode().unwrap(),
            &total_sum(&grads),
            1e-9
        ));
    }

    #[test]
    fn matches_cr_threshold_formula() {
        for (n, r) in [(10, 3), (12, 5), (9, 9)] {
            let s = CyclicMdsScheme::new(n, r);
            assert_eq!(s.recovery_threshold(), n - r + 1);
            assert_eq!(s.analytic_recovery_threshold(), Some((n - r + 1) as f64));
        }
    }

    #[test]
    fn wrong_payload_variant_rejected() {
        let s = CyclicMdsScheme::new(4, 2);
        let mut dec = s.decoder();
        assert!(matches!(
            dec.receive(0, Payload::Linear { vector: vec![] }),
            Err(CodingError::MalformedPayload { .. })
        ));
    }
}
