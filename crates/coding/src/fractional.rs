//! Fractional-repetition (FR) gradient coding — the second construction of
//! Tandon et al. \[7\], mentioned in the paper's footnote 2: a deterministic
//! replication scheme that "may finish when the master collects results from
//! less than m − r + 1 workers", applicable when `r | n`.
//!
//! The `n` data units are split into `n/r` disjoint shards of `r` units;
//! each shard is replicated on `r` workers. A worker sends the *sum* of its
//! shard's partial gradients (one unit); the master completes when it has
//! heard from at least one worker of every shard group. Worst case it
//! tolerates `r − 1` stragglers, but under random stragglers it often
//! finishes earlier than CR — the behaviour the footnote points out.

use crate::error::CodingError;
use crate::payload::Payload;
use crate::scheme::{Coverage, Decoder, GradientCodingScheme, ReceiveLog};
use bcc_data::Placement;
use bcc_linalg::vec_ops;

/// Fractional-repetition scheme over `n` workers / `n` units, `r | n`.
#[derive(Debug, Clone)]
pub struct FractionalRepetitionScheme {
    placement: Placement,
    n: usize,
    r: usize,
    shards: usize,
}

impl FractionalRepetitionScheme {
    /// Builds the FR scheme.
    ///
    /// # Panics
    /// Panics unless `r > 0` and `r` divides `n`; [`Self::try_new`] is the
    /// fallible form.
    #[must_use]
    pub fn new(n: usize, r: usize) -> Self {
        Self::try_new(n, r).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible constructor: returns [`CodingError::InvalidConfig`] instead
    /// of panicking when `r` does not divide `n`.
    ///
    /// # Errors
    /// [`CodingError::InvalidConfig`] unless `r > 0` and `r | n`.
    pub fn try_new(n: usize, r: usize) -> Result<Self, CodingError> {
        if r == 0 || !n.is_multiple_of(r) {
            return Err(CodingError::InvalidConfig {
                reason: format!("fractional repetition needs r | n (n={n}, r={r})"),
            });
        }
        let placement = Placement::fractional_repetition(n, r);
        Ok(Self {
            placement,
            n,
            r,
            shards: n / r,
        })
    }

    /// Shard id stored by a worker.
    #[must_use]
    pub fn shard_of_worker(&self, worker: usize) -> usize {
        worker % self.shards
    }

    /// Number of distinct shards (`n/r`).
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.shards
    }

    /// Worst-case recovery threshold: all but `r − 1` workers, i.e.
    /// `n − r + 1` (same worst case as CR).
    #[must_use]
    pub fn worst_case_recovery_threshold(&self) -> usize {
        self.n - self.r + 1
    }

    /// Expected number of uniformly random worker arrivals until every shard
    /// group is hit at least once.
    ///
    /// This is a coupon-collector variant *without replacement*: drawing
    /// workers in a uniformly random order, the expected number of draws to
    /// cover all `g = n/r` groups of size `r` is
    /// `n − r·g/(g·r − r + ... )`… computed exactly here by the standard
    /// order-statistics identity: `E = n + 1 − (r·g + 1)·Π…`; rather than a
    /// closed form we evaluate `E = Σ_k Pr[draws ≥ k]` with
    /// `Pr[not covered after k] ≤ …` — implemented by exact DP over
    /// hypergeometric survival, which is cheap for the sizes used here.
    #[must_use]
    pub fn expected_recovery_threshold(&self) -> f64 {
        // E[T] = Σ_{k≥0} Pr[T > k]; Pr[T > k] = P(some group unseen after k
        // draws without replacement). By inclusion–exclusion over groups:
        // Pr[T > k] = Σ_{j≥1} (−1)^{j+1} C(g, j)·C(n−j·r, k)/C(n, k).
        let g = self.shards;
        let n = self.n;
        let r = self.r;
        let mut expectation = 0.0;
        for k in 0..n {
            // Pr[T > k] — probability some group has no member in the first
            // k draws.
            let mut p = 0.0;
            let mut sign = 1.0;
            for j in 1..=g {
                let remaining = n.saturating_sub(j * r);
                if remaining < k {
                    break;
                }
                let term = ln_choose(remaining, k) - ln_choose(n, k);
                p += sign * choose_ln_exp(g, j, term);
                sign = -sign;
            }
            expectation += p.clamp(0.0, 1.0);
        }
        expectation
    }
}

/// `ln C(n, k)` via `ln Γ` (Stirling-free exact summation — n is small).
fn ln_choose(n: usize, k: usize) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    let mut s = 0.0;
    for i in 0..k {
        s += ((n - i) as f64).ln() - ((k - i) as f64).ln();
    }
    s
}

/// `C(g, j)·exp(term)` computed in log space for stability.
fn choose_ln_exp(g: usize, j: usize, term: f64) -> f64 {
    (ln_choose(g, j) + term).exp()
}

impl GradientCodingScheme for FractionalRepetitionScheme {
    fn name(&self) -> &'static str {
        "fractional-repetition"
    }

    fn placement(&self) -> &Placement {
        &self.placement
    }

    fn encode(&self, worker: usize, partials: &[Vec<f64>]) -> Result<Payload, CodingError> {
        if worker >= self.n {
            return Err(CodingError::UnknownWorker {
                worker,
                num_workers: self.n,
            });
        }
        let expected = self.placement.load_of(worker);
        if partials.len() != expected {
            return Err(CodingError::MalformedPayload {
                reason: format!(
                    "worker {worker} expected {expected} partial gradients, got {}",
                    partials.len()
                ),
            });
        }
        let vector = vec_ops::sum_vectors(partials.iter().map(Vec::as_slice)).ok_or(
            CodingError::MalformedPayload {
                reason: "FR worker stores a non-empty shard".into(),
            },
        )?;
        Ok(Payload::Sum {
            unit: self.shard_of_worker(worker),
            vector,
        })
    }

    fn decoder(&self) -> Box<dyn Decoder + '_> {
        Box::new(FrDecoder {
            scheme: self,
            log: ReceiveLog::new(self.n),
            shard_sums: vec![None; self.shards],
            covered: 0,
        })
    }

    fn analytic_recovery_threshold(&self) -> Option<f64> {
        Some(self.expected_recovery_threshold())
    }
}

struct FrDecoder<'a> {
    scheme: &'a FractionalRepetitionScheme,
    log: ReceiveLog,
    shard_sums: Vec<Option<Vec<f64>>>,
    covered: usize,
}

impl Decoder for FrDecoder<'_> {
    fn receive(&mut self, worker: usize, payload: Payload) -> Result<bool, CodingError> {
        let Payload::Sum { unit, vector } = payload else {
            return Err(CodingError::MalformedPayload {
                reason: "FR expects Sum payloads".into(),
            });
        };
        if worker < self.scheme.n && unit != self.scheme.shard_of_worker(worker) {
            return Err(CodingError::MalformedPayload {
                reason: format!(
                    "worker {worker} claims shard {unit} but owns {}",
                    self.scheme.shard_of_worker(worker)
                ),
            });
        }
        self.log.record(worker, 1)?;
        if self.shard_sums[unit].is_none() {
            self.shard_sums[unit] = Some(vector);
            self.covered += 1;
        }
        Ok(self.is_complete())
    }

    fn is_complete(&self) -> bool {
        self.covered == self.shard_sums.len()
    }

    fn decode(&self) -> Result<Vec<f64>, CodingError> {
        if !self.is_complete() {
            return Err(CodingError::NotComplete {
                received: self.log.messages(),
            });
        }
        vec_ops::sum_vectors(self.shard_sums.iter().flatten().map(Vec::as_slice)).ok_or_else(|| {
            CodingError::DecodingFailed {
                reason: "no shard sums collected".into(),
            }
        })
    }

    fn messages_received(&self) -> usize {
        self.log.messages()
    }

    fn communication_units(&self) -> usize {
        self.log.units()
    }

    fn coverage(&self) -> Coverage {
        // Every shard holds exactly `r` of the `n` units.
        Coverage::new(self.covered * self.scheme.r, self.scheme.n)
    }

    fn decode_partial(&self) -> Result<Vec<f64>, CodingError> {
        vec_ops::sum_vectors(self.shard_sums.iter().flatten().map(Vec::as_slice)).ok_or(
            CodingError::NotComplete {
                received: self.log.messages(),
            },
        )
    }

    fn partial_sum_terms(&self) -> Option<Vec<(f64, &[f64])>> {
        let terms: Vec<_> = self
            .shard_sums
            .iter()
            .flatten()
            .map(|v| (1.0, v.as_slice()))
            .collect();
        (!terms.is_empty()).then_some(terms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::test_support::{random_gradients, total_sum, worker_partials};
    use bcc_stats::rng::derive_rng;
    use rand::seq::SliceRandom;

    #[test]
    fn decode_recovers_exact_sum() {
        let s = FractionalRepetitionScheme::new(12, 3);
        let grads = random_gradients(12, 4, 1);
        let mut dec = s.decoder();
        for i in 0..12 {
            let partials = worker_partials(s.placement(), i, &grads);
            if dec.receive(i, s.encode(i, &partials).unwrap()).unwrap() {
                break;
            }
        }
        assert!(bcc_linalg::approx_eq_slice(
            &dec.decode().unwrap(),
            &total_sum(&grads),
            1e-9
        ));
    }

    #[test]
    fn completes_once_each_group_reports() {
        let s = FractionalRepetitionScheme::new(6, 2); // 3 shards × 2 replicas
        let grads = random_gradients(6, 2, 2);
        let mut dec = s.decoder();
        // Workers 0, 1, 2 hold shards 0, 1, 2 → exactly one per group.
        for i in 0..3 {
            let partials = worker_partials(s.placement(), i, &grads);
            let done = dec.receive(i, s.encode(i, &partials).unwrap()).unwrap();
            assert_eq!(done, i == 2);
        }
        assert_eq!(dec.messages_received(), 3);
    }

    #[test]
    fn tolerates_any_r_minus_one_stragglers() {
        let (n, r) = (8, 4);
        let s = FractionalRepetitionScheme::new(n, r);
        let grads = random_gradients(n, 2, 3);
        let expect = total_sum(&grads);
        // Remove any r−1 = 3 workers; remaining must still decode.
        for a in 0..n {
            for b in (a + 1)..n {
                for c in (b + 1)..n {
                    let alive: Vec<usize> =
                        (0..n).filter(|&i| i != a && i != b && i != c).collect();
                    let mut dec = s.decoder();
                    for &i in &alive {
                        let partials = worker_partials(s.placement(), i, &grads);
                        if dec.receive(i, s.encode(i, &partials).unwrap()).unwrap() {
                            break;
                        }
                    }
                    assert!(
                        dec.is_complete(),
                        "killing {{{a},{b},{c}}} must not block FR(8,4)"
                    );
                    assert!(bcc_linalg::approx_eq_slice(
                        &dec.decode().unwrap(),
                        &expect,
                        1e-9
                    ));
                }
            }
        }
    }

    #[test]
    fn expected_threshold_matches_simulation() {
        let s = FractionalRepetitionScheme::new(12, 3);
        let analytic = s.expected_recovery_threshold();
        let grads = random_gradients(12, 1, 4);
        let mut rng = derive_rng(5, 0);
        let trials = 4000;
        let mut total = 0usize;
        for _ in 0..trials {
            let mut order: Vec<usize> = (0..12).collect();
            order.shuffle(&mut rng);
            let mut dec = s.decoder();
            for &i in &order {
                let partials = worker_partials(s.placement(), i, &grads);
                if dec.receive(i, s.encode(i, &partials).unwrap()).unwrap() {
                    break;
                }
            }
            total += dec.messages_received();
        }
        let sim = total as f64 / trials as f64;
        assert!(
            (sim - analytic).abs() < 0.15,
            "simulated {sim} vs analytic {analytic}"
        );
    }

    #[test]
    fn expected_threshold_sane_bounds() {
        let s = FractionalRepetitionScheme::new(12, 3);
        let e = s.expected_recovery_threshold();
        // Must need at least one worker per shard and at most the worst case.
        assert!(e >= s.num_shards() as f64);
        assert!(e <= s.worst_case_recovery_threshold() as f64 + 1e-9);
    }

    #[test]
    fn r_one_is_uncoded_like() {
        let s = FractionalRepetitionScheme::new(5, 1);
        assert_eq!(s.num_shards(), 5);
        assert_eq!(s.worst_case_recovery_threshold(), 5);
        assert!((s.expected_recovery_threshold() - 5.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "r | n")]
    fn indivisible_panics() {
        let _ = FractionalRepetitionScheme::new(7, 2);
    }
}
