//! Gradient-coding schemes for straggler-tolerant distributed gradient
//! descent.
//!
//! Every scheme answers the same three questions, factored into the
//! [`scheme::GradientCodingScheme`] trait:
//!
//! 1. **Data distribution** — which examples does worker `i` store
//!    ([`bcc_data::Placement`])?
//! 2. **Worker encoding** — how does worker `i` turn its computed partial
//!    gradients into a message ([`payload::Payload`])?
//! 3. **Master decoding** — when has the master received enough messages and
//!    how does it recover the full gradient sum ([`scheme::Decoder`])?
//!
//! Implemented schemes, matching the paper's comparison set:
//!
//! | module | scheme | recovery threshold (m = n) | comm. load |
//! |---|---|---|---|
//! | [`uncoded`] | disjoint shards, wait for all | `n` | `n` |
//! | [`random`] | simple randomized (Prior Art, eq. (5)–(6)) | `≈ (m/r)·log m` | `≈ m·log m` |
//! | [`fractional`] | fractional repetition (Tandon et al.) | group coverage | ≤ `n` |
//! | [`cyclic_repetition`] | CR gradient coding (Tandon et al. \[7\]) | `m − r + 1` worst case | `m − r + 1` |
//! | [`cyclic_mds`] | cyclic-MDS code over ℂ (Raviv et al. \[9\]) | `m − r + 1` worst case | `m − r + 1` |
//! | [`bcc`] | **Batched Coupon's Collector (this paper)** | `⌈m/r⌉·H_{⌈m/r⌉}` expected | same |
//!
//! All decoders recover the exact **sum** `Σ_{j=1}^{m} g_j` (the master
//! divides by `m` itself, matching eq. (1)); exactness is property-tested.

#![forbid(unsafe_code)]
// Index loops are kept where they mirror the papers' matrix/recurrence
// notation; iterator rewrites would obscure the correspondence.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

pub mod bcc;
pub mod bcc_uncompressed;
pub mod cyclic_mds;
pub mod cyclic_repetition;
pub mod error;
pub mod fractional;
pub mod generalized_bcc;
pub mod payload;
pub mod random;
pub mod scheme;
pub mod uncoded;

pub use bcc::BccScheme;
pub use bcc_uncompressed::UncompressedBccScheme;
pub use cyclic_mds::CyclicMdsScheme;
pub use cyclic_repetition::CyclicRepetitionScheme;
pub use error::CodingError;
pub use fractional::FractionalRepetitionScheme;
pub use generalized_bcc::GeneralizedBccScheme;
pub use payload::Payload;
pub use random::RandomSubsetScheme;
pub use scheme::{Coverage, Decoder, GradientCodingScheme};
pub use uncoded::UncodedScheme;
