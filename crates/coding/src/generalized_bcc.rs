//! The **generalized BCC** scheme for heterogeneous clusters (§IV).
//!
//! Data distribution: given per-worker loads `(r₁,…,rₙ)` (from the P2
//! solver), worker `i` independently selects `rᵢ` examples uniformly at
//! random without replacement — no batching, fully decentralized.
//! Communication (§IV-A): *uncoded* — each locally computed partial gradient
//! is shipped individually. The master reaches **coverage** (eq. (16)) when
//! the received gradients span all `m` examples.

use crate::error::CodingError;
use crate::payload::Payload;
use crate::scheme::{Coverage, Decoder, GradientCodingScheme, ReceiveLog};
use bcc_data::Placement;
use bcc_linalg::vec_ops;
use rand::Rng;

/// Generalized BCC: heterogeneous random placement + uncoded communication.
#[derive(Debug, Clone)]
pub struct GeneralizedBccScheme {
    placement: Placement,
    m: usize,
}

impl GeneralizedBccScheme {
    /// Runs the decentralized data distribution for the given loads,
    /// redrawing until the union covers the dataset (the practical
    /// counterpart of §IV's conditioning on achievable coverage).
    ///
    /// Returns `None` when no covering placement exists (`Σ rᵢ < m`) or
    /// none was found within the retry budget.
    #[must_use]
    pub fn new<R: Rng + ?Sized>(m: usize, loads: &[usize], rng: &mut R) -> Option<Self> {
        if loads.iter().sum::<usize>() < m {
            return None;
        }
        for _ in 0..10_000 {
            let placement = Placement::heterogeneous_random(m, loads, rng);
            if placement.covers_all() {
                return Some(Self { placement, m });
            }
        }
        None
    }

    /// Builds from an explicit placement (tests / replay).
    ///
    /// # Panics
    /// Panics when the placement does not cover the dataset.
    #[must_use]
    pub fn from_placement(placement: Placement) -> Self {
        assert!(placement.covers_all(), "placement must cover the dataset");
        let m = placement.num_examples();
        Self { placement, m }
    }
}

impl GradientCodingScheme for GeneralizedBccScheme {
    fn name(&self) -> &'static str {
        "generalized-bcc"
    }

    fn placement(&self) -> &Placement {
        &self.placement
    }

    fn encode(&self, worker: usize, partials: &[Vec<f64>]) -> Result<Payload, CodingError> {
        if worker >= self.num_workers() {
            return Err(CodingError::UnknownWorker {
                worker,
                num_workers: self.num_workers(),
            });
        }
        let examples = self.placement.worker_examples(worker);
        if partials.len() != examples.len() {
            return Err(CodingError::MalformedPayload {
                reason: format!(
                    "worker {worker} expected {} partial gradients, got {}",
                    examples.len(),
                    partials.len()
                ),
            });
        }
        // §IV-A: z_i = {g_j : j ∈ G_i}, shipped individually.
        Ok(Payload::PerExample {
            entries: examples
                .iter()
                .copied()
                .zip(partials.iter().cloned())
                .collect(),
        })
    }

    fn decoder(&self) -> Box<dyn Decoder + '_> {
        Box::new(CoverageDecoder {
            log: ReceiveLog::new(self.num_workers()),
            grads: vec![None; self.m],
            covered: 0,
        })
    }

    fn message_units(&self, worker: usize) -> usize {
        self.placement.load_of(worker)
    }
}

/// Coverage decoder: keeps the first copy of each example's gradient and
/// completes when all `m` are present.
struct CoverageDecoder {
    log: ReceiveLog,
    grads: Vec<Option<Vec<f64>>>,
    covered: usize,
}

impl Decoder for CoverageDecoder {
    fn receive(&mut self, worker: usize, payload: Payload) -> Result<bool, CodingError> {
        let Payload::PerExample { entries } = payload else {
            return Err(CodingError::MalformedPayload {
                reason: "generalized BCC expects PerExample payloads".into(),
            });
        };
        self.log.record(worker, entries.len())?;
        for (j, g) in entries {
            if j >= self.grads.len() {
                return Err(CodingError::MalformedPayload {
                    reason: format!("example id {j} out of range"),
                });
            }
            if self.grads[j].is_none() {
                self.grads[j] = Some(g);
                self.covered += 1;
            }
        }
        Ok(self.is_complete())
    }

    fn is_complete(&self) -> bool {
        self.covered == self.grads.len()
    }

    fn decode(&self) -> Result<Vec<f64>, CodingError> {
        if !self.is_complete() {
            return Err(CodingError::NotComplete {
                received: self.log.messages(),
            });
        }
        vec_ops::sum_vectors(self.grads.iter().flatten().map(Vec::as_slice)).ok_or_else(|| {
            CodingError::DecodingFailed {
                reason: "no gradients collected".into(),
            }
        })
    }

    fn messages_received(&self) -> usize {
        self.log.messages()
    }

    fn communication_units(&self) -> usize {
        self.log.units()
    }

    fn coverage(&self) -> Coverage {
        Coverage::new(self.covered, self.grads.len())
    }

    fn decode_partial(&self) -> Result<Vec<f64>, CodingError> {
        vec_ops::sum_vectors(self.grads.iter().flatten().map(Vec::as_slice)).ok_or(
            CodingError::NotComplete {
                received: self.log.messages(),
            },
        )
    }

    fn partial_sum_terms(&self) -> Option<Vec<(f64, &[f64])>> {
        let terms: Vec<_> = self
            .grads
            .iter()
            .flatten()
            .map(|v| (1.0, v.as_slice()))
            .collect();
        (!terms.is_empty()).then_some(terms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::test_support::{random_gradients, total_sum, worker_partials};
    use bcc_stats::rng::derive_rng;

    #[test]
    fn decodes_exact_sum_with_heterogeneous_loads() {
        let m = 20;
        let loads = vec![2, 5, 8, 12, 3, 7];
        let mut rng = derive_rng(1, 0);
        let scheme = GeneralizedBccScheme::new(m, &loads, &mut rng).expect("coverable");
        let grads = random_gradients(m, 3, 2);
        let mut dec = scheme.decoder();
        for i in 0..loads.len() {
            let partials = worker_partials(scheme.placement(), i, &grads);
            if dec
                .receive(i, scheme.encode(i, &partials).unwrap())
                .unwrap()
            {
                break;
            }
        }
        assert!(dec.is_complete());
        assert!(bcc_linalg::approx_eq_slice(
            &dec.decode().unwrap(),
            &total_sum(&grads),
            1e-9
        ));
    }

    #[test]
    fn message_units_equal_per_worker_loads() {
        let m = 10;
        let loads = vec![3, 7, 10];
        let mut rng = derive_rng(3, 0);
        let scheme = GeneralizedBccScheme::new(m, &loads, &mut rng).unwrap();
        for (i, &l) in loads.iter().enumerate() {
            assert_eq!(scheme.message_units(i), l);
        }
    }

    #[test]
    fn insufficient_total_load_is_none() {
        let mut rng = derive_rng(4, 0);
        assert!(GeneralizedBccScheme::new(10, &[2, 3], &mut rng).is_none());
    }

    #[test]
    fn completes_early_when_fast_workers_cover() {
        // One worker holds everything; hearing from it alone completes.
        let m = 6;
        let placement = Placement::new(m, vec![vec![0, 1, 2, 3, 4, 5], vec![0, 1], vec![2, 3]]);
        let scheme = GeneralizedBccScheme::from_placement(placement);
        let grads = random_gradients(m, 2, 5);
        let mut dec = scheme.decoder();
        let partials = worker_partials(scheme.placement(), 0, &grads);
        assert!(dec
            .receive(0, scheme.encode(0, &partials).unwrap())
            .unwrap());
        assert_eq!(dec.messages_received(), 1);
        assert_eq!(dec.communication_units(), 6);
    }

    #[test]
    #[should_panic(expected = "cover")]
    fn from_placement_requires_coverage() {
        let placement = Placement::new(4, vec![vec![0, 1]]);
        let _ = GeneralizedBccScheme::from_placement(placement);
    }
}
