//! Pins the [`Decoder::partial_sum_terms`] contract: for every builtin
//! scheme, folding the reported `(coefficient, vector)` terms with the
//! serial recurrence — and with the work-stealing parallel reduction at
//! several thread counts — reproduces `decode`/`decode_partial` bit-for-bit
//! at every arrival prefix.

use bcc_coding::scheme::test_support::{random_gradients, worker_partials};
use bcc_coding::{
    BccScheme, CyclicMdsScheme, CyclicRepetitionScheme, FractionalRepetitionScheme,
    GeneralizedBccScheme, GradientCodingScheme, RandomSubsetScheme, UncodedScheme,
    UncompressedBccScheme,
};
use bcc_linalg::parallel::{par_weighted_sum, Parallelism};
use bcc_stats::rng::derive_rng;

fn builtin_schemes() -> Vec<Box<dyn GradientCodingScheme>> {
    let (m, n, r) = (10usize, 10usize, 2usize);
    let mut rng = derive_rng(91, 0);
    let bcc = loop {
        let s = BccScheme::new(m, n, r, &mut rng);
        if s.covers_all_batches() {
            break s;
        }
    };
    let bcc_uncompressed = loop {
        let s = UncompressedBccScheme::new(m, n, r, &mut rng);
        if s.covers_all_batches() {
            break s;
        }
    };
    let random = loop {
        let s = RandomSubsetScheme::new(m, n, r, &mut rng);
        if s.placement().covers_all() {
            break s;
        }
    };
    let generalized = GeneralizedBccScheme::new(m, &vec![r; n], &mut rng)
        .expect("generalized BCC coverage with r·n ≥ m");
    vec![
        Box::new(UncodedScheme::new(m, n)),
        Box::new(bcc),
        Box::new(bcc_uncompressed),
        Box::new(random),
        Box::new(generalized),
        Box::new(CyclicRepetitionScheme::new(n, r, &mut rng)),
        Box::new(CyclicMdsScheme::new(n, r)),
        Box::new(FractionalRepetitionScheme::new(n, r)),
    ]
}

/// The exact serial fold the contract names:
/// `out[k] = c₀·v₀[k]; out[k] = vᵢ[k].mul_add(cᵢ, out[k])`.
fn serial_fold(terms: &[(f64, &[f64])]) -> Vec<f64> {
    let (c0, v0) = terms[0];
    let mut out: Vec<f64> = v0.iter().map(|x| c0 * x).collect();
    for &(c, v) in &terms[1..] {
        for (o, x) in out.iter_mut().zip(v) {
            *o = x.mul_add(c, *o);
        }
    }
    out
}

fn assert_bits_eq(label: &str, expected: &[f64], got: &[f64]) {
    assert_eq!(expected.len(), got.len(), "{label}: length mismatch");
    for (k, (e, g)) in expected.iter().zip(got).enumerate() {
        assert_eq!(
            e.to_bits(),
            g.to_bits(),
            "{label}: component {k} differs ({e} vs {g})"
        );
    }
}

#[test]
fn terms_fold_matches_serial_decode_at_every_prefix() {
    for scheme in builtin_schemes() {
        let grads = random_gradients(scheme.num_examples(), 33, 7);
        let mut dec = scheme.decoder();

        assert!(
            dec.partial_sum_terms().is_none(),
            "{}: empty decoder must report no terms",
            scheme.name()
        );

        for worker in 0..scheme.num_workers() {
            if scheme.placement().worker_examples(worker).is_empty() {
                continue;
            }
            let partials = worker_partials(scheme.placement(), worker, &grads);
            let payload = scheme.encode(worker, &partials).expect("encode");
            dec.receive(worker, payload).expect("receive");

            let Some(terms) = dec.partial_sum_terms() else {
                continue;
            };
            let expected = if dec.is_complete() {
                dec.decode().expect("decode when complete")
            } else {
                dec.decode_partial()
                    .expect("partial sum with terms in hand")
            };
            let label = format!(
                "{} after {} messages",
                scheme.name(),
                dec.messages_received()
            );
            assert_bits_eq(&label, &expected, &serial_fold(&terms));
            for threads in [1usize, 2, 8] {
                let par = par_weighted_sum(Parallelism::threads(threads), &terms)
                    .expect("non-empty terms");
                assert_bits_eq(&format!("{label} ({threads} threads)"), &expected, &par);
            }
        }
    }
}

#[test]
fn solve_based_decoder_reports_no_terms() {
    let scheme = CyclicMdsScheme::new(10, 2);
    let grads = random_gradients(scheme.num_examples(), 8, 11);
    let mut dec = scheme.decoder();
    for worker in 0..scheme.num_workers() {
        let partials = worker_partials(scheme.placement(), worker, &grads);
        let payload = scheme.encode(worker, &partials).expect("encode");
        dec.receive(worker, payload).expect("receive");
        assert!(
            dec.partial_sum_terms().is_none(),
            "cyclic-MDS decodes via a linear solve; it must opt out of terms"
        );
    }
}

#[test]
fn linear_combination_decoder_reports_terms_only_when_complete() {
    let mut rng = derive_rng(5, 0);
    let scheme = CyclicRepetitionScheme::new(10, 3, &mut rng);
    let grads = random_gradients(scheme.num_examples(), 8, 13);
    let mut dec = scheme.decoder();
    for worker in 0..scheme.num_workers() {
        let partials = worker_partials(scheme.placement(), worker, &grads);
        let payload = scheme.encode(worker, &partials).expect("encode");
        dec.receive(worker, payload).expect("receive");
        assert_eq!(
            dec.partial_sum_terms().is_some(),
            dec.is_complete(),
            "CR terms must appear exactly when the decoding coefficients do"
        );
    }
}
