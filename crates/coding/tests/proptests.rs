//! Property tests: every scheme recovers the exact gradient sum under
//! arbitrary straggler patterns — the core correctness invariant of the
//! reproduction (DESIGN.md §4, "Exact-recovery invariant").

use bcc_coding::scheme::test_support::{random_gradients, total_sum, worker_partials};
use bcc_coding::{
    BccScheme, CyclicMdsScheme, CyclicRepetitionScheme, FractionalRepetitionScheme,
    GradientCodingScheme, RandomSubsetScheme, UncodedScheme,
};
use bcc_stats::rng::derive_rng;
use proptest::prelude::*;

/// Feeds workers to the decoder in the given arrival order until complete;
/// returns (decoded sum, messages used) or None if never complete.
fn drive(
    scheme: &dyn GradientCodingScheme,
    grads: &[Vec<f64>],
    order: &[usize],
) -> Option<(Vec<f64>, usize)> {
    let mut dec = scheme.decoder();
    for &i in order {
        // Workers holding no data do not participate in the round.
        if scheme.placement().worker_examples(i).is_empty() {
            continue;
        }
        let partials = worker_partials(scheme.placement(), i, grads);
        let payload = scheme.encode(i, &partials).expect("encode");
        if dec.receive(i, payload).expect("receive") {
            return Some((dec.decode().expect("decode"), dec.messages_received()));
        }
    }
    None
}

fn shuffled_order(n: usize, seed: u64) -> Vec<usize> {
    use rand::seq::SliceRandom;
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(&mut derive_rng(seed, 77));
    order
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bcc_exact_recovery(
        m in 4usize..40,
        r_div in 1usize..6,
        seed in 0u64..1000,
    ) {
        let r = (m / r_div.min(m)).max(1);
        let nb = m.div_ceil(r);
        // Enough workers to guarantee coverage almost surely; retry if not.
        let n = nb * 6;
        let mut rng = derive_rng(seed, 1);
        let mut scheme = BccScheme::new(m, n, r, &mut rng);
        for _ in 0..20 {
            if scheme.covers_all_batches() { break; }
            scheme = BccScheme::new(m, n, r, &mut rng);
        }
        prop_assume!(scheme.covers_all_batches());
        let grads = random_gradients(m, 3, seed ^ 0xab);
        let order = shuffled_order(n, seed);
        let (sum, used) = drive(&scheme, &grads, &order).expect("covering BCC completes");
        prop_assert!(bcc_linalg::approx_eq_slice(&sum, &total_sum(&grads), 1e-7));
        prop_assert!(used >= nb, "needs at least one message per batch");
    }

    #[test]
    fn cyclic_repetition_exact_under_random_stragglers(
        n in 3usize..14,
        seed in 0u64..1000,
    ) {
        let r = 1 + (seed as usize % n.min(5));
        let mut rng = derive_rng(seed, 2);
        let scheme = CyclicRepetitionScheme::new(n, r, &mut rng);
        let grads = random_gradients(n, 2, seed ^ 0xcd);
        let order = shuffled_order(n, seed);
        let (sum, used) = drive(&scheme, &grads, &order).expect("full arrival completes");
        prop_assert!(bcc_linalg::approx_eq_slice(&sum, &total_sum(&grads), 1e-4));
        prop_assert!(used >= scheme.recovery_threshold());
    }

    #[test]
    fn cyclic_mds_exact_under_random_stragglers(
        n in 3usize..12,
        seed in 0u64..1000,
    ) {
        let r = 1 + (seed as usize % n.min(4));
        let scheme = CyclicMdsScheme::new(n, r);
        let grads = random_gradients(n, 2, seed ^ 0xef);
        let order = shuffled_order(n, seed);
        let (sum, used) = drive(&scheme, &grads, &order).expect("full arrival completes");
        prop_assert!(bcc_linalg::approx_eq_slice(&sum, &total_sum(&grads), 1e-4));
        // MDS property: completes exactly at the threshold for any order.
        prop_assert_eq!(used, scheme.recovery_threshold());
    }

    #[test]
    fn fractional_exact_recovery(
        shards in 2usize..6,
        r in 1usize..5,
        seed in 0u64..1000,
    ) {
        let n = shards * r;
        let scheme = FractionalRepetitionScheme::new(n, r);
        let grads = random_gradients(n, 2, seed ^ 0x11);
        let order = shuffled_order(n, seed);
        let (sum, _) = drive(&scheme, &grads, &order).expect("full arrival completes");
        prop_assert!(bcc_linalg::approx_eq_slice(&sum, &total_sum(&grads), 1e-8));
    }

    #[test]
    fn random_subset_exact_recovery(
        m in 3usize..25,
        seed in 0u64..1000,
    ) {
        let r = 1 + (seed as usize % m.min(6));
        let n = m * 4;
        let mut rng = derive_rng(seed, 3);
        let mut scheme = RandomSubsetScheme::new(m, n, r, &mut rng);
        for _ in 0..20 {
            if scheme.placement().covers_all() { break; }
            scheme = RandomSubsetScheme::new(m, n, r, &mut rng);
        }
        prop_assume!(scheme.placement().covers_all());
        let grads = random_gradients(m, 2, seed ^ 0x22);
        let order = shuffled_order(n, seed);
        let (sum, used) = drive(&scheme, &grads, &order).expect("covering placement completes");
        prop_assert!(bcc_linalg::approx_eq_slice(&sum, &total_sum(&grads), 1e-8));
        // Communication load is r units per message (eq. (6) blow-up).
        prop_assert!(used * r >= m);
    }

    #[test]
    fn uncoded_exact_recovery(
        m in 1usize..40,
        n in 1usize..12,
        seed in 0u64..1000,
    ) {
        let scheme = UncodedScheme::new(m, n);
        let grads = random_gradients(m, 2, seed ^ 0x33);
        let order = shuffled_order(n, seed);
        let (sum, used) = drive(&scheme, &grads, &order).expect("all workers complete");
        prop_assert!(bcc_linalg::approx_eq_slice(&sum, &total_sum(&grads), 1e-8));
        prop_assert_eq!(used, scheme.required_workers().min(n));
    }

    #[test]
    fn all_single_unit_schemes_report_units_equal_messages(
        n in 4usize..10,
        seed in 0u64..500,
    ) {
        // Communication-load accounting: for Sum/Linear payload schemes the
        // units equal the message count (L = K in Theorem 1 / eq. (8)).
        let r = 2;
        let mut rng = derive_rng(seed, 4);
        let cr = CyclicRepetitionScheme::new(n, r, &mut rng);
        let grads = random_gradients(n, 2, seed);
        let mut dec = cr.decoder();
        let mut fed = 0;
        for i in shuffled_order(n, seed) {
            let partials = worker_partials(cr.placement(), i, &grads);
            fed += 1;
            if dec.receive(i, cr.encode(i, &partials).unwrap()).unwrap() {
                break;
            }
        }
        prop_assert_eq!(dec.messages_received(), fed);
        prop_assert_eq!(dec.communication_units(), fed);
    }
}
