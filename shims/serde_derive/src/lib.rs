//! Derive macros for the in-tree `serde` shim.
//!
//! Parses the item's token stream by hand (no `syn`/`quote` in this offline
//! environment) and emits `Serialize`/`Deserialize` impls against the shim's
//! `Value` data model. Supports the shapes this workspace uses: structs with
//! named fields, and enums with unit, newtype-tuple, multi-tuple, and
//! struct variants. The wire shape matches serde's externally-tagged JSON
//! representation (`"Variant"` / `{"Variant": ...}`).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    Struct {
        name: String,
        fields: Vec<String>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Derives `serde::Serialize` (shim data model).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_item(input);
    gen_serialize(&shape)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` (shim data model).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_item(input);
    gen_deserialize(&shape)
        .parse()
        .expect("generated Deserialize impl parses")
}

// --- parsing ---------------------------------------------------------------

fn parse_item(input: TokenStream) -> Shape {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes (doc comments arrive as #[doc = "..."]) and
    // visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2, // '#' + [..]
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name, found {other:?}"),
    };
    i += 1;

    // Generic parameters are not supported by the shim derives.
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        assert!(
            p.as_char() != '<',
            "serde shim derives do not support generic type `{name}`"
        );
    }

    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(_) => i += 1,
            None => panic!("no braced body found for `{name}`"),
        }
    };

    match kind.as_str() {
        "struct" => Shape::Struct {
            name,
            fields: parse_named_fields(body),
        },
        "enum" => Shape::Enum {
            name,
            variants: parse_variants(body),
        },
        other => panic!("cannot derive for `{other}` items"),
    }
}

/// Field names of a `{ a: T, b: U }` body.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Skip attributes and visibility before the field name.
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 2;
                continue;
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
                continue;
            }
            _ => {}
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected field name, found {other:?}"),
        };
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("expected `:` after field `{name}`, found {other:?}"),
        }
        // Consume the type: everything until a comma outside angle brackets.
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(name);
    }
    fields
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 2;
                continue;
            }
            TokenTree::Punct(p) if p.as_char() == ',' => {
                i += 1;
                continue;
            }
            _ => {}
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected variant name, found {other:?}"),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        // Skip a possible discriminant (`= expr`) — not used in this repo.
        variants.push(Variant { name, kind });
    }
    variants
}

/// Number of fields in a tuple-variant body `(T, U, ...)`.
fn count_tuple_fields(body: TokenStream) -> usize {
    let mut angle_depth = 0i32;
    let mut count = 0usize;
    let mut saw_any = false;
    for t in body {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => count += 1,
            _ => saw_any = true,
        }
    }
    if saw_any {
        count + 1
    } else {
        0
    }
}

// --- code generation -------------------------------------------------------

fn gen_serialize(shape: &Shape) -> String {
    match shape {
        Shape::Struct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!("(String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f})),")
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(vec![{pushes}])\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let arms: String = variants.iter().map(serialize_arm).collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

fn serialize_arm(v: &Variant) -> String {
    let vname = &v.name;
    match &v.kind {
        VariantKind::Unit => {
            format!("Self::{vname} => ::serde::Value::Str(String::from(\"{vname}\")),")
        }
        VariantKind::Tuple(1) => format!(
            "Self::{vname}(f0) => ::serde::Value::Object(vec![(String::from(\"{vname}\"), \
                 ::serde::Serialize::to_value(f0))]),"
        ),
        VariantKind::Tuple(n) => {
            let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
            let items: String = binds
                .iter()
                .map(|b| format!("::serde::Serialize::to_value({b}),"))
                .collect();
            format!(
                "Self::{vname}({}) => ::serde::Value::Object(vec![(String::from(\"{vname}\"), \
                     ::serde::Value::Array(vec![{items}]))]),",
                binds.join(", ")
            )
        }
        VariantKind::Named(fields) => {
            let binds = fields.join(", ");
            let items: String = fields
                .iter()
                .map(|f| format!("(String::from(\"{f}\"), ::serde::Serialize::to_value({f})),"))
                .collect();
            format!(
                "Self::{vname} {{ {binds} }} => ::serde::Value::Object(vec![\
                     (String::from(\"{vname}\"), ::serde::Value::Object(vec![{items}]))]),"
            )
        }
    }
}

fn gen_deserialize(shape: &Shape) -> String {
    match shape {
        Shape::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::from_value(v.field(\"{f}\")?)?,"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n\
                         Ok(Self {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("\"{0}\" => Ok(Self::{0}),", v.name))
                .collect();
            let tagged_arms: String = variants
                .iter()
                .filter(|v| !matches!(v.kind, VariantKind::Unit))
                .map(deserialize_tagged_arm)
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {unit_arms}\n\
                                 other => Err(::serde::Error::msg(format!(\
                                     \"unknown variant `{{other}}` of {name}\"))),\n\
                             }},\n\
                             ::serde::Value::Object(fields) if fields.len() == 1 => {{\n\
                                 let (tag, inner) = &fields[0];\n\
                                 match tag.as_str() {{\n\
                                     {tagged_arms}\n\
                                     other => Err(::serde::Error::msg(format!(\
                                         \"unknown variant `{{other}}` of {name}\"))),\n\
                                 }}\n\
                             }}\n\
                             other => Err(::serde::Error::msg(format!(\
                                 \"expected {name} variant, got {{other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

fn deserialize_tagged_arm(v: &Variant) -> String {
    let vname = &v.name;
    match &v.kind {
        VariantKind::Unit => unreachable!("unit variants handled separately"),
        VariantKind::Tuple(1) => {
            format!("\"{vname}\" => Ok(Self::{vname}(::serde::Deserialize::from_value(inner)?)),")
        }
        VariantKind::Tuple(n) => {
            let inits: String = (0..*n)
                .map(|k| {
                    format!(
                        "::serde::Deserialize::from_value(items.get({k}).ok_or_else(|| \
                             ::serde::Error::msg(\"short tuple variant\"))?)?,"
                    )
                })
                .collect();
            format!(
                "\"{vname}\" => match inner {{\n\
                     ::serde::Value::Array(items) => Ok(Self::{vname}({inits})),\n\
                     other => Err(::serde::Error::msg(format!(\
                         \"expected array for variant {vname}, got {{other:?}}\"))),\n\
                 }},"
            )
        }
        VariantKind::Named(fields) => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::from_value(inner.field(\"{f}\")?)?,"))
                .collect();
            format!("\"{vname}\" => Ok(Self::{vname} {{ {inits} }}),")
        }
    }
}
