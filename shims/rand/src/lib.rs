//! In-tree stand-in for the `rand` crate (0.8-style API surface).
//!
//! No registry access in this environment, so the workspace ships its own
//! small PRNG stack: [`rngs::StdRng`] is xoshiro256** seeded through
//! SplitMix64 (`seed_from_u64`), with the [`Rng`] / [`SeedableRng`] /
//! [`seq::SliceRandom`] surface the reproduction uses. Streams are
//! deterministic and high-quality for simulation purposes, but the exact
//! values differ from upstream `rand` — nothing in this repo depends on
//! upstream streams.

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing sampling methods, in the style of `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of `T` from its standard distribution
    /// (uniform bits for integers, uniform `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Samples uniformly from a range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be in [0,1], got {p}");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable RNGs (`rand::SeedableRng` subset).
pub trait SeedableRng: Sized {
    /// Constructs the RNG from a single `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Standard-distribution sampling for primitive types.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u16 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for u8 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for i64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for i32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits → [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Multiply-shift bounded sampling (Lemire); bias is < 2^-64
                // per draw, far below anything the simulations can resolve.
                let hi = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (s, e) = self.into_inner();
                assert!(s <= e, "cannot sample empty range");
                if s == 0 && e as u128 == <$t>::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (s..e + 1).sample_from(rng)
            }
        }
    )*};
}

int_range_impls!(usize, u64, u32, u16, u8);

macro_rules! float_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u: f64 = f64::from_rng(rng);
                self.start + (u as $t) * (self.end - self.start)
            }
        }
    )*};
}

float_range_impls!(f64, f32);

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256** with SplitMix64 seeding.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Slice helpers (`rand::seq` subset).
pub mod seq {
    use super::Rng;

    /// Random slice operations, in the style of `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64_pub(), b.next_u64_pub());
        }
    }

    impl StdRng {
        fn next_u64_pub(&mut self) -> u64 {
            use super::RngCore;
            self.next_u64()
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..10)] = true;
            let f = rng.gen_range(-1.0..1.0f64);
            assert!((-1.0..1.0).contains(&f));
        }
        assert!(seen.iter().all(|s| *s), "all buckets should be hit");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn unsized_rng_works_through_references() {
        fn takes_dynish<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(4);
        let _ = takes_dynish(&mut rng);
    }
}
