//! In-tree stand-in for `crossbeam-channel`, wrapping `std::sync::mpsc`.
//!
//! Only the MPSC subset the cluster runtime uses: [`unbounded`] channels,
//! cloneable senders, and blocking receives with timeout. Error types mirror
//! upstream names so call sites read identically.

use std::sync::mpsc;
use std::time::Duration;

/// Creates an unbounded MPSC channel.
#[must_use]
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::channel();
    (Sender { inner: tx }, Receiver { inner: rx })
}

/// Sending half; cloneable.
pub struct Sender<T> {
    inner: mpsc::Sender<T>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Self {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Sender<T> {
    /// Sends a message, failing when the receiver is gone.
    ///
    /// # Errors
    /// [`SendError`] carrying the unsent message when the channel is closed.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        self.inner
            .send(value)
            .map_err(|mpsc::SendError(v)| SendError(v))
    }
}

/// Receiving half.
pub struct Receiver<T> {
    inner: mpsc::Receiver<T>,
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives or all senders disconnect.
    ///
    /// # Errors
    /// [`RecvError`] when the channel is closed and drained.
    pub fn recv(&self) -> Result<T, RecvError> {
        self.inner.recv().map_err(|_| RecvError)
    }

    /// Blocks up to `timeout` for a message.
    ///
    /// # Errors
    /// [`RecvTimeoutError::Timeout`] or [`RecvTimeoutError::Disconnected`].
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        self.inner.recv_timeout(timeout).map_err(|e| match e {
            mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
            mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
        })
    }

    /// Non-blocking receive.
    ///
    /// # Errors
    /// [`TryRecvError::Empty`] or [`TryRecvError::Disconnected`].
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        self.inner.try_recv().map_err(|e| match e {
            mpsc::TryRecvError::Empty => TryRecvError::Empty,
            mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
        })
    }
}

/// The channel closed before the message could be sent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// The channel closed and no further messages remain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Timeout-receive failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message within the timeout.
    Timeout,
    /// All senders disconnected and the queue is drained.
    Disconnected,
}

/// Non-blocking-receive failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// No message currently queued.
    Empty,
    /// All senders disconnected and the queue is drained.
    Disconnected,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(5).unwrap();
        assert_eq!(rx.recv().unwrap(), 5);
    }

    #[test]
    fn timeout_and_disconnect() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn cloned_senders_feed_one_receiver() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        std::thread::spawn(move || tx2.send(1).unwrap())
            .join()
            .unwrap();
        tx.send(2).unwrap();
        drop(tx);
        let mut got = vec![rx.recv().unwrap(), rx.recv().unwrap()];
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
        assert_eq!(rx.recv(), Err(RecvError));
    }
}
