//! In-tree stand-in for `crossbeam-channel`, wrapping `std::sync::mpsc`.
//!
//! Only the MPSC subset the cluster runtime uses: [`unbounded`] channels,
//! [`bounded`] (rendezvous-free) channels for backpressured send queues,
//! cloneable senders, and blocking receives with timeout. Error types mirror
//! upstream names so call sites read identically.

use std::sync::mpsc;
use std::time::Duration;

/// Creates an unbounded MPSC channel.
#[must_use]
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::channel();
    (Sender { inner: tx }, Receiver { inner: rx })
}

/// Creates a bounded MPSC channel holding at most `cap` queued messages.
/// `send` blocks when the queue is full; `try_send` surfaces fullness as
/// [`TrySendError::Full`] — the primitive behind backpressured writer
/// queues.
///
/// # Panics
/// Panics when `cap` is zero (rendezvous channels are not part of the
/// subset this shim supports).
#[must_use]
pub fn bounded<T>(cap: usize) -> (SyncSender<T>, Receiver<T>) {
    assert!(cap > 0, "bounded(0) rendezvous channels are unsupported");
    let (tx, rx) = mpsc::sync_channel(cap);
    (SyncSender { inner: tx }, Receiver { inner: rx })
}

/// Sending half; cloneable.
pub struct Sender<T> {
    inner: mpsc::Sender<T>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Self {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Sender<T> {
    /// Sends a message, failing when the receiver is gone.
    ///
    /// # Errors
    /// [`SendError`] carrying the unsent message when the channel is closed.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        self.inner
            .send(value)
            .map_err(|mpsc::SendError(v)| SendError(v))
    }
}

/// Sending half of a [`bounded`] channel; cloneable.
pub struct SyncSender<T> {
    inner: mpsc::SyncSender<T>,
}

impl<T> Clone for SyncSender<T> {
    fn clone(&self) -> Self {
        Self {
            inner: self.inner.clone(),
        }
    }
}

impl<T> SyncSender<T> {
    /// Blocks until queue space frees up, failing when the receiver is
    /// gone.
    ///
    /// # Errors
    /// [`SendError`] carrying the unsent message when the channel is closed.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        self.inner
            .send(value)
            .map_err(|mpsc::SendError(v)| SendError(v))
    }

    /// Non-blocking send: enqueues only when space is available right now.
    ///
    /// # Errors
    /// [`TrySendError::Full`] when the queue is at capacity,
    /// [`TrySendError::Disconnected`] when the receiver is gone — both
    /// carry the unsent message back.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        self.inner.try_send(value).map_err(|e| match e {
            mpsc::TrySendError::Full(v) => TrySendError::Full(v),
            mpsc::TrySendError::Disconnected(v) => TrySendError::Disconnected(v),
        })
    }
}

/// Receiving half.
pub struct Receiver<T> {
    inner: mpsc::Receiver<T>,
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives or all senders disconnect.
    ///
    /// # Errors
    /// [`RecvError`] when the channel is closed and drained.
    pub fn recv(&self) -> Result<T, RecvError> {
        self.inner.recv().map_err(|_| RecvError)
    }

    /// Blocks up to `timeout` for a message.
    ///
    /// # Errors
    /// [`RecvTimeoutError::Timeout`] or [`RecvTimeoutError::Disconnected`].
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        self.inner.recv_timeout(timeout).map_err(|e| match e {
            mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
            mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
        })
    }

    /// Non-blocking receive.
    ///
    /// # Errors
    /// [`TryRecvError::Empty`] or [`TryRecvError::Disconnected`].
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        self.inner.try_recv().map_err(|e| match e {
            mpsc::TryRecvError::Empty => TryRecvError::Empty,
            mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
        })
    }
}

/// The channel closed before the message could be sent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// The channel closed and no further messages remain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Timeout-receive failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message within the timeout.
    Timeout,
    /// All senders disconnected and the queue is drained.
    Disconnected,
}

/// Non-blocking-receive failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// No message currently queued.
    Empty,
    /// All senders disconnected and the queue is drained.
    Disconnected,
}

/// Non-blocking-send failure, carrying the unsent message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The bounded queue is at capacity.
    Full(T),
    /// The receiver is gone.
    Disconnected(T),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(5).unwrap();
        assert_eq!(rx.recv().unwrap(), 5);
    }

    #[test]
    fn timeout_and_disconnect() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn bounded_try_send_surfaces_fullness_and_disconnect() {
        let (tx, rx) = bounded::<u8>(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
        assert_eq!(rx.recv().unwrap(), 1);
        tx.try_send(3).unwrap();
        drop(rx);
        assert_eq!(tx.try_send(9), Err(TrySendError::Disconnected(9)));
    }

    #[test]
    fn bounded_blocking_send_waits_for_space() {
        let (tx, rx) = bounded::<u8>(1);
        tx.send(1).unwrap();
        let tx2 = tx.clone();
        let h = std::thread::spawn(move || tx2.send(2).unwrap());
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv().unwrap(), 1);
        h.join().unwrap();
        assert_eq!(rx.recv().unwrap(), 2);
    }

    #[test]
    fn cloned_senders_feed_one_receiver() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        std::thread::spawn(move || tx2.send(1).unwrap())
            .join()
            .unwrap();
        tx.send(2).unwrap();
        drop(tx);
        let mut got = vec![rx.recv().unwrap(), rx.recv().unwrap()];
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
        assert_eq!(rx.recv(), Err(RecvError));
    }
}
