//! In-tree stand-in for `criterion`.
//!
//! Provides the API surface this workspace's benches use — `Criterion`,
//! benchmark groups, `BenchmarkId`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros — over a simple wall-clock
//! harness: each benchmark runs a calibration pass to size its batches, then
//! `sample_size` timed batches, reporting median/min/max per-iteration time.
//! No statistics beyond that, no HTML reports, no regression baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Target wall-clock budget for one benchmark's measurement phase.
const MEASURE_BUDGET: Duration = Duration::from_millis(600);

/// Top-level harness handle.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark collects.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "need at least two samples");
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function(&mut self, name: impl Into<String>, mut f: impl FnMut(&mut Bencher)) {
        run_benchmark(&name.into(), self.sample_size, &mut f);
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in the group.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, mut f: impl FnMut(&mut Bencher)) {
        let id = id.into();
        run_benchmark(
            &format!("{}/{}", self.name, id.label()),
            self.criterion.sample_size,
            &mut f,
        );
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        run_benchmark(
            &format!("{}/{}", self.name, id.label()),
            self.criterion.sample_size,
            &mut |b| f(b, input),
        );
    }

    /// Ends the group (kept for API compatibility; prints nothing extra).
    pub fn finish(self) {}
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with a function name and a parameter value.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        Self {
            function: function.to_string(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id carrying only a function name.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn label(&self) -> String {
        match &self.parameter {
            Some(p) if self.function.is_empty() => p.clone(),
            Some(p) => format!("{}/{p}", self.function),
            None => self.function.clone(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(function: String) -> Self {
        Self {
            function,
            parameter: None,
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(function: &str) -> Self {
        function.to_string().into()
    }
}

/// Timing handle handed to benchmark closures.
pub struct Bencher {
    /// Iterations per timed batch (set by calibration).
    batch: u64,
    /// Per-batch durations, filled by [`Bencher::iter`].
    samples: Vec<Duration>,
    /// When true, only calibrate (single iteration, no recording).
    calibrating: bool,
    /// Duration of the single calibration iteration.
    calibration: Duration,
}

impl Bencher {
    /// Times `sample_size` batches of the routine.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        if self.calibrating {
            let start = Instant::now();
            let _keep = routine();
            self.calibration = start.elapsed();
            return;
        }
        let start = Instant::now();
        for _ in 0..self.batch {
            let _keep = routine();
        }
        self.samples.push(start.elapsed());
    }
}

fn run_benchmark(label: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    // Calibration: one iteration to size batches to the time budget.
    let mut bencher = Bencher {
        batch: 1,
        samples: Vec::new(),
        calibrating: true,
        calibration: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = bencher.calibration.max(Duration::from_nanos(1));
    let budget_per_sample = MEASURE_BUDGET / sample_size as u32;
    let batch = (budget_per_sample.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    bencher.calibrating = false;
    bencher.batch = batch;
    bencher.samples = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        f(&mut bencher);
    }

    let mut per_iter: Vec<f64> = bencher
        .samples
        .iter()
        .map(|d| d.as_secs_f64() / batch as f64)
        .collect();
    per_iter.sort_by(f64::total_cmp);
    let median = per_iter[per_iter.len() / 2];
    let min = per_iter.first().copied().unwrap_or(0.0);
    let max = per_iter.last().copied().unwrap_or(0.0);
    println!(
        "bench: {label:<50} time: [{} {} {}] ({} samples × {batch} iters)",
        format_time(min),
        format_time(median),
        format_time(max),
        per_iter.len(),
    );
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Declares a benchmark group runner (name/config/targets form).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut group = c.benchmark_group("shim");
        let mut count = 0u64;
        group.bench_function("counter", |b| {
            b.iter(|| {
                count += 1;
                count
            });
        });
        group.bench_with_input(BenchmarkId::new("param", 7), &7u64, |b, &p| {
            b.iter(|| p * 2);
        });
        group.finish();
        assert!(count > 0, "routine must have run");
    }

    #[test]
    fn id_labels() {
        assert_eq!(BenchmarkId::new("f", 3).label(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").label(), "x");
        assert_eq!(BenchmarkId::from("plain").label(), "plain");
    }
}
