//! In-tree stand-in for `proptest`.
//!
//! Implements the strategy/`proptest!` surface this workspace uses as a
//! deterministic random-sampling harness: each `#[test]` runs
//! `ProptestConfig::cases` cases with inputs drawn from its strategies,
//! seeded from the test's name so failures replay bit-for-bit. There is no
//! shrinking — a failing case reports its inputs' case number instead.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

/// How many times a `prop_filter` retries before giving up.
const FILTER_RETRIES: usize = 1_000;

/// Runner configuration (`proptest::test_runner::Config` subset).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Derives the deterministic RNG for one property test.
#[must_use]
pub fn new_rng(test_name: &str) -> StdRng {
    // FNV-1a over the name: stable across runs and platforms.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// A generator of values of `Self::Value`.
///
/// Unlike real proptest there is no shrinking; `generate` draws one value.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Rejects values failing `pred`, retrying (bounded) until one passes.
    fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            pred,
        }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        self.0.generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..FILTER_RETRIES {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter `{}` rejected {FILTER_RETRIES} consecutive samples",
            self.reason
        );
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed alternatives (`prop_oneof!` backend).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// Builds a union over the given alternatives.
    ///
    /// # Panics
    /// Panics on an empty alternative list.
    #[must_use]
    pub fn new(alternatives: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!alternatives.is_empty(), "prop_oneof! needs alternatives");
        Self(alternatives)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        let i = rng.gen_range(0..self.0.len());
        self.0[i].generate(rng)
    }
}

// --- primitive strategies --------------------------------------------------

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value (full bit patterns for ints and floats).
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        // Arbitrary bit patterns (±0, subnormals, ±inf) excluding NaN,
        // matching upstream proptest's default float strategy: NaN breaks
        // `PartialEq`-based roundtrip properties.
        loop {
            let x = f64::from_bits(rng.gen::<u64>());
            if !x.is_nan() {
                return x;
            }
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        loop {
            let x = f32::from_bits(rng.gen::<u32>());
            if !x.is_nan() {
                return x;
            }
        }
    }
}

/// Strategy produced by [`any`].
pub struct ArbitraryStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for ArbitraryStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (`proptest::prelude::any`).
#[must_use]
pub fn any<T: Arbitrary>() -> ArbitraryStrategy<T> {
    ArbitraryStrategy(std::marker::PhantomData)
}

macro_rules! range_strategies {
    (int: $($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
    (float: $($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategies!(int: usize, u64, u32, u16, u8);
range_strategies!(float: f64, f32);

macro_rules! tuple_strategies {
    ($(($($s:ident : $idx:tt),+)),*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies!(
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3)
);

/// Collection strategies (`proptest::collection` subset).
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Size specification for [`vec`](fn@vec): an exact length or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            Self {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    /// Strategy for `Vec<T>` with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec`](fn@vec).
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..self.size.max_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Module alias so `prop::collection::vec` works via the prelude.
pub mod prop {
    pub use crate::collection;
}

/// Everything a property-test file needs (`proptest::prelude` subset).
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

// --- macros ----------------------------------------------------------------

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Asserts inside a property body; failure reports the condition and aborts
/// the case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err(format!(
                "prop_assert failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err(format!($($fmt)+));
        }
    };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err(format!(
                "prop_assert_eq failed: {:?} != {:?} ({}:{})",
                l,
                r,
                file!(),
                line!()
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err(format!($($fmt)+));
        }
    }};
}

/// Inequality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err(format!(
                "prop_assert_ne failed: both {:?} ({}:{})",
                l,
                file!(),
                line!()
            ));
        }
    }};
}

/// Skips the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Ok(());
        }
    };
}

/// Declares property tests (`proptest!` subset): an optional
/// `#![proptest_config(...)]` header followed by `#[test] fn` items whose
/// arguments are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::new_rng(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)*
                let outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                    $body
                    Ok(())
                })();
                if let Err(message) = outcome {
                    panic!("case {case}/{} failed: {message}", config.cases);
                }
            }
        }
        $crate::__proptest_tests! { ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_rng_per_name() {
        use rand::Rng;
        let mut a = crate::new_rng("x");
        let mut b = crate::new_rng("x");
        let mut c = crate::new_rng("y");
        let (va, vb, vc) = (a.gen::<u64>(), b.gen::<u64>(), c.gen::<u64>());
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..10, f in -1.0..1.0f64) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn oneof_and_filter_compose(
            v in prop_oneof![
                any::<f64>().prop_filter("finite", |x| x.is_finite()),
                Just(0.0),
            ],
        ) {
            prop_assert!(v.is_finite());
        }

        #[test]
        fn vec_lengths_in_range(v in prop::collection::vec(0u8..255, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn assume_skips(n in 0usize..10) {
            prop_assume!(n > 3);
            prop_assert!(n > 3);
        }

        #[test]
        fn tuples_and_map(pair in (0u32..5, 0u32..5).prop_map(|(a, b)| a + b)) {
            prop_assert!(pair < 10);
        }
    }
}
