//! In-tree stand-in for `serde_json`, rendering and parsing the serde shim's
//! [`Value`] tree as JSON text.

pub use serde::Error;
use serde::{Deserialize, Serialize, Value};

/// Serializes `value` to compact JSON.
///
/// # Errors
/// Currently infallible for the shim data model; kept fallible for API
/// compatibility.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` to pretty-printed JSON (two-space indent).
///
/// # Errors
/// Currently infallible; kept fallible for API compatibility.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses JSON text into a `T`.
///
/// # Errors
/// On malformed JSON or shape mismatches with `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_value(&v)
}

// --- writer ----------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => write_number(*n, out),
        Value::Uint(u) => out.push_str(&u.to_string()),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => write_seq(
            items.iter(),
            out,
            indent,
            depth,
            ('[', ']'),
            |item, out, d| {
                write_value(item, out, indent, d);
            },
        ),
        Value::Object(fields) => {
            write_seq(
                fields.iter(),
                out,
                indent,
                depth,
                ('{', '}'),
                |(k, val), out, d| {
                    write_string(k, out);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    write_value(val, out, indent, d);
                },
            );
        }
    }
}

fn write_seq<I: ExactSizeIterator>(
    items: I,
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    brackets: (char, char),
    mut write_item: impl FnMut(I::Item, &mut String, usize),
) {
    let n = items.len();
    out.push(brackets.0);
    if n == 0 {
        out.push(brackets.1);
        return;
    }
    for (i, item) in items.enumerate() {
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * (depth + 1)));
        }
        write_item(item, out, depth + 1);
        if i + 1 < n {
            out.push(',');
        }
    }
    if let Some(step) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', step * depth));
    }
    out.push(brackets.1);
}

fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no non-finite numbers; mirror serde_json's strictness as
        // closely as a panic-free writer can.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- parser ----------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::msg(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.parse_value()?;
                    fields.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(fields));
                        }
                        _ => return Err(Error::msg(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::msg(format!(
                "unexpected {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::msg("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let mut code = self.read_hex4(self.pos + 1)?;
                            self.pos += 4;
                            // UTF-16 surrogate pair: a high surrogate must be
                            // followed by an escaped low surrogate.
                            if (0xD800..0xDC00).contains(&code) {
                                if self.bytes.get(self.pos + 1..self.pos + 3)
                                    != Some(b"\\u".as_slice())
                                {
                                    return Err(Error::msg("unpaired high surrogate"));
                                }
                                let low = self.read_hex4(self.pos + 3)?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(Error::msg("invalid low surrogate"));
                                }
                                self.pos += 6;
                                code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                            }
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("bad \\u code point"))?,
                            );
                        }
                        other => return Err(Error::msg(format!("bad escape {other:?}"))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::msg("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().expect("non-empty by peek");
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Reads four hex digits starting at byte offset `at`.
    fn read_hex4(&self, at: usize) -> Result<u32, Error> {
        let hex = self
            .bytes
            .get(at..at + 4)
            .ok_or_else(|| Error::msg("short \\u escape"))?;
        u32::from_str_radix(
            std::str::from_utf8(hex).map_err(|_| Error::msg("bad \\u escape"))?,
            16,
        )
        .map_err(|_| Error::msg("bad \\u escape"))
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut integral = true;
        while let Some(b) = self.peek() {
            match b {
                b'.' | b'e' | b'E' | b'+' => integral = false,
                b'-' if self.pos > start => integral = false,
                b'-' => {}
                _ if b.is_ascii_digit() => {}
                _ => break,
            }
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        // Integer literals keep full 64-bit precision (Uint/Int); anything
        // with a fraction or exponent becomes a float.
        if integral {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Uint(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| Error::msg(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_vec() {
        let v = vec![1i32, 2, 3];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,2,3]");
        let back: Vec<i32> = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_has_newlines() {
        let v = vec![1i32, 2];
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "[\n  1,\n  2\n]");
    }

    #[test]
    fn parses_nested_objects() {
        let v: Value = from_str(r#"{"a": [1.5, null, true], "b": "x\"y"}"#).unwrap();
        assert_eq!(v.get("b"), Some(&Value::Str("x\"y".into())));
        match v.get("a") {
            Some(Value::Array(items)) => assert_eq!(items.len(), 3),
            other => panic!("bad parse: {other:?}"),
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{oops}").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("12 34").is_err());
    }

    #[test]
    fn negative_and_float_numbers() {
        let v: Vec<f64> = from_str("[-2.5, 1e3, -7]").unwrap();
        assert_eq!(v, vec![-2.5, 1000.0, -7.0]);
    }

    #[test]
    fn u64_round_trips_at_full_precision() {
        let seeds = vec![u64::MAX, (1u64 << 53) + 1, 0];
        let s = to_string(&seeds).unwrap();
        assert_eq!(s, format!("[{},{},0]", u64::MAX, (1u64 << 53) + 1));
        let back: Vec<u64> = from_str(&s).unwrap();
        assert_eq!(back, seeds);
        assert!(from_str::<u64>("-1").is_err(), "negatives must not wrap");
        let neg: i64 = from_str(&i64::MIN.to_string()).unwrap();
        assert_eq!(neg, i64::MIN);
    }

    #[test]
    fn surrogate_pair_escapes_parse() {
        let s: String = from_str(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(s, "😀", "escaped surrogate pair combines to U+1F600");
        let raw: String = from_str("\"😀\"").unwrap();
        assert_eq!(raw, "😀", "raw UTF-8 path unaffected");
        assert!(from_str::<String>(r#""\ud83d""#).is_err(), "unpaired high");
        assert!(
            from_str::<String>(r#""\ud83dA""#).is_err(),
            "bad low surrogate"
        );
    }
}
