//! In-tree stand-in for the `bytes` crate.
//!
//! [`Bytes`] is an `Arc`-backed immutable byte buffer with O(1) `clone` and
//! `slice`; [`BytesMut`] is a growable builder that freezes into one. The
//! [`Buf`]/[`BufMut`] traits carry the little-endian accessor subset the
//! wire codec uses. Semantics (cursor advance, panic on underflow) match
//! upstream for that subset.

use std::ops::Range;
use std::sync::Arc;

/// Immutable, cheaply cloneable byte buffer view.
#[derive(Debug, Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Length of the view in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the view is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Sub-view of `range` (relative to this view), sharing the allocation.
    ///
    /// # Panics
    /// Panics when the range is out of bounds.
    #[must_use]
    pub fn slice(&self, range: Range<usize>) -> Bytes {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice out of bounds"
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Copies the view into a fresh `Vec<u8>`.
    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Copies a slice into a fresh `Bytes` (one copy, straight into the
    /// shared allocation) — the reuse-friendly way to ship a staging
    /// buffer's contents without consuming the buffer.
    #[must_use]
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        let data: Arc<[u8]> = Arc::from(data);
        let end = data.len();
        Bytes {
            data,
            start: 0,
            end,
        }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = v.into();
        let end = data.len();
        Bytes {
            data,
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

/// Growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer with no allocation.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty buffer with at least `cap` bytes of capacity.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Current length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no bytes have been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    #[must_use]
    pub fn freeze(self) -> Bytes {
        self.buf.into()
    }

    /// Clears the buffer, keeping its capacity — the reuse primitive for
    /// per-worker staging buffers.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Reserves capacity for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    /// Appends raw bytes (the inherent spelling of [`BufMut::put_slice`],
    /// for call sites that don't want the trait in scope).
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }

    /// Current capacity in bytes — lets pools observe warm-up.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsMut<[u8]> for BytesMut {
    fn as_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

/// Read cursor over a byte source (little-endian accessor subset).
///
/// Accessors consume from the front and panic when fewer bytes remain than
/// requested, matching upstream `bytes`.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Borrows the unread bytes.
    fn chunk(&self) -> &[u8];

    /// Drops `n` bytes from the front.
    fn advance(&mut self, n: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(raw)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(raw)
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of Bytes");
        self.start += n;
    }
}

/// Write cursor appending to a byte sink (little-endian subset).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le_accessors() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_u8(7);
        b.put_u64_le(42);
        b.put_f64_le(-1.5);
        let mut bytes = b.freeze();
        assert_eq!(bytes.len(), 4 + 1 + 8 + 8);
        assert_eq!(bytes.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(bytes.get_u8(), 7);
        assert_eq!(bytes.get_u64_le(), 42);
        assert_eq!(bytes.get_f64_le(), -1.5);
        assert_eq!(bytes.remaining(), 0);
    }

    #[test]
    fn slice_shares_and_offsets() {
        let bytes: Bytes = vec![0, 1, 2, 3, 4, 5].into();
        let mid = bytes.slice(2..5);
        assert_eq!(mid.to_vec(), vec![2, 3, 4]);
        assert_eq!(bytes.len(), 6, "parent view unaffected");
        let sub = mid.slice(1..2);
        assert_eq!(sub.to_vec(), vec![3]);
    }

    #[test]
    #[should_panic(expected = "advance past end")]
    fn advance_past_end_panics() {
        let mut b: Bytes = vec![1u8].into();
        b.advance(2);
    }

    #[test]
    fn equality_ignores_offsets() {
        let a: Bytes = vec![9, 8, 7].into();
        let b: Bytes = vec![0, 9, 8, 7].into();
        assert_eq!(a, b.slice(1..4));
    }
}
