//! In-tree stand-in for the `serde` crate.
//!
//! This build environment has no access to crates.io, so the workspace ships
//! a minimal serialization facade under the same crate name. Instead of
//! serde's visitor-based data model, types convert to and from a concrete
//! [`Value`] tree; the sibling `serde_json` shim renders that tree as JSON.
//! The derive macros (`#[derive(Serialize, Deserialize)]`) are provided by
//! the `serde_derive` proc-macro crate and generate `to_value`/`from_value`
//! implementations matching serde's externally-tagged enum representation.
//!
//! Supported surface (grown on demand): named-field structs, enums with
//! unit/newtype/struct variants, the std scalar types, `String`, `Vec<T>`,
//! `Option<T>`, and small tuples.

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// A self-describing serialized value (the shim's data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Floating-point number.
    Num(f64),
    /// Non-negative integer, exact over the full `u64` range.
    Uint(u64),
    /// Negative integer, exact over the full `i64` range.
    Int(i64),
    /// String.
    Str(String),
    /// Sequence.
    Array(Vec<Value>),
    /// Map with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Like [`Value::get`] but returns a descriptive error for derives.
    ///
    /// # Errors
    /// When `self` is not an object or the key is absent.
    pub fn field(&self, key: &str) -> Result<&Value, Error> {
        self.get(key)
            .ok_or_else(|| Error::msg(format!("missing field `{key}`")))
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl Error {
    /// Creates an error from a message.
    #[must_use]
    pub fn msg(m: impl Into<String>) -> Self {
        Self(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can convert themselves into a [`Value`].
pub trait Serialize {
    /// Converts `self` into the shim data model.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`].
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from the shim data model.
    ///
    /// # Errors
    /// On shape or type mismatches.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// --- scalar impls ----------------------------------------------------------

macro_rules! uint_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Uint(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let out = match v {
                    Value::Uint(u) => <$t>::try_from(*u).ok(),
                    Value::Int(i) => u64::try_from(*i).ok().and_then(|u| <$t>::try_from(u).ok()),
                    // Floats only when integral and exactly representable.
                    Value::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= 9.007_199_254_740_992e15 => {
                        <$t>::try_from(*n as u64).ok()
                    }
                    _ => None,
                };
                out.ok_or_else(|| Error::msg(format!(
                    "expected {} in range, got {v:?}", stringify!($t)
                )))
            }
        }
    )*};
}

uint_impls!(u8, u16, u32, u64, usize);

macro_rules! sint_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = *self as i64;
                if i >= 0 {
                    Value::Uint(i as u64)
                } else {
                    Value::Int(i)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let out = match v {
                    Value::Uint(u) => i64::try_from(*u).ok().and_then(|i| <$t>::try_from(i).ok()),
                    Value::Int(i) => <$t>::try_from(*i).ok(),
                    Value::Num(n) if n.fract() == 0.0 && n.abs() <= 9.007_199_254_740_992e15 => {
                        <$t>::try_from(*n as i64).ok()
                    }
                    _ => None,
                };
                out.ok_or_else(|| Error::msg(format!(
                    "expected {} in range, got {v:?}", stringify!($t)
                )))
            }
        }
    )*};
}

sint_impls!(i8, i16, i32, i64, isize);

macro_rules! float_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(f64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Num(n) => Ok(*n as $t),
                    Value::Uint(u) => Ok(*u as $t),
                    Value::Int(i) => Ok(*i as $t),
                    other => Err(Error::msg(format!("expected number, got {other:?}"))),
                }
            }
        }
    )*};
}

float_impls!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::msg(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

// --- container impls -------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::msg(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! tuple_impls {
    ($(($($t:ident : $idx:tt),+)),*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) => {
                        let expected = [$($idx),+].len();
                        if items.len() != expected {
                            return Err(Error::msg(format!(
                                "expected {expected}-tuple, got {} elements",
                                items.len()
                            )));
                        }
                        Ok(($($t::from_value(&items[$idx])?,)+))
                    }
                    other => Err(Error::msg(format!("expected array, got {other:?}"))),
                }
            }
        }
    )*};
}

tuple_impls!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3)
);

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
    }

    #[test]
    fn integers_exact_beyond_2_53() {
        // Full-range u64 (e.g. derived RNG seeds) must round-trip exactly.
        let big = (1u64 << 53) + 1;
        assert_eq!(u64::from_value(&big.to_value()).unwrap(), big);
        assert_eq!(u64::from_value(&u64::MAX.to_value()).unwrap(), u64::MAX);
        assert_eq!(i64::from_value(&i64::MIN.to_value()).unwrap(), i64::MIN);
    }

    #[test]
    fn integer_range_checks() {
        assert!(u64::from_value(&(-1i64).to_value()).is_err());
        assert!(u8::from_value(&300u32.to_value()).is_err());
        assert!(i8::from_value(&Value::Uint(200)).is_err());
        // Integral floats still accepted for integer fields.
        assert_eq!(u32::from_value(&Value::Num(7.0)).unwrap(), 7);
        assert!(u32::from_value(&Value::Num(7.5)).is_err());
    }

    #[test]
    fn vec_and_tuple_roundtrip() {
        let v = vec![(1usize, vec![1.0f64, 2.0])];
        let back: Vec<(usize, Vec<f64>)> = Deserialize::from_value(&v.to_value()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn option_null() {
        let none: Option<u8> = None;
        assert_eq!(none.to_value(), Value::Null);
        assert_eq!(Option::<u8>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn field_lookup_errors() {
        let obj = Value::Object(vec![("a".into(), Value::Num(1.0))]);
        assert!(obj.field("a").is_ok());
        assert!(obj.field("b").is_err());
    }
}
