//! In-tree stand-in for the `crossbeam` crate's scoped-thread API.
//!
//! Implemented on `std::thread::scope` (stable since 1.63), which provides
//! the same structured-concurrency guarantee crossbeam pioneered. The one
//! semantic difference from upstream is preserved at the API level: a panic
//! in an unjoined scoped thread surfaces as `Err` from [`scope`] rather than
//! unwinding through the caller.

use std::panic::{catch_unwind, AssertUnwindSafe};

/// Panic payload of a failed scope or join.
pub type Payload = Box<dyn std::any::Any + Send + 'static>;

/// Scope handle passed to [`scope`]'s closure and to spawned threads.
///
/// Mirrors `crossbeam::thread::Scope`: spawned closures receive a `&Scope`
/// so they can spawn further siblings.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread; the closure receives the scope handle.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        ScopedJoinHandle {
            inner: inner.spawn(move || f(&Scope { inner })),
        }
    }
}

/// Handle to a scoped thread.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<T> ScopedJoinHandle<'_, T> {
    /// Waits for the thread to finish, returning its result or the panic
    /// payload.
    ///
    /// # Errors
    /// The thread's panic payload when it panicked.
    pub fn join(self) -> Result<T, Payload> {
        self.inner.join()
    }
}

/// Runs `f` with a scope in which borrowing, non-`'static` threads can be
/// spawned; all spawned threads are joined before `scope` returns.
///
/// # Errors
/// Returns the panic payload when the closure or any unjoined spawned
/// thread panicked.
pub fn scope<'env, F, R>(f: F) -> Result<R, Payload>
where
    F: FnOnce(&Scope<'_, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

/// `crossbeam::thread` module alias for upstream-compatible paths.
pub mod thread {
    pub use super::{scope, Payload, Scope, ScopedJoinHandle};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total = scope(|s| {
            let mut handles = Vec::new();
            for chunk in data.chunks(2) {
                handles.push(s.spawn(move |_| chunk.iter().sum::<u64>()));
            }
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_through_scope_handle() {
        let n = scope(|s| {
            s.spawn(|s2| s2.spawn(|_| 21).join().unwrap() * 2)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }

    #[test]
    fn panicked_thread_yields_err() {
        let result = scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(result.is_err());
    }
}
