//! Property tests across the whole stack: for random problem sizes, loads,
//! schemes, and seeds, a virtual-cluster round must decode the exact serial
//! gradient and report self-consistent metrics.

use bcc::cluster::{ClusterBackend, ClusterProfile, CommModel, UnitMap, VirtualCluster};
use bcc::core::schemes::SchemeConfig;
use bcc::data::synthetic::{generate, SyntheticConfig};
use bcc::optim::gradient::full_gradient;
use bcc::optim::LogisticLoss;
use bcc::stats::rng::derive_rng;
use proptest::prelude::*;

fn scheme_strategy() -> impl Strategy<Value = SchemeConfig> {
    prop_oneof![
        Just(SchemeConfig::Uncoded),
        (2usize..5).prop_map(|r| SchemeConfig::Bcc { r }),
        (2usize..5).prop_map(|r| SchemeConfig::BccUncompressed { r }),
        (2usize..5).prop_map(|r| SchemeConfig::Random { r }),
        (2usize..5).prop_map(|r| SchemeConfig::CyclicRepetition { r }),
        (2usize..5).prop_map(|r| SchemeConfig::CyclicMds { r }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn any_scheme_round_decodes_exact_gradient(
        cfg in scheme_strategy(),
        units_count in 8usize..20,
        per_unit_examples in 1usize..6,
        seed in 0u64..500,
    ) {
        let n = units_count; // m = n so every scheme is constructible
        let examples = units_count * per_unit_examples;
        let data = generate(&SyntheticConfig::small(examples, 5, seed));
        let units = UnitMap::grouped(examples, units_count);
        let mut rng = derive_rng(seed, 3);
        let scheme = cfg.build(units_count, n, &mut rng);
        let profile = ClusterProfile::homogeneous(
            n,
            3.0,
            0.001,
            CommModel { per_message_overhead: 0.001, per_unit: 0.002 },
        );
        let mut backend = VirtualCluster::new(profile, seed);
        let w: Vec<f64> = (0..5).map(|k| ((k as f64) + seed as f64).sin() * 0.2).collect();

        let out = backend
            .run_round(scheme.as_ref(), &units, &data.dataset, &LogisticLoss, &w)
            .expect("round completes");

        // Exactness: decoded sum / m == serial full gradient.
        let mut decoded = out.gradient_sum.clone();
        bcc::linalg::vec_ops::scale(1.0 / examples as f64, &mut decoded);
        let exact = full_gradient(&data.dataset, &LogisticLoss, &w);
        prop_assert!(
            bcc::linalg::approx_eq_slice(&decoded, &exact, 1e-5),
            "{}: decoded gradient differs from serial", scheme.name()
        );

        // Metric consistency.
        let m = &out.metrics;
        prop_assert!(m.is_consistent(), "{}: inconsistent metrics {m:?}", scheme.name());
        prop_assert!(m.messages_used >= 1);
        prop_assert!(m.messages_used <= n);
        prop_assert!(m.communication_units >= m.messages_used);
        prop_assert!(m.total_time > 0.0);
    }

    #[test]
    fn recovery_threshold_never_below_information_limit(
        r in 2usize..6,
        seed in 0u64..300,
    ) {
        // Any completing round must use at least ⌈m/r⌉ messages for BCC
        // (one per batch) — the information-theoretic floor of Theorem 1.
        let m = 24usize;
        let n = 48usize;
        let data = generate(&SyntheticConfig::small(m, 4, seed));
        let units = UnitMap::identity(m);
        let mut rng = derive_rng(seed, 5);
        let scheme = SchemeConfig::Bcc { r }.build(m, n, &mut rng);
        let profile = ClusterProfile::homogeneous(
            n, 3.0, 0.001,
            CommModel { per_message_overhead: 0.0, per_unit: 0.001 },
        );
        let mut backend = VirtualCluster::new(profile, seed);
        let out = backend
            .run_round(scheme.as_ref(), &units, &data.dataset, &LogisticLoss, &[0.0; 4])
            .expect("covering BCC completes");
        prop_assert!(out.metrics.messages_used >= m.div_ceil(r));
    }
}
