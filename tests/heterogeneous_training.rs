//! §IV end-to-end: generalized BCC running *through the full cluster stack*
//! (not just the coverage simulator) on a heterogeneous profile — P2 loads,
//! random placement, uncoded communication, real logistic gradients — and
//! beating the load-balancing baseline in round time.

use bcc::cluster::{
    ClusterBackend, ClusterProfile, CommModel, UnitMap, VirtualCluster, WorkerProfile,
};
use bcc::coding::{GeneralizedBccScheme, UncodedScheme};
use bcc::core::hetero::optimal_loads;
use bcc::data::synthetic::{generate, SyntheticConfig};
use bcc::optim::gradient::full_gradient;
use bcc::optim::LogisticLoss;
use bcc::stats::rng::derive_rng;

/// 1/5-scale Fig. 5 cluster: 19 slow (μ=1) + 1 fast (μ=20), a = 20.
fn profile() -> ClusterProfile {
    let mut workers = vec![WorkerProfile { mu: 1.0, a: 20.0 }; 19];
    workers.push(WorkerProfile { mu: 20.0, a: 20.0 });
    ClusterProfile {
        workers,
        comm: CommModel {
            per_message_overhead: 0.0,
            per_unit: 0.0,
        },
    }
}

const M: usize = 100;
const DIM: usize = 5;

#[test]
fn generalized_bcc_round_is_exact_and_faster_than_lb_uncoded() {
    let profile = profile();
    let data = generate(&SyntheticConfig::small(M, DIM, 1));
    let units = UnitMap::identity(M);
    let w = vec![0.0; DIM];
    let mut exact = full_gradient(&data.dataset, &LogisticLoss, &w);
    bcc::linalg::vec_ops::scale(M as f64, &mut exact);

    // Generalized BCC with P2-optimal loads for s = ⌊m·log m⌋.
    let s = (M as f64 * (M as f64).ln()).floor() as usize;
    let sol = optimal_loads(&profile.workers, s, M);
    let mut rng = derive_rng(2, 0);
    let gbcc =
        GeneralizedBccScheme::new(M, &sol.loads, &mut rng).expect("P2 loads cover the dataset");

    // LB baseline: uncoded scheme over a speed-proportional disjoint split.
    // (UncodedScheme uses even shards; the LB effect here is the placement's
    // load on the fast worker, which we emulate by using the paper's LB
    // placement directly through the generalized scheme's machinery.)
    let lb_placement = bcc::data::Placement::load_balanced(
        M,
        &profile.workers.iter().map(|p| p.mu).collect::<Vec<_>>(),
    );
    let lb = GeneralizedBccScheme::from_placement(lb_placement);

    let mut gbcc_total = 0.0;
    let mut lb_total = 0.0;
    let rounds = 25;
    for seed in 0..rounds {
        let mut cluster = VirtualCluster::new(profile.clone(), seed);
        let out = cluster
            .run_round(&gbcc, &units, &data.dataset, &LogisticLoss, &w)
            .expect("GBCC completes");
        assert!(
            bcc::linalg::approx_eq_slice(&out.gradient_sum, &exact, 1e-7),
            "GBCC decode must be exact"
        );
        gbcc_total += out.metrics.total_time;

        let mut cluster = VirtualCluster::new(profile.clone(), seed ^ 0x55);
        let out = cluster
            .run_round(&lb, &units, &data.dataset, &LogisticLoss, &w)
            .expect("LB completes");
        assert!(bcc::linalg::approx_eq_slice(
            &out.gradient_sum,
            &exact,
            1e-7
        ));
        lb_total += out.metrics.total_time;
    }
    let (gbcc_avg, lb_avg) = (gbcc_total / rounds as f64, lb_total / rounds as f64);
    assert!(
        gbcc_avg < lb_avg,
        "generalized BCC ({gbcc_avg:.1}) must beat LB placement ({lb_avg:.1})"
    );
    // The Fig. 5 mechanism: the reduction is double-digit percent.
    let reduction = (1.0 - gbcc_avg / lb_avg) * 100.0;
    assert!(
        reduction > 10.0,
        "expected a Fig. 5-sized gain, got {reduction:.1}%"
    );
}

#[test]
fn uncoded_on_heterogeneous_cluster_pays_the_slowest_worker() {
    // Sanity: a plain uncoded even split on the same cluster waits for the
    // slow workers' shifted tails every round.
    let profile = profile();
    let data = generate(&SyntheticConfig::small(M, DIM, 3));
    let units = UnitMap::identity(M);
    let scheme = UncodedScheme::new(M, 20);
    let mut cluster = VirtualCluster::new(profile, 7);
    let out = cluster
        .run_round(&scheme, &units, &data.dataset, &LogisticLoss, &[0.0; DIM])
        .expect("uncoded completes with all workers live");
    // Every worker holds 5 examples → shift alone is a·r = 100.
    assert!(out.metrics.total_time >= 100.0);
    assert_eq!(out.metrics.messages_used, 20);
}
