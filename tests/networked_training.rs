//! The networked backend's acceptance contract, at the experiment layer:
//!
//! 1. A full training run declared with `BackendSpec::Tcp` — every weight
//!    broadcast and gradient envelope crossing a real kernel TCP socket —
//!    reproduces the virtual backend's weights **bit for bit**.
//! 2. External `bcc-worker` OS processes, handed nothing but the master's
//!    address and a worker id, reconstruct the experiment from the job
//!    spec and produce the same byte-identical round outcome.
//! 3. Killing a worker process mid-round completes the round under
//!    `best-effort-all` with reduced coverage — no stall, no hang.

use bcc::cluster::{
    BackendConfig, BestEffortAll, ClusterBackend, CommModel, UnitMap, VirtualCluster, WorkerProfile,
};
use bcc::experiment::{BackendSpec, DataSpec, Experiment, ExperimentSpec, LatencySpec, SchemeSpec};
use bcc::net::TcpCluster;
use bcc::optim::LogisticLoss;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::Duration;

/// Deterministic staircase latency: per-worker shifts far apart relative
/// to the exponential tail (`mu = 1e4`) and scheduler jitter, so real-time
/// arrival order equals virtual-time arrival order.
fn staircase(shifts: &[f64]) -> LatencySpec {
    LatencySpec::Explicit {
        workers: shifts
            .iter()
            .map(|&a| WorkerProfile { mu: 1e4, a })
            .collect(),
        comm: CommModel {
            per_message_overhead: 0.001,
            per_unit: 0.001,
        },
    }
}

fn training_spec(backend: BackendSpec) -> ExperimentSpec {
    let experiment = Experiment::builder()
        .name("networked acceptance")
        .workers(5)
        .units(10)
        .scheme(SchemeSpec::with_load("bcc", 2))
        .data(DataSpec::synthetic(4, 4))
        .latency(staircase(&[0.020, 0.004, 0.016, 0.008, 0.012]))
        .backend(backend)
        .iterations(4)
        .seed(71)
        .build()
        .expect("valid spec");
    experiment.spec().clone()
}

#[test]
fn full_training_over_loopback_tcp_matches_virtual_bit_for_bit() {
    let virtual_report = Experiment::from_spec(training_spec(BackendSpec::Virtual))
        .unwrap()
        .run()
        .expect("virtual training completes");
    let tcp_report = Experiment::from_spec(training_spec(BackendSpec::tcp_loopback(1.0)))
        .unwrap()
        .run()
        .expect("loopback TCP training completes");

    assert_eq!(virtual_report.weights.len(), tcp_report.weights.len());
    for (i, (v, t)) in virtual_report
        .weights
        .iter()
        .zip(&tcp_report.weights)
        .enumerate()
    {
        assert_eq!(v.to_bits(), t.to_bits(), "weight {i} differs: {v} vs {t}");
    }
    // The whole round process matched, not just the end point.
    assert_eq!(
        virtual_report.metrics.messages_used,
        tcp_report.metrics.messages_used
    );
    for (v, t) in virtual_report
        .round_samples
        .iter()
        .zip(&tcp_report.round_samples)
    {
        assert_eq!(v.messages_used, t.messages_used);
    }
    assert_eq!(
        virtual_report.trace.final_risk().unwrap().to_bits(),
        tcp_report.trace.final_risk().unwrap().to_bits(),
    );
}

/// A spec sized for multi-process tests: 3 workers, uncoded, staircase.
fn process_spec(shifts: &[f64]) -> ExperimentSpec {
    let experiment = Experiment::builder()
        .name("process round")
        .workers(3)
        .units(3)
        .scheme(SchemeSpec::named("uncoded"))
        .data(DataSpec::synthetic(10, 3))
        .latency(staircase(shifts))
        .backend(BackendSpec::tcp_loopback(1.0))
        .seed(83)
        .build()
        .expect("valid spec");
    experiment.spec().clone()
}

/// Spawns one `bcc-worker` process per id, handing each the job seed its
/// admission token derives from — the same argument a real deployment
/// passes on the command line.
fn spawn_workers(addr: &str, count: usize, job_seed: u64) -> Vec<Child> {
    let bin = env!("CARGO_BIN_EXE_bcc-worker");
    (0..count)
        .map(|w| {
            Command::new(bin)
                .args([addr, &w.to_string(), &job_seed.to_string()])
                .stderr(Stdio::inherit())
                .spawn()
                .expect("spawn bcc-worker")
        })
        .collect()
}

#[test]
fn external_worker_processes_match_the_virtual_backend() {
    let spec = process_spec(&[0.015, 0.005, 0.010]);
    let experiment = Experiment::from_spec(spec.clone()).unwrap();
    let (num_examples, _) = spec.data.shape(spec.units);
    let units = UnitMap::grouped(num_examples, spec.units);
    let w0 = vec![0.05; 3];

    let mut master = TcpCluster::bind("127.0.0.1:0", experiment.profile().clone(), 99, 1.0)
        .expect("bind master")
        .configured(BackendConfig::new().job(spec.to_json_pretty().unwrap()));
    let addr = master.local_addr().to_string();
    let mut children = spawn_workers(&addr, spec.workers, 99);

    let tcp_out = master
        .run_round(
            experiment.scheme(),
            &units,
            experiment.dataset(),
            &LogisticLoss,
            &w0,
        )
        .expect("round over real worker processes completes");
    master.shutdown();
    for (w, child) in children.iter_mut().enumerate() {
        let status = child.wait().expect("wait for worker process");
        assert!(status.success(), "worker {w} exited with {status}");
    }

    let virtual_out = VirtualCluster::new(experiment.profile().clone(), 99)
        .run_round(
            experiment.scheme(),
            &units,
            experiment.dataset(),
            &LogisticLoss,
            &w0,
        )
        .expect("virtual round completes");

    // The worker processes regenerated data, placement, and selections
    // from the job spec alone — and still match the simulation bit for bit.
    assert_eq!(
        virtual_out.metrics.messages_used,
        tcp_out.metrics.messages_used
    );
    for (v, t) in virtual_out.gradient_sum.iter().zip(&tcp_out.gradient_sum) {
        assert_eq!(v.to_bits(), t.to_bits());
    }
}

#[test]
fn killing_a_worker_process_mid_round_completes_under_best_effort() {
    // Worker 0 computes for ~3 simulated (= real) seconds; the test kills
    // its process ~1 s in. The master must detect the EOF, drop worker 0
    // from the live set, and let best-effort-all complete on the two
    // survivors — never stalling on the corpse.
    let spec = process_spec(&[3.0, 0.005, 0.010]);
    let experiment = Experiment::from_spec(spec.clone()).unwrap();
    let (num_examples, _) = spec.data.shape(spec.units);
    let units = UnitMap::grouped(num_examples, spec.units);

    let mut master = TcpCluster::bind("127.0.0.1:0", experiment.profile().clone(), 107, 1.0)
        .expect("bind master")
        .configured(
            BackendConfig::new()
                .job(spec.to_json_pretty().unwrap())
                .aggregation_policy(Arc::new(BestEffortAll))
                .recv_timeout(Duration::from_secs(20)),
        );
    let addr = master.local_addr().to_string();
    let mut children = spawn_workers(&addr, spec.workers, 107);

    let victim = children.remove(0);
    let killer = std::thread::spawn(move || {
        let mut victim = victim;
        std::thread::sleep(Duration::from_secs(1));
        let _ = victim.kill();
        let _ = victim.wait();
    });

    let out = master
        .run_round(
            experiment.scheme(),
            &units,
            experiment.dataset(),
            &LogisticLoss,
            &[0.0; 3],
        )
        .expect("best-effort round completes despite the killed process");
    assert_eq!(out.metrics.messages_used, 2, "the two survivors report");
    let stats = master.stats();
    assert_eq!(stats.deaths, 1, "exactly one process death detected");
    master.shutdown();
    killer.join().unwrap();
    for child in &mut children {
        let _ = child.wait();
    }
}
