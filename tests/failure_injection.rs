//! Failure injection: dead workers across schemes and backends.
//!
//! The paper's motivation is exactly this — "the slowest node may dictate
//! the overall computational time". A dead worker is the limiting case of a
//! straggler: schemes with redundancy survive it, the uncoded baseline
//! cannot.

use bcc::cluster::{
    BackendConfig, ClusterBackend, ClusterError, ClusterProfile, CommModel, ThreadedCluster,
    UnitMap, VirtualCluster,
};
use bcc::coding::{BccScheme, CyclicRepetitionScheme, FractionalRepetitionScheme, UncodedScheme};
use bcc::data::synthetic::{generate, SyntheticConfig};
use bcc::optim::LogisticLoss;
use bcc::stats::rng::derive_rng;
use std::time::Duration;

const N: usize = 12;
const M: usize = 60;

fn profile() -> ClusterProfile {
    ClusterProfile::homogeneous(
        N,
        50.0,
        0.0002,
        CommModel {
            per_message_overhead: 0.0005,
            per_unit: 0.001,
        },
    )
}

fn data_and_units() -> (bcc::data::Dataset, UnitMap) {
    let g = generate(&SyntheticConfig::small(M, 4, 3));
    (g.dataset, UnitMap::grouped(M, N))
}

#[test]
fn uncoded_cannot_survive_any_death() {
    let (data, units) = data_and_units();
    let scheme = UncodedScheme::new(N, N);
    let mut cluster = VirtualCluster::new(profile(), 1);
    cluster.kill_workers([4]);
    let err = cluster
        .run_round(&scheme, &units, &data, &LogisticLoss, &[0.0; 4])
        .unwrap_err();
    assert!(matches!(err, ClusterError::Stalled { received: 11, .. }));
}

#[test]
fn cyclic_repetition_survives_up_to_r_minus_one_deaths() {
    let (data, units) = data_and_units();
    let r = 4;
    let mut rng = derive_rng(5, 0);
    let scheme = CyclicRepetitionScheme::new(N, r, &mut rng);
    // Any r−1 = 3 deaths are tolerated by construction.
    let mut cluster = VirtualCluster::new(profile(), 2);
    cluster.kill_workers([0, 5, 9]);
    let out = cluster
        .run_round(&scheme, &units, &data, &LogisticLoss, &[0.0; 4])
        .expect("CR tolerates r-1 deaths");
    assert_eq!(out.metrics.messages_used, N - (r - 1));

    // r deaths exceed the design point: with only n−r workers alive the
    // decoder cannot find coefficients → stall.
    cluster.kill_workers([2]);
    let err = cluster
        .run_round(&scheme, &units, &data, &LogisticLoss, &[0.0; 4])
        .unwrap_err();
    assert!(matches!(err, ClusterError::Stalled { .. }));
}

#[test]
fn fractional_repetition_survives_when_groups_remain_covered() {
    let (data, units) = data_and_units();
    let scheme = FractionalRepetitionScheme::new(N, 3); // 4 shards × 3 replicas
    let mut cluster = VirtualCluster::new(profile(), 3);
    // Kill two replicas of shard 0 (workers 0 and 4 hold shard 0): worker 8
    // still covers it.
    cluster.kill_workers([0, 4]);
    cluster
        .run_round(&scheme, &units, &data, &LogisticLoss, &[0.0; 4])
        .expect("one replica per shard suffices");

    // Killing all three replicas of shard 0 (workers 0, 4, 8) stalls.
    cluster.kill_workers([8]);
    let err = cluster
        .run_round(&scheme, &units, &data, &LogisticLoss, &[0.0; 4])
        .unwrap_err();
    assert!(matches!(err, ClusterError::Stalled { .. }));
}

#[test]
fn bcc_survives_deaths_that_preserve_batch_coverage() {
    let (data, units) = data_and_units();
    // 4 batches (r = 3 over 12 units), each chosen by 3 workers.
    let choices = vec![0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3];
    let scheme = BccScheme::from_choices(N, 3, choices);
    let mut cluster = VirtualCluster::new(profile(), 4);
    // Kill one worker per batch — still covered.
    cluster.kill_workers([0, 1, 2, 3]);
    cluster
        .run_round(&scheme, &units, &data, &LogisticLoss, &[0.0; 4])
        .expect("coverage preserved");

    // Kill every worker holding batch 0 → uncoverable.
    cluster.kill_workers([4, 8]);
    let err = cluster
        .run_round(&scheme, &units, &data, &LogisticLoss, &[0.0; 4])
        .unwrap_err();
    assert!(matches!(err, ClusterError::Stalled { .. }));
}

#[test]
fn tcp_backend_reports_stall_on_pre_round_death() {
    // Same contract as the threaded backend, but the death is a real
    // socket that never connects: `kill_workers` keeps worker 7 out of
    // the loopback fleet, so the master sees 11 registrations and the
    // uncoded decoder can never complete.
    let (data, units) = data_and_units();
    let scheme = UncodedScheme::new(N, N);
    let mut cluster = bcc::net::LocalNetCluster::new(profile(), 5, 0.002)
        .configured(BackendConfig::new().recv_timeout(Duration::from_millis(400)));
    cluster.kill_workers([7]);
    let err = cluster
        .run_round(&scheme, &units, &data, &LogisticLoss, &[0.0; 4])
        .unwrap_err();
    assert!(matches!(err, ClusterError::Stalled { .. }), "got {err:?}");
    // Revived fleet completes again over fresh sockets.
    cluster.revive_all();
    cluster
        .run_round(&scheme, &units, &data, &LogisticLoss, &[0.0; 4])
        .expect("revived cluster completes");
}

#[test]
fn tcp_backend_mid_round_death_respects_scheme_redundancy() {
    // A connection dropped mid-round is the networked limiting case of a
    // straggler. Under the default wait-decodable policy the outcome must
    // track the scheme's redundancy exactly as in the simulated backends:
    // uncoded stalls, a coverage-preserving BCC death decodes.
    let (data, units) = data_and_units();
    let mut cluster = bcc::net::LocalNetCluster::new(profile(), 6, 0.002)
        .configured(BackendConfig::new().recv_timeout(Duration::from_secs(5)));

    cluster.fail_worker_at(7, 0);
    let scheme = UncodedScheme::new(N, N);
    let err = cluster
        .run_round(&scheme, &units, &data, &LogisticLoss, &[0.0; 4])
        .unwrap_err();
    assert!(
        matches!(err, ClusterError::Stalled { received: 11, ref reason } if reason.contains("died mid-round")),
        "got {err:?}"
    );

    // 4 batches × 3 replicas: losing one replica of batch 3 keeps every
    // batch covered, so the round completes without worker 7. (The round
    // counter persisted across the stalled attempt, so this is round 1.)
    cluster.revive_all();
    cluster.fail_worker_at(7, 1);
    let choices = vec![0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3];
    let scheme = BccScheme::from_choices(N, 3, choices);
    let out = cluster
        .run_round(&scheme, &units, &data, &LogisticLoss, &[0.0; 4])
        .expect("coverage-preserving death decodes over TCP");
    assert!(out.metrics.messages_used < N);
}

#[test]
fn threaded_backend_reports_stall_on_death() {
    let (data, units) = data_and_units();
    let scheme = UncodedScheme::new(N, N);
    let mut cluster = ThreadedCluster::new(profile(), 5, 0.002)
        .configured(BackendConfig::new().recv_timeout(Duration::from_millis(400)));
    cluster.kill_workers([7]);
    let err = cluster
        .run_round(&scheme, &units, &data, &LogisticLoss, &[0.0; 4])
        .unwrap_err();
    assert!(matches!(err, ClusterError::Stalled { .. }));
    // Revived cluster completes again.
    cluster.revive_all();
    cluster
        .run_round(&scheme, &units, &data, &LogisticLoss, &[0.0; 4])
        .expect("revived cluster completes");
}
