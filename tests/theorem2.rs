//! Integration check of Theorem 2 (heterogeneous clusters): the sandwich
//! `min E[T̂(m)] ≤ min_G E[T] ≤ min E[T̂(⌊c·m·log m⌋)] + 1` holds around the
//! generalized-BCC simulation, and the Fig. 5 gain materializes.

use bcc::cluster::WorkerProfile;
use bcc::core::hetero::{
    expected_t_hat, optimal_loads, simulate_gbcc_coverage_time, simulate_lb_completion_time,
    theorem2_bounds, Fig5Config,
};

fn paper_cluster() -> Vec<WorkerProfile> {
    let mut w = vec![WorkerProfile { mu: 1.0, a: 20.0 }; 95];
    w.extend(vec![WorkerProfile { mu: 20.0, a: 20.0 }; 5]);
    w
}

#[test]
fn sandwich_holds_around_gbcc() {
    let workers = paper_cluster();
    let m = 500;
    let bounds = theorem2_bounds(&workers, m, 200, 11);
    assert!(bounds.lower < bounds.upper, "degenerate sandwich");

    let cfg = Fig5Config {
        num_examples: m,
        workers: workers.clone(),
        trials: 150,
        seed: 13,
    };
    let s = (m as f64 * (m as f64).ln()).floor() as usize;
    let sol = optimal_loads(&workers, s, m);
    let gbcc = simulate_gbcc_coverage_time(&cfg, &sol.loads);
    assert!(gbcc.success_rate > 0.9);
    assert!(
        bounds.lower <= gbcc.mean_time * 1.02,
        "lower bound {} above achievable {}",
        bounds.lower,
        gbcc.mean_time
    );
    assert!(
        gbcc.mean_time <= bounds.upper * 1.05,
        "achievable {} above upper bound {}",
        gbcc.mean_time,
        bounds.upper
    );
}

#[test]
fn fig5_gain_in_paper_band() {
    let cfg = Fig5Config::paper(300, 21);
    let m = cfg.num_examples;
    let s = (m as f64 * (m as f64).ln()).floor() as usize;
    let sol = optimal_loads(&cfg.workers, s, m);
    let gbcc = simulate_gbcc_coverage_time(&cfg, &sol.loads);
    let lb = simulate_lb_completion_time(&cfg);
    let reduction = (1.0 - gbcc.mean_time / lb.mean_time) * 100.0;
    // Paper: 29.28%. Accept a generous band — the shape, not the digit.
    assert!(
        (15.0..45.0).contains(&reduction),
        "reduction {reduction}% outside the paper's ballpark"
    );
}

#[test]
fn lemma1_monotonicity_of_waiting_time() {
    let workers = paper_cluster();
    let loads = vec![32; 100];
    let mut prev = 0.0;
    for s in [500, 1000, 2000, 3000] {
        let e = expected_t_hat(&workers, &loads, s, 200, 31);
        assert!(
            e >= prev,
            "E[T̂({s})] = {e} decreased below {prev} — violates Lemma 1"
        );
        prev = e;
    }
}

#[test]
fn p2_loads_beat_naive_uniform_for_t_hat() {
    // The P2 solution should reach the budget sooner (or as soon) in
    // expectation than a uniform split of the same total storage.
    let workers = paper_cluster();
    let m = 500;
    let s = (m as f64 * (m as f64).ln()).floor() as usize;
    let sol = optimal_loads(&workers, s, m);
    let total: usize = sol.loads.iter().sum();
    let uniform = vec![total / workers.len(); workers.len()];

    let e_opt = expected_t_hat(&workers, &sol.loads, s, 300, 41);
    let e_uni = expected_t_hat(&workers, &uniform, s, 300, 41);
    assert!(
        e_opt <= e_uni * 1.02,
        "P2 loads ({e_opt}) should not lose to uniform ({e_uni})"
    );
}
