//! Integration check of Theorem 1: the BCC scheme's *measured* recovery
//! threshold and communication load match `⌈m/r⌉·H_{⌈m/r⌉}`, sandwiched
//! between the `m/r` lower bound and the paper's upper bound.

use bcc::cluster::{ClusterBackend, ClusterProfile, CommModel, UnitMap, VirtualCluster};
use bcc::core::schemes::SchemeConfig;
use bcc::core::theory;
use bcc::data::synthetic::{generate, SyntheticConfig};
use bcc::optim::LogisticLoss;
use bcc::stats::rng::derive_rng;

/// Measures BCC's average messages/units over many independent rounds with
/// re-randomized placements (each round a fresh decentralized selection, so
/// the average estimates E[|W|] over both placement and straggler draws).
fn measure_bcc(m: usize, n: usize, r: usize, rounds: usize) -> (f64, f64) {
    let data = generate(&SyntheticConfig::small(m, 4, 1));
    let units = UnitMap::identity(m);
    let profile = ClusterProfile::homogeneous(
        n,
        5.0,
        0.001,
        CommModel {
            per_message_overhead: 0.001,
            per_unit: 0.002,
        },
    );
    let w = vec![0.0; 4];
    let mut messages = 0usize;
    let mut comm_units = 0usize;
    let mut rng = derive_rng(3, 9);
    for round in 0..rounds {
        let scheme = SchemeConfig::Bcc { r }.build(m, n, &mut rng);
        let mut cluster = VirtualCluster::new(profile.clone(), round as u64);
        let out = cluster
            .run_round(scheme.as_ref(), &units, &data.dataset, &LogisticLoss, &w)
            .expect("covering BCC completes");
        messages += out.metrics.messages_used;
        comm_units += out.metrics.communication_units;
    }
    (
        messages as f64 / rounds as f64,
        comm_units as f64 / rounds as f64,
    )
}

#[test]
fn bcc_recovery_threshold_matches_theorem1() {
    // m = 24 units, r = 4 → 6 batches → K = 6·H₆ = 14.7; n large.
    let (m, n, r) = (24, 200, 4);
    let expect = theory::k_bcc(m, r);
    let (k_measured, l_measured) = measure_bcc(m, n, r, 300);

    assert!(
        (k_measured - expect).abs() / expect < 0.10,
        "measured K = {k_measured} vs Theorem 1 K = {expect}"
    );
    // eq. (14): communication load equals the recovery threshold.
    assert!(
        (l_measured - k_measured).abs() < 1e-9,
        "L ({l_measured}) must equal K ({k_measured}) for BCC"
    );

    // Sandwich of eq. (13).
    let (lower, k, upper) = theory::theorem1_sandwich(m, r);
    assert!(lower <= k_measured + 0.5);
    assert!(k <= upper + 1e-9);
    assert!(k_measured >= lower);
}

#[test]
fn bcc_threshold_shrinks_with_load() {
    // More local work (larger r) → fewer batches → smaller K: the tradeoff
    // Fig. 2 plots.
    let (k_r2, _) = measure_bcc(24, 200, 2, 120);
    let (k_r6, _) = measure_bcc(24, 200, 6, 120);
    let (k_r12, _) = measure_bcc(24, 200, 12, 120);
    assert!(
        k_r2 > k_r6 && k_r6 > k_r12,
        "K must decrease with r: {k_r2} / {k_r6} / {k_r12}"
    );
}

#[test]
fn theory_anchors_match_paper() {
    // The numbers the paper quotes for its experiments: scenario one has
    // m = 50 units at r = 10 → 5 batches → K_BCC = 5·H₅ ≈ 11.4 (they
    // observed 11); scenario two m = 100, r = 10 → K_BCC ≈ 29.3 (observed
    // 25); CR thresholds 41 and 91.
    assert!((theory::k_bcc(50, 10) - 11.416_666_666_666_666).abs() < 1e-9);
    assert!((theory::k_bcc(100, 10) - 29.289_682_539_682_54).abs() < 1e-9);
    assert_eq!(theory::k_coded(50, 10), 41.0);
    assert_eq!(theory::k_coded(100, 10), 91.0);
}
