//! End-to-end distributed training across every scheme and both cluster
//! backends. Because every decoder recovers the *exact* gradient, the
//! optimization trajectory must be identical across schemes AND backends —
//! coding changes the waiting, never the math.

use bcc::cluster::{
    ClusterBackend, ClusterProfile, CommModel, ThreadedCluster, UnitMap, VirtualCluster,
};
use bcc::core::driver::{DistributedGd, TrainingConfig};
use bcc::core::schemes::SchemeConfig;
use bcc::data::synthetic::{generate, SyntheticConfig};
use bcc::optim::{LearningRate, LogisticLoss, Nesterov, Optimizer};
use bcc::stats::rng::derive_rng;

const M_EXAMPLES: usize = 120;
const UNITS: usize = 12;
const WORKERS: usize = 12;
const DIM: usize = 6;
const ITERS: usize = 15;

fn fast_profile() -> ClusterProfile {
    ClusterProfile::homogeneous(
        WORKERS,
        50.0,
        0.0002,
        CommModel {
            per_message_overhead: 0.0005,
            per_unit: 0.001,
        },
    )
}

fn all_schemes() -> Vec<SchemeConfig> {
    vec![
        SchemeConfig::Uncoded,
        SchemeConfig::Bcc { r: 3 },
        SchemeConfig::Random { r: 3 },
        SchemeConfig::CyclicRepetition { r: 3 },
        SchemeConfig::CyclicMds { r: 3 },
        SchemeConfig::FractionalRepetition { r: 3 },
    ]
}

fn train(backend: &mut dyn ClusterBackend, cfg: SchemeConfig, seed: u64) -> (Vec<f64>, f64) {
    let data = generate(&SyntheticConfig::small(M_EXAMPLES, DIM, seed));
    let units = UnitMap::grouped(M_EXAMPLES, UNITS);
    let mut rng = derive_rng(seed, 77);
    let scheme = cfg.build(UNITS, WORKERS, &mut rng);
    let mut optimizer = Nesterov::new(vec![0.0; DIM], LearningRate::Constant(0.4));
    let mut driver = DistributedGd::new(
        backend,
        scheme.as_ref(),
        &units,
        &data.dataset,
        &LogisticLoss,
    )
    .expect("matched problem dimensions");
    let report = driver
        .train(
            &mut optimizer,
            &TrainingConfig {
                iterations: ITERS,
                record_risk: true,
            },
        )
        .expect("training completes");
    assert!(report.trace.improved(), "{}: risk must improve", cfg.name());
    (report.weights, report.trace.final_risk().unwrap())
}

#[test]
fn every_scheme_trains_identically_on_virtual_cluster() {
    let mut reference: Option<Vec<f64>> = None;
    for cfg in all_schemes() {
        let mut backend = VirtualCluster::new(fast_profile(), 5);
        let (w, _) = train(&mut backend, cfg, 42);
        match &reference {
            None => reference = Some(w),
            Some(r) => assert!(
                bcc::linalg::approx_eq_slice(r, &w, 1e-6),
                "{}: weights diverged from reference",
                cfg.name()
            ),
        }
    }
}

#[test]
fn threaded_and_virtual_backends_agree_exactly() {
    // Timing differs; the decoded gradients — hence the weights — must not.
    for cfg in [SchemeConfig::Uncoded, SchemeConfig::Bcc { r: 3 }] {
        let mut virt = VirtualCluster::new(fast_profile(), 7);
        let (w_virtual, risk_v) = train(&mut virt, cfg, 51);
        let mut threaded = ThreadedCluster::new(fast_profile(), 7, 0.002);
        let (w_threaded, risk_t) = train(&mut threaded, cfg, 51);
        assert!(
            bcc::linalg::approx_eq_slice(&w_virtual, &w_threaded, 1e-9),
            "{}: backends must produce identical trajectories",
            cfg.name()
        );
        assert!((risk_v - risk_t).abs() < 1e-12);
    }
}

#[test]
fn distributed_matches_centralized_gradient_descent() {
    // The distributed run must equal a single-machine Nesterov loop using
    // exact full gradients.
    let data = generate(&SyntheticConfig::small(M_EXAMPLES, DIM, 13));
    let mut centralized = Nesterov::new(vec![0.0; DIM], LearningRate::Constant(0.4));
    for _ in 0..ITERS {
        let g = bcc::optim::gradient::full_gradient(
            &data.dataset,
            &LogisticLoss,
            centralized.eval_point(),
        );
        centralized.step(&g);
    }

    let mut backend = VirtualCluster::new(fast_profile(), 9);
    let (w_distributed, _) = train(&mut backend, SchemeConfig::Bcc { r: 3 }, 13);
    assert!(
        bcc::linalg::approx_eq_slice(centralized.iterate(), &w_distributed, 1e-9),
        "distributed BCC must replicate centralized GD exactly"
    );
}

#[test]
fn training_improves_classification_accuracy() {
    let data = generate(&SyntheticConfig::small(M_EXAMPLES, DIM, 17));
    let acc_before = data.dataset.sign_accuracy(&[0.0; DIM]);
    let mut backend = VirtualCluster::new(fast_profile(), 11);
    let (w, _) = train(&mut backend, SchemeConfig::Bcc { r: 3 }, 17);
    let acc_after = data.dataset.sign_accuracy(&w);
    assert!(
        acc_after > acc_before.max(0.6),
        "accuracy should rise: {acc_before} → {acc_after}"
    );
}
