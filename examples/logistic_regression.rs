//! The paper's EC2 experiment at example scale: train logistic regression
//! with Nesterov's accelerated gradient method under the uncoded, cyclic
//! repetition, and BCC schemes — on the **threaded** cluster runtime (real
//! worker threads, channels, wire-encoded messages, injected stragglers).
//!
//! ```sh
//! cargo run --release --example logistic_regression
//! ```

use bcc::cluster::{ClusterProfile, ThreadedCluster, UnitMap};
use bcc::core::driver::{DistributedGd, TrainingConfig};
use bcc::core::schemes::SchemeConfig;
use bcc::data::synthetic::{generate, SyntheticConfig};
use bcc::optim::{LearningRate, LogisticLoss, Nesterov};
use bcc::stats::rng::derive_rng;

fn main() {
    // Scaled-down scenario one: 20 workers, 20 units × 50 points, r = 4.
    let (workers, units_count, pts, dim, r) = (20usize, 20usize, 50usize, 32usize, 4usize);
    let iterations = 30;
    let m = units_count * pts;

    let data = generate(&SyntheticConfig::small(m, dim, 2024));
    let units = UnitMap::grouped(m, units_count);

    println!(
        "training logistic regression: {m} examples × {dim} features, \
         {workers} worker threads, {iterations} Nesterov iterations\n"
    );
    println!(
        "{:<20} {:>10} {:>12} {:>12} {:>12} {:>10}",
        "scheme", "avg K", "comm (s)", "comp (s)", "total (s)", "final risk"
    );

    for cfg in [
        SchemeConfig::Uncoded,
        SchemeConfig::CyclicRepetition { r },
        SchemeConfig::Bcc { r },
    ] {
        let mut rng = derive_rng(2024, 1);
        let scheme = cfg.build(units_count, workers, &mut rng);
        // time_scale 0.004: 1 simulated second ≈ 4 ms of wall time.
        let mut backend = ThreadedCluster::new(ClusterProfile::ec2_like(workers), 99, 0.004);
        let mut optimizer = Nesterov::new(vec![0.0; dim], LearningRate::Constant(0.5));
        let mut driver = DistributedGd::new(
            &mut backend,
            scheme.as_ref(),
            &units,
            &data.dataset,
            &LogisticLoss,
        );
        let report = driver
            .train(
                &mut optimizer,
                &TrainingConfig {
                    iterations,
                    record_risk: true,
                },
            )
            .expect("round completes");

        println!(
            "{:<20} {:>10.1} {:>12.3} {:>12.3} {:>12.3} {:>10.4}",
            scheme.name(),
            report.metrics.avg_recovery_threshold(),
            report.metrics.comm_time,
            report.metrics.compute_time,
            report.metrics.total_time,
            report.trace.final_risk().unwrap(),
        );
    }

    println!(
        "\nAll three schemes compute identical gradients — only the waiting\n\
         differs. BCC's average recovery threshold tracks ⌈m/r⌉·H_(m/r) = {:.1}.",
        bcc::core::theory::k_bcc(units_count, r)
    );
}
