//! The paper's EC2 experiment at example scale: train logistic regression
//! with Nesterov's accelerated gradient method under the uncoded, cyclic
//! repetition, and BCC schemes — on the **threaded** cluster runtime (real
//! worker threads, channels, wire-encoded messages, injected stragglers).
//!
//! ```sh
//! cargo run --release --example logistic_regression
//! ```

use bcc::core::schemes::SchemeConfig;
use bcc::core::theory;
use bcc::experiment::{BackendSpec, DataSpec, Experiment};

fn main() {
    // Scaled-down scenario one: 20 workers, 20 units × 50 points, r = 4.
    let (workers, units, r, iterations) = (20usize, 20usize, 4usize, 30usize);

    println!(
        "training logistic regression: {} examples × 32 features, \
         {workers} worker threads, {iterations} Nesterov iterations\n",
        units * 50
    );
    println!(
        "{:<20} {:>10} {:>12} {:>12} {:>12} {:>10}",
        "scheme", "avg K", "comm (s)", "comp (s)", "total (s)", "final risk"
    );

    for cfg in [
        SchemeConfig::Uncoded,
        SchemeConfig::CyclicRepetition { r },
        SchemeConfig::Bcc { r },
    ] {
        let report = Experiment::builder()
            .name("logistic regression")
            .workers(workers)
            .units(units)
            .scheme(cfg)
            .data(DataSpec::synthetic(50, 32))
            // time_scale 0.004: 1 simulated second ≈ 4 ms of wall time.
            .backend(BackendSpec::Threaded { time_scale: 0.004 })
            .iterations(iterations)
            .seed(2024)
            .build()
            .expect("paper schemes build at (20, 20, 4)")
            .run()
            .expect("rounds complete");

        println!(
            "{:<20} {:>10.1} {:>12.3} {:>12.3} {:>12.3} {:>10.4}",
            report.scheme,
            report.metrics.avg_recovery_threshold(),
            report.metrics.comm_time,
            report.metrics.compute_time,
            report.metrics.total_time,
            report.trace.final_risk().expect("risk recorded"),
        );
    }

    println!(
        "\nAll three schemes compute identical gradients — only the waiting\n\
         differs. BCC's average recovery threshold tracks ⌈m/r⌉·H_(m/r) = {:.1}.",
        theory::k_bcc(units, r)
    );
}
