//! The networked backend end to end: the same `ExperimentSpec` trains over
//! (1) the virtual DES backend, (2) a loopback TCP fleet — real kernel
//! sockets, one worker thread each — and (3) a master listening for
//! `bcc-worker`-style external workers (emulated here with in-process
//! connections so the example is self-contained). All three land on
//! byte-identical weights because every backend drives the one shared
//! `RoundEngine` and replays the same `(seed, round, worker)` latency
//! streams.
//!
//! ```bash
//! cargo run --release --example networked
//! ```
//!
//! To run the third form with genuinely separate OS processes, start the
//! master on a fixed port (`"addr": "127.0.0.1:4400"` in the spec) and
//! launch one `bcc-worker` per id:
//!
//! ```bash
//! for i in 0 1 2 3 4; do
//!     cargo run --release --bin bcc-worker -- 127.0.0.1:4400 $i 41 &
//! done
//! ```
//!
//! (The trailing `41` is the job seed — the worker's admission token
//! derives from it, so it must match the master spec's seed.)

use bcc::cluster::{ClusterBackend, CommModel, WorkerProfile};
use bcc::experiment::net_worker::run_worker_with_timeout;
use bcc::experiment::{BackendSpec, DataSpec, Experiment, LatencySpec, SchemeSpec};
use bcc::net::TcpCluster;
use std::time::Duration;

fn main() {
    // Staircase latency: per-worker shifts far apart relative to OS jitter
    // and the microsecond exponential tail, so real-time arrival order is
    // the virtual order — the precondition for bit-identical replay.
    let latency = LatencySpec::Explicit {
        workers: [0.025, 0.005, 0.020, 0.010, 0.015]
            .iter()
            .map(|&a| WorkerProfile { mu: 1e4, a })
            .collect(),
        comm: CommModel {
            per_message_overhead: 0.001,
            per_unit: 0.001,
        },
    };

    let base = |backend: BackendSpec| {
        Experiment::builder()
            .name("networked")
            .workers(5)
            .units(10)
            .scheme(SchemeSpec::with_load("bcc", 2))
            .data(DataSpec::synthetic(4, 4))
            .latency(latency.clone())
            .backend(backend)
            .iterations(3)
            .seed(41)
            .build()
            .expect("valid on every backend")
    };

    // 1. The deterministic reference.
    let virtual_report = base(BackendSpec::Virtual).run().expect("virtual rounds");
    println!(
        "virtual-des : K = {:>2} messages, final risk {:.6}",
        virtual_report.metrics.messages_used,
        virtual_report.trace.final_risk().unwrap(),
    );

    // 2. The same spec over real loopback TCP sockets: `addr: None` makes
    //    the experiment spawn its own worker fleet in-process.
    let tcp_report = base(BackendSpec::tcp_loopback(1.0))
        .run()
        .expect("loopback TCP rounds");
    println!(
        "tcp-loopback: K = {:>2} messages, final risk {:.6}",
        tcp_report.metrics.messages_used,
        tcp_report.trace.final_risk().unwrap(),
    );
    assert!(
        virtual_report
            .weights
            .iter()
            .zip(&tcp_report.weights)
            .all(|(a, b)| a.to_bits() == b.to_bits()),
        "TCP backend diverged from the simulation!"
    );
    println!("ok: loopback TCP training reproduced the virtual weights bit for bit.");

    // 3. The external-worker protocol: the master binds a port and ships
    //    the resolved spec as the job; each worker rebuilds the experiment
    //    from that JSON alone. `run_worker_with_timeout` is the exact entry
    //    point the `bcc-worker` binary calls — real deployments run it as
    //    separate OS processes; here it runs in threads to stay
    //    self-contained.
    let experiment = base(BackendSpec::Virtual);
    let spec = experiment.spec().clone();
    let mut master = TcpCluster::bind("127.0.0.1:0", experiment.profile().clone(), 41, 1.0)
        .expect("bind master")
        .configured(
            bcc::cluster::BackendConfig::new()
                .job(spec.to_json_pretty().expect("spec serializes"))
                .auth_token(bcc::net::auth_token(spec.seed)),
        );
    let addr = master.local_addr().to_string();
    let handles: Vec<_> = (0..spec.workers)
        .map(|w| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                run_worker_with_timeout(&addr, w, 41, Duration::from_secs(10))
                    .expect("worker serves the whole run");
            })
        })
        .collect();
    let out = master
        .run_round(
            experiment.scheme(),
            &bcc::cluster::UnitMap::grouped(spec.data.shape(spec.units).0, spec.units),
            experiment.dataset(),
            &bcc::optim::LogisticLoss,
            &[0.0; 4],
        )
        .expect("round over job-protocol workers");
    master.shutdown();
    for h in handles {
        h.join().expect("worker thread exits cleanly");
    }
    let stats = master.stats();
    println!(
        "job protocol: K = {:>2} messages, {} bytes tx / {} bytes rx, {} deaths",
        out.metrics.messages_used, stats.bytes_sent, stats.bytes_received, stats.deaths,
    );
}
