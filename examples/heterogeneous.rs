//! Fig. 5 at example scale: heterogeneous cluster, load-balancing baseline
//! vs the generalized BCC random assignment (§IV).
//!
//! ```sh
//! cargo run --release --example heterogeneous
//! ```

use bcc::cluster::WorkerProfile;
use bcc::core::hetero::{
    optimal_loads, simulate_gbcc_coverage_time, simulate_lb_completion_time, theorem2_bounds,
    Fig5Config,
};

fn main() {
    // The paper's cluster: 100 workers, aᵢ = 20; 95 slow (μ = 1), 5 fast
    // (μ = 20); m = 500 examples; 500 Monte-Carlo trials.
    let config = Fig5Config::paper(500, 77);
    let m = config.num_examples;

    // Generalized BCC: P2-optimal loads for s = ⌊m·log m⌋ deliveries.
    let s = (m as f64 * (m as f64).ln()).floor() as usize;
    let solution = optimal_loads(&config.workers, s, m);
    let slow_load = solution.loads[0];
    let fast_load = solution.loads[99];
    println!(
        "P2 solution for s = {s}: slow workers store {slow_load} examples, \
         fast workers {fast_load} (τ* = {:.1})",
        solution.tau
    );

    let gbcc = simulate_gbcc_coverage_time(&config, &solution.loads);
    let lb = simulate_lb_completion_time(&config);
    println!("\naverage completion time over {} trials:", config.trials);
    println!(
        "  load balancing (LB): {:8.1} ± {:.1}",
        lb.mean_time, lb.std_err
    );
    println!(
        "  generalized BCC:     {:8.1} ± {:.1}   ({:.2}% faster)",
        gbcc.mean_time,
        gbcc.std_err,
        (1.0 - gbcc.mean_time / lb.mean_time) * 100.0
    );

    // Theorem 2's sandwich on the optimal coverage time.
    let bounds = theorem2_bounds(&config.workers, m, 200, 3);
    println!(
        "\nTheorem 2: min E[T] ∈ [{:.1}, {:.1}]  (c = {:.2})",
        bounds.lower, bounds.upper, bounds.c
    );

    // Why LB loses: it piles load onto the fast workers, whose
    // deterministic shift a·r then dominates.
    let lb_fast_load = bcc::data::Placement::load_balanced(m, &config.speeds()).load_of(99);
    let fast = WorkerProfile { mu: 20.0, a: 20.0 };
    println!(
        "\nwhy: LB gives each fast worker {lb_fast_load} examples → its shift \
         alone is a·r = {:.0}, already above GBCC's total {:.0}.",
        fast.a * lb_fast_load as f64,
        gbcc.mean_time
    );
}
