//! Demonstrates the engine/adapter split: the threaded backend (real OS
//! threads, wire messages, injected straggler sleeps) and the DES virtual
//! backend run the *same* shared round engine, so under an unambiguous
//! arrival order they produce byte-identical results.
//!
//! ```bash
//! cargo run --release --example dual_backend
//! ```

use bcc::cluster::{
    ClusterBackend, ClusterProfile, CommModel, ThreadedCluster, UnitMap, VirtualCluster,
    WorkerProfile,
};
use bcc::coding::UncodedScheme;
use bcc::data::synthetic::{generate, SyntheticConfig};
use bcc::optim::LogisticLoss;

fn main() {
    // A "staircase" of per-worker shifts: worker finish order is fixed by
    // construction (gaps ≫ OS jitter, microsecond exponential tail), so the
    // wall-clock backend's arrival order matches the virtual one.
    let shifts = [0.025, 0.005, 0.020, 0.010, 0.015];
    let profile = ClusterProfile {
        workers: shifts
            .iter()
            .map(|&a| WorkerProfile { mu: 1e4, a })
            .collect(),
        comm: CommModel {
            per_message_overhead: 0.001,
            per_unit: 0.001,
        },
    };

    let data = generate(&SyntheticConfig::small(30, 4, 17));
    let units = UnitMap::grouped(30, 10);
    let scheme = UncodedScheme::new(10, 5);
    let w = vec![0.05; 4];

    let mut virtual_cluster = VirtualCluster::new(profile.clone(), 17);
    let virtual_out = virtual_cluster
        .run_round(&scheme, &units, &data.dataset, &LogisticLoss, &w)
        .expect("virtual round completes");

    let mut threaded_cluster = ThreadedCluster::new(profile, 17, 1.0);
    let threaded_out = threaded_cluster
        .run_round(&scheme, &units, &data.dataset, &LogisticLoss, &w)
        .expect("threaded round completes");

    println!(
        "virtual-des : K = {:>2} messages, compute {:.4}s, total {:.4}s (virtual)",
        virtual_out.metrics.messages_used,
        virtual_out.metrics.compute_time,
        virtual_out.metrics.total_time,
    );
    println!(
        "threaded    : K = {:>2} messages, compute {:.4}s, total {:.4}s (wall)",
        threaded_out.metrics.messages_used,
        threaded_out.metrics.compute_time,
        threaded_out.metrics.total_time,
    );

    let identical = virtual_out.gradient_sum.len() == threaded_out.gradient_sum.len()
        && virtual_out
            .gradient_sum
            .iter()
            .zip(&threaded_out.gradient_sum)
            .all(|(a, b)| a.to_bits() == b.to_bits());
    assert!(identical, "backends diverged!");
    assert_eq!(
        virtual_out.metrics.messages_used,
        threaded_out.metrics.messages_used
    );
    println!("ok: byte-identical decoded gradients from one shared RoundEngine.");
}
