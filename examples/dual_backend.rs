//! Demonstrates the engine/adapter split through the declarative API: the
//! same `ExperimentSpec` runs on the threaded backend (real OS threads,
//! wire messages, injected straggler sleeps) and the DES virtual backend,
//! and — because both drive the same shared round engine — produces
//! byte-identical trained weights and identical message counts.
//!
//! ```bash
//! cargo run --release --example dual_backend
//! ```

use bcc::cluster::{CommModel, WorkerProfile};
use bcc::experiment::{BackendSpec, DataSpec, Experiment, LatencySpec, SchemeSpec};

fn main() {
    // A "staircase" of per-worker shifts: worker finish order is fixed by
    // construction (gaps ≫ OS jitter, microsecond exponential tail), so the
    // wall-clock backend's arrival order matches the virtual one.
    let latency = LatencySpec::Explicit {
        workers: [0.025, 0.005, 0.020, 0.010, 0.015]
            .iter()
            .map(|&a| WorkerProfile { mu: 1e4, a })
            .collect(),
        comm: CommModel {
            per_message_overhead: 0.001,
            per_unit: 0.001,
        },
    };

    let base = |backend: BackendSpec| {
        Experiment::builder()
            .name("dual backend")
            .workers(5)
            .units(10)
            .scheme(SchemeSpec::named("uncoded"))
            .data(DataSpec::synthetic(3, 4))
            .latency(latency.clone())
            .backend(backend)
            .iterations(3)
            .seed(17)
            .build()
            .expect("valid on both backends")
    };

    let virtual_report = base(BackendSpec::Virtual).run().expect("virtual rounds");
    let threaded_report = base(BackendSpec::Threaded { time_scale: 1.0 })
        .run()
        .expect("threaded rounds");

    println!(
        "virtual-des : K = {:>2} messages, total {:.4}s (virtual)",
        virtual_report.metrics.messages_used, virtual_report.metrics.total_time,
    );
    println!(
        "threaded    : K = {:>2} messages, total {:.4}s (wall)",
        threaded_report.metrics.messages_used, threaded_report.metrics.total_time,
    );

    let identical = virtual_report.weights.len() == threaded_report.weights.len()
        && virtual_report
            .weights
            .iter()
            .zip(&threaded_report.weights)
            .all(|(a, b)| a.to_bits() == b.to_bits());
    assert!(identical, "backends diverged!");
    assert_eq!(
        virtual_report.metrics.messages_used,
        threaded_report.metrics.messages_used
    );
    println!("ok: byte-identical trained weights from one shared RoundEngine.");
}
