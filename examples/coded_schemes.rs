//! Tour of every gradient-coding scheme in the library: placement shape,
//! per-worker message, completion condition, and exact recovery under a
//! random straggler pattern.
//!
//! ```sh
//! cargo run --example coded_schemes
//! ```

use bcc::coding::scheme::test_support::{random_gradients, total_sum, worker_partials};
use bcc::core::schemes::SchemeConfig;
use bcc::stats::rng::derive_rng;
use rand::seq::SliceRandom;

fn main() {
    let (m, n, r) = (12usize, 12usize, 3usize);
    let grads = random_gradients(m, 4, 7);
    let expect = total_sum(&grads);

    println!(
        "{} units over {} workers at computational load r = {}\n",
        m, n, r
    );
    println!(
        "{:<22} {:>6} {:>12} {:>10} {:>12}",
        "scheme", "K*", "messages", "units", "max error"
    );

    for cfg in [
        SchemeConfig::Uncoded,
        SchemeConfig::Random { r },
        SchemeConfig::FractionalRepetition { r },
        SchemeConfig::CyclicRepetition { r },
        SchemeConfig::CyclicMds { r },
        SchemeConfig::Bcc { r },
    ] {
        let mut rng = derive_rng(99, 0);
        let scheme = cfg.build(m, n, &mut rng);

        // Random arrival order = random stragglers.
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(&mut derive_rng(99, 1));

        let mut decoder = scheme.decoder();
        for &i in &order {
            if scheme.placement().worker_examples(i).is_empty() {
                continue;
            }
            let partials = worker_partials(scheme.placement(), i, &grads);
            let payload = scheme.encode(i, &partials).expect("encode");
            if decoder.receive(i, payload).expect("receive") {
                break;
            }
        }
        let decoded = decoder.decode().expect("decode");
        let err = decoded
            .iter()
            .zip(&expect)
            .fold(0.0f64, |acc, (a, b)| acc.max((a - b).abs()));

        println!(
            "{:<22} {:>6} {:>12} {:>10} {:>12.2e}",
            scheme.name(),
            scheme
                .analytic_recovery_threshold()
                .map_or("—".into(), |k| format!("{k:.1}")),
            decoder.messages_received(),
            decoder.communication_units(),
            err
        );
        assert!(err < 1e-4, "every scheme must recover the exact sum");
    }

    println!(
        "\nNote the 'units' column: the randomized scheme ships r units per\n\
         message (eq. (6)'s m·log m blow-up) while every other scheme ships 1."
    );
}
