//! Tour of the scheme registry: every built-in gradient-coding scheme —
//! placement shape, per-worker message, completion condition, and exact
//! recovery under a random straggler pattern — plus a custom registration.
//!
//! ```sh
//! cargo run --example coded_schemes
//! ```

use bcc::coding::scheme::test_support::{random_gradients, total_sum, worker_partials};
use bcc::coding::{GradientCodingScheme, UncodedScheme};
use bcc::experiment::{Experiment, SchemeRegistry, SchemeSpec};
use bcc::stats::rng::derive_rng;
use rand::seq::SliceRandom;

fn main() {
    let (m, n, r) = (12usize, 12usize, 3usize);
    let grads = random_gradients(m, 4, 7);
    let expect = total_sum(&grads);

    println!(
        "{} units over {} workers at computational load r = {}\n",
        m, n, r
    );
    println!(
        "{:<22} {:>6} {:>12} {:>10} {:>12}",
        "scheme", "K*", "messages", "units", "max error"
    );

    // Resolve every scheme by its registry name — the same names spec files
    // use. Uncoded derives its load; everything else runs at r.
    let registry = SchemeRegistry::builtin();
    for name in registry.names() {
        let spec = if name == "uncoded" {
            SchemeSpec::named(name.clone())
        } else {
            SchemeSpec::with_load(name.clone(), r)
        };
        let mut rng = derive_rng(99, 0);
        let scheme = registry
            .build(&spec, m, n, &mut rng)
            .expect("built-in schemes build at (12, 12, 3)");

        // Random arrival order = random stragglers.
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(&mut derive_rng(99, 1));

        let mut decoder = scheme.decoder();
        for &i in &order {
            if scheme.placement().worker_examples(i).is_empty() {
                continue;
            }
            let partials = worker_partials(scheme.placement(), i, &grads);
            let payload = scheme.encode(i, &partials).expect("encode");
            if decoder.receive(i, payload).expect("receive") {
                break;
            }
        }
        let decoded = decoder.decode().expect("decode");
        let err = decoded
            .iter()
            .zip(&expect)
            .fold(0.0f64, |acc, (a, b)| acc.max((a - b).abs()));

        println!(
            "{:<22} {:>6} {:>12} {:>10} {:>12.2e}",
            scheme.name(),
            scheme
                .analytic_recovery_threshold()
                .map_or("—".into(), |k| format!("{k:.1}")),
            decoder.messages_received(),
            decoder.communication_units(),
            err
        );
        assert!(err < 1e-4, "every scheme must recover the exact sum");
    }

    println!(
        "\nNote the 'units' column: the randomized scheme ships r units per\n\
         message (eq. (6)'s m·log m blow-up) while every other scheme ships 1."
    );

    // The registry is open: register a custom scheme under a new name and
    // any spec file can reference it — no changes to the library.
    let mut registry = SchemeRegistry::builtin();
    registry.register("wait-for-everyone", |_spec, m, n, _rng| {
        Ok(Box::new(UncodedScheme::new(m, n)) as Box<dyn GradientCodingScheme>)
    });
    let report = Experiment::builder()
        .workers(n)
        .units(m)
        .scheme(SchemeSpec::named("wait-for-everyone"))
        .registry(registry)
        .iterations(5)
        .seed(99)
        .build()
        .expect("custom schemes build like built-ins")
        .run()
        .expect("rounds complete");
    println!(
        "\ncustom registration 'wait-for-everyone': avg K = {:.1} (all {} workers, as built)",
        report.metrics.avg_recovery_threshold(),
        n
    );
}
