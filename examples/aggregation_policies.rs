//! The aggregation-policy design space on one scenario: *when is a round
//! done, and what gradient does the master return?*
//!
//! ```sh
//! cargo run --release --example aggregation_policies
//! ```
//!
//! Runs the same BCC-vs-uncoded training problem under all four builtin
//! policies and prints the tradeoff each one makes: the exact policies pay
//! the full completion (or drain) time for a zero-error gradient, the
//! approximate ones trade unit coverage — and a measurable gradient-error
//! norm — for shorter rounds.

use bcc::experiment::{DataSpec, Experiment, PolicySpec, SchemeSpec};

fn main() {
    let policies = [
        PolicySpec::named("wait-decodable"),
        PolicySpec::fastest_k(12),
        PolicySpec::deadline(0.08),
        PolicySpec::named("best-effort-all"),
    ];

    println!("20 workers, uncoded shards, EC2-like stragglers, 25 Nesterov iterations\n");
    println!(
        "{:>16} | {:>8} | {:>8} | {:>9} | {:>10} | {:>10}",
        "policy", "K (msgs)", "coverage", "grad err", "total s", "final risk"
    );
    for policy in policies {
        let report = Experiment::builder()
            .name("policy tour")
            .workers(20)
            .units(20)
            .scheme(SchemeSpec::named("uncoded"))
            .data(DataSpec::synthetic(10, 16))
            .policy(policy.clone())
            .iterations(25)
            .seed(42)
            .build()
            .expect("a structurally valid scenario")
            .run()
            .expect("rounds complete under every policy");

        let coverage: f64 = report
            .round_samples
            .iter()
            .map(bcc::cluster::RoundSample::coverage_fraction)
            .sum::<f64>()
            / report.round_samples.len() as f64;
        let errors: Vec<f64> = report
            .round_samples
            .iter()
            .filter_map(|s| s.gradient_error)
            .collect();
        let mean_err = if errors.is_empty() {
            0.0
        } else {
            errors.iter().sum::<f64>() / errors.len() as f64
        };
        println!(
            "{:>16} | {:>8.1} | {:>8.2} | {:>9.2e} | {:>10.3} | {:>10.4}",
            policy.name,
            report.metrics.avg_recovery_threshold(),
            coverage,
            mean_err,
            report.metrics.total_time,
            report.trace.final_risk().unwrap_or(f64::NAN),
        );
    }

    println!(
        "\nfastest-k and deadline stop before the stragglers and rescale the covered\n\
         units into an unbiased estimate; wait-decodable (the paper's master) and\n\
         best-effort-all return the exact gradient at a higher time cost."
    );
}
