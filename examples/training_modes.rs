//! One experiment, four training modes: the paper's synchronous rounds
//! (`ssgd`) against bounded staleness (`ssp`), fully asynchronous updates
//! (`asgd`), and communication-avoiding local steps (`local-sgd`).
//!
//! ```sh
//! cargo run --release --example training_modes
//! ```
//!
//! Everything except the `mode` field is held fixed — same scheme, same
//! seed, same heavy-tail straggler stream — so the wallclock column
//! isolates what the *schedule* buys. Under a Pareto tail the synchronous
//! driver pays the slowest worker every round; SSP and ASGD overlap
//! rounds, so the tail worker's backlog arrives stale instead of stalling
//! the fleet. The staleness column shows the price: stale updates drift
//! from the exact gradient at their application point, which is why SSP
//! bounds the window. Local SGD trades the other way — fewer broadcasts,
//! but on a coded scheme every local step recomputes the full redundant
//! assignment, so it only wins where communication (not compute)
//! dominates: compare the uncoded rows of `BENCH_modes.json`.

use bcc::experiment::{DataSpec, Experiment, LatencySpec, ModeSpec, OptimizerSpec, SchemeSpec};

fn main() {
    let run = |mode: ModeSpec| {
        let report = Experiment::builder()
            .name(format!("training modes / {}", mode.name))
            .workers(20)
            .units(20)
            .scheme(SchemeSpec::with_load("bcc", 4))
            .data(DataSpec::synthetic(10, 16))
            .latency(LatencySpec::Pareto {
                shape: 1.5,
                scale: 0.0015,
                per_message_overhead: 0.002,
                per_unit: 0.004,
            })
            .optimizer(OptimizerSpec::GradientDescent {
                rate: bcc::optim::LearningRate::Constant(0.2),
            })
            .mode(mode)
            .iterations(30)
            .record_risk(true)
            .seed(11)
            .build()
            .expect("valid scenario")
            .run()
            .expect("run completes");
        report
    };

    println!(
        "{:>9}  {:>7}  {:>11}  {:>9}  {:>9}  {:>10}",
        "mode", "rounds", "wallclock s", "speedup", "staleness", "final risk"
    );
    let mut ssgd_seconds = None;
    for mode in [
        ModeSpec::default(),
        ModeSpec::ssp(3),
        ModeSpec::named("asgd"),
        ModeSpec::local_sgd(3),
    ] {
        let name = mode.name.clone();
        let report = run(mode);
        let baseline = *ssgd_seconds.get_or_insert(report.simulated_seconds);
        let max_staleness = report
            .round_samples
            .iter()
            .map(|s| s.staleness)
            .max()
            .unwrap_or(0);
        println!(
            "{:>9}  {:>7}  {:>11.3}  {:>8.2}x  {:>9}  {:>10.4}",
            name,
            report.round_samples.len(),
            report.simulated_seconds,
            baseline / report.simulated_seconds,
            max_staleness,
            report.trace.final_risk().expect("risk recorded"),
        );
    }

    // The same switch is one line in a JSON spec — `"mode": "asgd"` or
    // `{"name": "ssp", "staleness": 3}` — replayable via `repro scenario`.
    let ssp = ModeSpec::ssp(3);
    println!(
        "\nspec form: \"mode\": {}",
        serde_json::to_string(&ssp).expect("modes serialize")
    );
}
