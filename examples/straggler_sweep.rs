//! How much straggling does BCC need to pay off?
//!
//! Sweeps the straggling intensity (smaller μ ⇒ heavier latency tail) and
//! the master's link speed, printing BCC's gain over the uncoded baseline in
//! each regime — the two knobs the ablation study isolates. Each arm is one
//! declarative fixed-point experiment (no optimizer in the loop).
//!
//! ```sh
//! cargo run --release --example straggler_sweep
//! ```

use bcc::experiment::{DataSpec, Experiment, LatencySpec, OptimizerSpec, SchemeSpec};

const M_UNITS: usize = 40;
const WORKERS: usize = 40;
const R: usize = 8;
const ROUNDS: usize = 30;

fn avg_round_time(latency: &LatencySpec, scheme: SchemeSpec, seed: u64) -> f64 {
    Experiment::builder()
        .name("straggler sweep")
        .workers(WORKERS)
        .units(M_UNITS)
        .scheme(scheme)
        .data(DataSpec::synthetic(10, 16))
        .latency(latency.clone())
        .optimizer(OptimizerSpec::FixedPoint)
        .iterations(ROUNDS)
        .record_risk(false)
        .seed(seed)
        .build()
        .expect("sweep arms are structurally valid")
        .run()
        .expect("rounds complete")
        .metrics
        .avg_round_time()
}

fn main() {
    println!(
        "BCC gain over uncoded, {WORKERS} workers, {M_UNITS} units, r = {R} \
         ({ROUNDS}-round averages)\n"
    );
    println!(
        "{:>8} {:>12} | {:>12} {:>12} {:>8}",
        "μ", "per-unit(s)", "uncoded(s)", "BCC(s)", "gain"
    );

    for mu in [0.5, 2.0, 10.0, 100.0] {
        for per_unit in [0.0005, 0.004] {
            let latency = LatencySpec::Homogeneous {
                mu,
                a: 0.001,
                per_message_overhead: 0.001,
                per_unit,
            };
            let uncoded = avg_round_time(&latency, SchemeSpec::named("uncoded"), 7);
            let bcc = avg_round_time(&latency, SchemeSpec::with_load("bcc", R), 7);
            println!(
                "{mu:>8.1} {per_unit:>12.4} | {uncoded:>12.4} {bcc:>12.4} {:>7.1}%",
                (1.0 - bcc / uncoded) * 100.0
            );
        }
    }

    println!(
        "\nReading: with heavy stragglers (small μ) the gain is tail-driven —\n\
         uncoded pays the max of n latencies while BCC stops at early order\n\
         statistics. With light stragglers (μ = 100) the gain becomes\n\
         link-driven and grows with per-unit cost. Only when the link is\n\
         nearly free AND the tail negligible does BCC's r× compute load turn\n\
         it into a net loss — see `repro ablations` (bandwidth sweep) for\n\
         that regime. The paper's EC2 setting is communication-dominated."
    );
}
