//! How much straggling does BCC need to pay off?
//!
//! Sweeps the straggling intensity (smaller μ ⇒ heavier latency tail) and
//! the master's link speed, printing BCC's gain over the uncoded baseline in
//! each regime — the two knobs the ablation study isolates.
//!
//! ```sh
//! cargo run --release --example straggler_sweep
//! ```

use bcc::cluster::{ClusterBackend, ClusterProfile, CommModel, UnitMap, VirtualCluster};
use bcc::core::schemes::SchemeConfig;
use bcc::data::synthetic::{generate, SyntheticConfig};
use bcc::optim::LogisticLoss;
use bcc::stats::rng::derive_rng;

const M_UNITS: usize = 40;
const WORKERS: usize = 40;
const R: usize = 8;
const ROUNDS: usize = 30;

fn avg_round_time(profile: &ClusterProfile, cfg: SchemeConfig, seed: u64) -> f64 {
    let examples = M_UNITS * 10;
    let data = generate(&SyntheticConfig::small(examples, 16, seed));
    let units = UnitMap::grouped(examples, M_UNITS);
    let mut rng = derive_rng(seed, 1);
    let scheme = cfg.build(M_UNITS, WORKERS, &mut rng);
    let mut backend = VirtualCluster::new(profile.clone(), seed);
    let w = vec![0.0; 16];
    let mut total = 0.0;
    for _ in 0..ROUNDS {
        total += backend
            .run_round(scheme.as_ref(), &units, &data.dataset, &LogisticLoss, &w)
            .expect("rounds complete")
            .metrics
            .total_time;
    }
    total / ROUNDS as f64
}

fn main() {
    println!(
        "BCC gain over uncoded, {WORKERS} workers, {M_UNITS} units, r = {R} \
         ({ROUNDS}-round averages)\n"
    );
    println!(
        "{:>8} {:>12} | {:>12} {:>12} {:>8}",
        "μ", "per-unit(s)", "uncoded(s)", "BCC(s)", "gain"
    );

    for mu in [0.5, 2.0, 10.0, 100.0] {
        for per_unit in [0.0005, 0.004] {
            let profile = ClusterProfile::homogeneous(
                WORKERS,
                mu,
                0.001,
                CommModel {
                    per_message_overhead: 0.001,
                    per_unit,
                },
            );
            let uncoded = avg_round_time(&profile, SchemeConfig::Uncoded, 7);
            let bcc = avg_round_time(&profile, SchemeConfig::Bcc { r: R }, 7);
            println!(
                "{mu:>8.1} {per_unit:>12.4} | {uncoded:>12.4} {bcc:>12.4} {:>7.1}%",
                (1.0 - bcc / uncoded) * 100.0
            );
        }
    }

    println!(
        "\nReading: with heavy stragglers (small μ) the gain is tail-driven —\n\
         uncoded pays the max of n latencies while BCC stops at early order\n\
         statistics. With light stragglers (μ = 100) the gain becomes\n\
         link-driven and grows with per-unit cost. Only when the link is\n\
         nearly free AND the tail negligible does BCC's r× compute load turn\n\
         it into a net loss — see `repro ablations` (bandwidth sweep) for\n\
         that regime. The paper's EC2 setting is communication-dominated."
    );
}
