//! Fig. 2 as CSV: the computational-load vs recovery-threshold tradeoff for
//! every scheme, analytic and simulated — pipe into your plotter of choice.
//!
//! ```sh
//! cargo run --release --example tradeoff > fig2.csv
//! ```

use bcc::core::theory::fig2_tradeoff;

fn main() {
    let m = 100; // the paper's m = n = 100
    let loads: Vec<usize> = (1..=20).map(|k| k * 5).collect();
    let points = fig2_tradeoff(m, &loads, 3_000, 2024);

    println!("r,lower_bound,bcc,bcc_simulated,random_approx,random_simulated,cyclic_repetition");
    for p in &points {
        println!(
            "{},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4}",
            p.r,
            p.lower_bound,
            p.bcc,
            p.bcc_simulated,
            p.random,
            p.random_simulated,
            p.cyclic_repetition
        );
    }

    eprintln!(
        "wrote {} rows; headline: at r = 10 BCC waits for {:.1} workers vs \
         {:.0} for cyclic repetition",
        points.len(),
        points.iter().find(|p| p.r == 10).unwrap().bcc,
        points.iter().find(|p| p.r == 10).unwrap().cyclic_repetition,
    );
}
