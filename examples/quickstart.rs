//! Quickstart: a straggler-tolerant distributed training run, declared in
//! one builder chain.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Describes a small logistic-regression scenario — 20 simulated workers,
//! the Batched Coupon's Collector scheme at load r = 4, EC2-like
//! stragglers — and lets the `Experiment` builder own all wiring. The same
//! scenario serializes to JSON and replays via `repro scenario`.

use bcc::experiment::{DataSpec, Experiment, SchemeSpec};

fn main() {
    let experiment = Experiment::builder()
        .name("quickstart")
        .workers(20)
        .units(20)
        .scheme(SchemeSpec::with_load("bcc", 4))
        .data(DataSpec::synthetic(10, 16)) // 200 examples × 16 features
        .iterations(30)
        .seed(42)
        .build()
        .expect("a structurally valid scenario");

    println!(
        "scheme: {} | analytic recovery threshold K = {:.2} (lower bound {})",
        experiment.scheme().name(),
        experiment
            .scheme()
            .analytic_recovery_threshold()
            .expect("BCC has an analytic K"),
        20 / 4
    );

    let report = experiment.run().expect("BCC rounds complete");

    println!(
        "training: {} iterations, avg K = {:.1} of 20 workers, \
         {:.1} ms simulated total",
        report.metrics.rounds,
        report.metrics.avg_recovery_threshold(),
        report.metrics.total_time * 1e3,
    );
    println!(
        "risk: {:.4} → {:.4}",
        report.trace.initial_risk().expect("risk recorded"),
        report.trace.final_risk().expect("risk recorded"),
    );
    assert!(
        report.trace.improved(),
        "exact decoded gradients must descend"
    );
    assert!(
        report.metrics.avg_recovery_threshold() < 20.0,
        "the master must not wait for every worker"
    );

    // The whole scenario is data: save this next to your results and
    // `repro scenario quickstart.json` replays it byte-for-byte.
    println!(
        "\nthis exact scenario as a replayable spec:\n{}",
        report.spec.to_json_pretty().expect("specs serialize")
    );
    println!("ok: straggler-tolerant training without waiting for stragglers.");
}
