//! Quickstart: one distributed gradient-descent round with BCC.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Builds a small synthetic logistic-regression problem, distributes it over
//! a simulated 20-worker cluster with the Batched Coupon's Collector scheme,
//! runs one coded gradient round, and shows what the master saw.

use bcc::cluster::{ClusterBackend, ClusterProfile, UnitMap, VirtualCluster};
use bcc::core::schemes::SchemeConfig;
use bcc::data::synthetic::{generate, SyntheticConfig};
use bcc::optim::gradient::full_gradient;
use bcc::optim::LogisticLoss;
use bcc::stats::rng::derive_rng;

fn main() {
    // 200 examples, 16 features — the paper's data model at laptop scale.
    let data = generate(&SyntheticConfig::small(200, 16, 42));
    println!(
        "dataset: {} examples × {} features",
        data.dataset.len(),
        data.dataset.dim()
    );

    // Group the examples into 20 coding units (10 examples each), and build
    // the BCC scheme at computational load r = 4 → ⌈20/4⌉ = 5 batches.
    let units = UnitMap::grouped(200, 20);
    let mut rng = derive_rng(42, 0);
    let scheme = SchemeConfig::Bcc { r: 4 }.build(20, 20, &mut rng);
    println!(
        "scheme: {} | analytic recovery threshold K = {:.2} (lower bound {})",
        scheme.name(),
        scheme.analytic_recovery_threshold().unwrap(),
        20 / 4
    );

    // A 20-worker virtual cluster with EC2-like stragglers.
    let mut cluster = VirtualCluster::new(ClusterProfile::ec2_like(20), 7);

    // One gradient round at w = 0.
    let w = vec![0.0; 16];
    let outcome = cluster
        .run_round(scheme.as_ref(), &units, &data.dataset, &LogisticLoss, &w)
        .expect("BCC round completes");

    println!(
        "round: master waited for {} of 20 workers ({} communication units), \
         {:.1} ms simulated",
        outcome.metrics.messages_used,
        outcome.metrics.communication_units,
        outcome.metrics.total_time * 1e3,
    );

    // The decoded gradient is EXACT — compare against the serial one.
    let mut decoded = outcome.gradient_sum;
    bcc::linalg::vec_ops::scale(1.0 / 200.0, &mut decoded);
    let exact = full_gradient(&data.dataset, &LogisticLoss, &w);
    let err = bcc::linalg::vec_ops::sub(&decoded, &exact)
        .iter()
        .fold(0.0f64, |m, v| m.max(v.abs()));
    println!("decoded gradient max error vs serial computation: {err:.2e}");
    assert!(err < 1e-9, "BCC must recover the exact gradient");
    println!("ok: straggler-tolerant round recovered the exact gradient.");
}
