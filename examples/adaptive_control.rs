//! One cluster, four straggler controllers: the fixed `best-effort-all`
//! baseline (`static`) against the telemetry-driven builtins
//! (`quantile-deadline`, `adaptive-k`, `regime-switch`).
//!
//! ```sh
//! cargo run --release --example adaptive_control
//! ```
//!
//! Everything except the `controller` field is held fixed — same coded
//! scheme, same seed, same Markov time-correlated straggler chain (a
//! worker that is slow this round tends to stay slow, the regime the
//! adaptive controllers exist for) — so the wallclock column isolates
//! what *online re-tuning* buys. The static baseline drains every worker
//! every round and pays the full straggler tail. The adaptive controllers watch per-worker arrival telemetry
//! (EWMA compute times, streaming quantiles, a slow/fast regime vote)
//! and cut the tail once the evidence is in: `quantile-deadline` caps
//! each round at a margin over the fleet's 70th-percentile compute time,
//! `adaptive-k` waits only for the workers the telemetry still trusts,
//! and `regime-switch` flips between the baseline and a fastest-k cut
//! with hysteresis so one noisy round cannot thrash the policy. With
//! r = 4-fold coded redundancy the cut workers' partitions are still
//! covered, so the risk column shows the speedup is not bought with
//! gradient quality.

use bcc::experiment::{
    ControllerSpec, DataSpec, Experiment, LatencySpec, OptimizerSpec, PolicySpec, SchemeSpec,
};

fn main() {
    let run = |controller: ControllerSpec| {
        Experiment::builder()
            .name(format!("adaptive control / {}", controller.name))
            .workers(20)
            .units(20)
            .scheme(SchemeSpec::with_load("bcc", 4))
            .data(DataSpec::synthetic(10, 16))
            .latency(LatencySpec::Markov {
                mu: 1000.0,
                a: 0.001,
                p_slow: 0.027,
                p_recover: 0.15,
                slowdown: 15.0,
                per_message_overhead: 0.0002,
                per_unit: 0.0005,
            })
            .policy(PolicySpec::named("best-effort-all"))
            .optimizer(OptimizerSpec::GradientDescent {
                rate: bcc::optim::LearningRate::Constant(0.2),
            })
            .controller(controller)
            .iterations(30)
            .record_risk(true)
            .seed(2027)
            .build()
            .expect("valid scenario")
            .run()
            .expect("run completes")
    };

    println!(
        "{:>18}  {:>6}  {:>11}  {:>8}  {:>8}  {:>10}  last policy",
        "controller", "rounds", "wallclock s", "speedup", "switches", "final risk"
    );
    let mut static_seconds = None;
    for controller in [
        ControllerSpec::default(),
        ControllerSpec::quantile_deadline(0.7),
        ControllerSpec::adaptive_k(3.0),
        ControllerSpec::regime_switch(2),
    ] {
        let report = run(controller);
        let base = *static_seconds.get_or_insert(report.simulated_seconds);
        let last = report
            .controller_records
            .last()
            .map_or_else(|| "-".into(), |r| describe(&r.policy));
        println!(
            "{:>18}  {:>6}  {:>11.3}  {:>7.2}x  {:>8}  {:>10.4}  {}",
            report.spec.name.rsplit(" / ").next().unwrap_or("static"),
            report.metrics.rounds,
            report.simulated_seconds,
            base / report.simulated_seconds,
            report.controller_switches,
            report.trace.final_risk().expect("risk recorded"),
            last,
        );
    }
}

fn describe(policy: &bcc::experiment::ChosenPolicy) -> String {
    match (&policy.k, &policy.deadline) {
        (Some(k), _) => format!("{} (k = {k})", policy.policy),
        (_, Some(d)) => format!("{} (budget = {d:.4} s)", policy.policy),
        _ => policy.policy.clone(),
    }
}
