//! Deadline-bounded rounds under a heavy straggler tail, watched through
//! the [`RoundObserver`](bcc::cluster::RoundObserver) event stream.
//!
//! ```sh
//! cargo run --release --example deadline_rounds
//! ```
//!
//! Under a Pareto compute-time tail the slowest worker occasionally takes
//! an order of magnitude longer than the median — exactly the regime
//! where an exact master pays the whole tail every round. A `deadline`
//! policy caps the round at a fixed simulated-time budget and trains on
//! whatever coverage arrived; the event log shows each round's truncation
//! point, and the tail comparison shows what the cap bought.

use bcc::cluster::{ClusterBackend, EventLog, RoundEvent, SharedObserver, VirtualCluster};
use bcc::experiment::{DataSpec, Experiment, LatencySpec, PolicySpec, SchemeSpec};

fn main() {
    let latency = LatencySpec::Pareto {
        shape: 1.3,
        scale: 0.002,
        per_message_overhead: 0.002,
        per_unit: 0.004,
    };
    let base = |policy: PolicySpec| {
        Experiment::builder()
            .name("deadline under heavy tails")
            .workers(20)
            .units(20)
            .scheme(SchemeSpec::with_load("bcc", 4))
            .data(DataSpec::synthetic(10, 16))
            .latency(latency.clone())
            .policy(policy)
            .iterations(30)
            .seed(11)
            .build()
            .expect("valid scenario")
    };

    let exact = base(PolicySpec::named("wait-decodable"))
        .run()
        .expect("exact rounds complete");
    let capped = base(PolicySpec::deadline(0.08))
        .run()
        .expect("deadline rounds complete");

    let p99 = |report: &bcc::experiment::ExperimentReport| {
        let mut times: Vec<f64> = report.round_samples.iter().map(|s| s.total_time).collect();
        times.sort_by(f64::total_cmp);
        times[(times.len() * 99 / 100).min(times.len() - 1)]
    };
    println!(
        "exact master:    total {:.3} s, p99 round {:.3} s",
        exact.metrics.total_time,
        p99(&exact)
    );
    println!(
        "deadline 0.08 s: total {:.3} s, p99 round {:.3} s",
        capped.metrics.total_time,
        p99(&capped)
    );
    let truncated = capped.round_samples.iter().filter(|s| !s.exact).count();
    println!(
        "deadline truncated {truncated}/{} rounds (mean coverage {:.2})\n",
        capped.round_samples.len(),
        capped
            .round_samples
            .iter()
            .map(bcc::cluster::RoundSample::coverage_fraction)
            .sum::<f64>()
            / capped.round_samples.len() as f64
    );

    // The same policy layer is available below the declarative API: wire a
    // backend by hand and subscribe to its round events.
    let log = EventLog::shared();
    let mut cluster = VirtualCluster::new(bcc::cluster::ClusterProfile::ec2_like(8), 3).configured(
        bcc::cluster::BackendConfig::new()
            .aggregation_policy(std::sync::Arc::new(bcc::cluster::Deadline::new(0.1)))
            .observer(log.clone() as SharedObserver),
    );
    let g = bcc::data::synthetic::generate(&bcc::data::synthetic::SyntheticConfig::small(16, 4, 3));
    let units = bcc::cluster::UnitMap::grouped(16, 8);
    let scheme = bcc::coding::UncodedScheme::new(8, 8);
    cluster
        .run_round(
            &scheme,
            &units,
            &g.dataset,
            &bcc::optim::LogisticLoss,
            &[0.0; 4],
        )
        .expect("round completes at the deadline");

    println!("event stream of one hand-wired deadline round:");
    for event in &log.lock().expect("event log").events {
        match event {
            RoundEvent::Broadcast { participants, .. } => {
                println!("  broadcast to {participants} workers");
            }
            RoundEvent::Arrival {
                worker,
                at,
                coverage,
                ..
            } => println!(
                "  worker {worker:>2} delivered at {at:.4} s (coverage {}/{})",
                coverage.covered_units, coverage.total_units
            ),
            RoundEvent::Complete { at, messages, .. } => {
                println!("  round complete at {at:.4} s after {messages} messages");
            }
            RoundEvent::Stalled { reason, .. } => println!("  stalled: {reason}"),
            RoundEvent::StaleFrame {
                worker,
                frame_round,
                ..
            } => println!("  worker {worker:>2} sent a stale round-{frame_round} frame"),
            RoundEvent::Rejoined { worker, .. } => {
                println!("  worker {worker:>2} rejoined mid-round");
            }
        }
    }
}
